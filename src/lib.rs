//! Workspace root crate for the VEDA reproduction.
//!
//! The substance lives in the [`veda`] crate and its substrates; this root
//! package hosts the runnable `examples/` and the cross-crate integration
//! tests in `tests/`.

pub use veda::*;

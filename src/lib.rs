//! Workspace root crate for the VEDA reproduction.
//!
//! The substance lives in the [`veda`] crate and its substrates (plus the
//! [`veda_serving`] stack layered on top); this root package hosts the
//! runnable `examples/` and the cross-crate integration tests in `tests/`.

pub use veda::*;
pub use veda_serving as serving;

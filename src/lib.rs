//! Workspace root crate for the VEDA reproduction.
//!
//! The substance lives in the [`veda`] crate and its substrates (plus the
//! [`veda_serving`] stack layered on top); this root package hosts the
//! runnable `examples/` and the cross-crate integration tests in `tests/`.

// Crate hygiene, enforced by veda-lint (rule crate-hygiene): no unsafe
// code under the determinism pins, no undocumented public surface.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use veda::*;
pub use veda_serving as serving;

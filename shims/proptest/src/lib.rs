//! Offline stand-in for the subset of the proptest API the workspace's
//! property tests use: the `proptest!` macro, range strategies,
//! `prop_map`, `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! The build environment has no registry access, so this path crate keeps
//! the property tests running. Each `proptest!` test runs a fixed number
//! of deterministic cases ([`NUM_CASES`], overridable via the
//! `PROPTEST_CASES` environment variable): the RNG seed is derived from
//! the test name and case index, so failures reproduce exactly. There is
//! no shrinking — a failing case panics with its values where the
//! assertion formats them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// Default number of cases each `proptest!` test executes.
pub const NUM_CASES: usize = 64;

/// Number of cases to run, honoring `PROPTEST_CASES` when set.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(NUM_CASES)
}

/// Deterministic RNG for one (test, case) pair.
pub fn rng_for_case(test_name: &str, case: usize) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A source of test values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    };
}

impl_range_strategy!(f32);
impl_range_strategy!(f64);
impl_range_strategy!(usize);
impl_range_strategy!(u64);
impl_range_strategy!(u32);
impl_range_strategy!(u16);
impl_range_strategy!(u8);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive-start, exclusive-end size bounds for generated
    /// collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Mirrors `proptest::proptest!`: each listed test runs [`cases`] sampled
/// cases with a per-test deterministic RNG.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::cases() {
                    let mut proptest_rng = $crate::rng_for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Mirrors `prop_assert!` (panics instead of returning a test error).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_strategy_respects_size(xs in crate::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<f64> = (0..4)
            .map(|c| crate::Strategy::sample(&(0.0f64..1.0), &mut crate::rng_for_case("t", c)))
            .collect();
        let b: Vec<f64> = (0..4)
            .map(|c| crate::Strategy::sample(&(0.0f64..1.0), &mut crate::rng_for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn prop_map_applies() {
        let s = (0usize..5).prop_map(|x| x * 2);
        let mut rng = crate::rng_for_case("map", 0);
        for _ in 0..20 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}

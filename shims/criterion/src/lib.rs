//! Offline stand-in for the subset of the Criterion benchmarking API the
//! workspace benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no registry access, so this path crate keeps
//! `cargo bench` runnable. It is a *timer*, not a statistics engine: each
//! benchmark runs a short warm-up, then timed batches until a wall-clock
//! budget is spent, and prints the mean iteration time. Numbers are
//! indicative, not publication-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Per-benchmark timing driver passed to `iter`.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also an estimate of the per-iteration cost.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(10));

        let batch = (MEASURE_BUDGET.as_nanos() / (8 * estimate.as_nanos()).max(1)).clamp(1, 10_000) as u64;
        let deadline = Instant::now() + MEASURE_BUDGET;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0, iters: 0 };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{label:<48} {value:>10.2} {unit}/iter   ({} iters)", b.iters);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId2>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().0), &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Anything usable as a bare benchmark id (`&str` or [`BenchmarkId`]).
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId2 {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        Self(id.label)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId2>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().0, &mut f);
        self
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `fn main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| b.iter(|| n * 2));
        g.bench_function("bare", |b| b.iter(|| black_box(42)));
        g.finish();
    }
}

//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen` / `gen_range`.
//!
//! The build environment has no registry access, so this path crate keeps
//! the workspace self-contained. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, well-distributed, and fast. It does **not**
//! reproduce the upstream `StdRng` (ChaCha12) stream; nothing in the
//! workspace depends on specific draw values, only on determinism and on
//! reasonable statistical quality (both are covered by tests here and in
//! `veda-tensor`).
//!
//! Integer `gen_range` uses simple modulo reduction. The bias is below
//! `span / 2^64`, which is irrelevant for simulation workloads; rejection
//! sampling is intentionally omitted to keep the stream a pure function of
//! the draw index.

use std::ops::{Range, RangeInclusive};

/// Minimal RNG core: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits → [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample values of `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = Standard::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Rounding can land exactly on `end`; fold it back inside.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    };
}

impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(u16);
impl_int_range!(u8);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 3];
        for _ in 0..100 {
            seen_incl[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        rng.gen_range(5usize..5);
    }
}

//! Tier-1 coverage for the determinism linter: plain `cargo test` audits
//! the **live tree**, so a `HashMap` in a library crate, a worker-side
//! trace emission, or a grown panic surface fails the build the same way
//! a broken bit-identity pin would — before CI, on every developer run.

use std::collections::BTreeMap;
use std::path::Path;

use veda_lint::ratchet::{Ratchet, RATCHET_FILE};
use veda_lint::rules::{self, PanicCounts};
use veda_lint::workspace::FileContext;
use veda_lint::{lint_files, lint_str, lint_workspace};

fn workspace_root() -> &'static Path {
    // The root package's manifest dir *is* the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn live_tree_passes_the_determinism_lint() {
    let lint = lint_workspace(workspace_root()).expect("lint pass runs");
    assert!(lint.files_scanned > 100, "suspiciously few files: {}", lint.files_scanned);
    assert!(
        lint.is_clean(),
        "veda-lint found {} violation(s) in the live tree:\n{}",
        lint.violations.len(),
        lint.violations
            .iter()
            .map(|v| format!("  {}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_ratchet_baseline_round_trips_byte_identical() {
    let path = workspace_root().join(RATCHET_FILE);
    let text = std::fs::read_to_string(&path).expect("lint-ratchet.toml is committed");
    let parsed = Ratchet::parse(&text).expect("baseline parses");
    assert_eq!(
        parsed.serialize(),
        text,
        "lint-ratchet.toml is not in canonical form; regenerate with \
         `cargo run -p veda-lint -- --write-ratchet`"
    );
    // And the baseline covers exactly the measured crates (no stale or
    // missing sections).
    let measured = lint_files(workspace_root()).expect("measure");
    let crates: Vec<&String> = measured.counts.keys().collect();
    let baselined: Vec<&String> = parsed.crates.keys().collect();
    assert_eq!(crates, baselined, "baseline sections drifted from workspace members");
}

#[test]
fn injected_hash_map_in_library_code_fails() {
    // Take a real library file, append a HashMap use, and lint it under
    // its real context: the pass must fail.
    let engine = workspace_root().join("crates/core/src/engine.rs");
    let mut source = std::fs::read_to_string(engine).expect("engine source");
    source.push_str("\n/// Injected for the lint test.\npub fn injected() -> std::collections::HashMap<u32, u32> {\n    std::collections::HashMap::new()\n}\n");
    let ctx = FileContext::synthetic_library("veda");
    let violations = lint_str(&source, &ctx);
    assert!(
        violations.iter().any(|v| v.rule == rules::NO_HASH_COLLECTIONS),
        "injected HashMap not caught: {violations:?}"
    );
    // The un-injected file is clean — the injection is what fails.
    let original =
        std::fs::read_to_string(workspace_root().join("crates/core/src/engine.rs")).expect("engine source");
    assert!(lint_str(&original, &ctx).is_empty());
}

#[test]
fn injected_worker_side_trace_emission_fails() {
    let src = r#"
pub fn step(tracer: &Tracer, sessions: &mut [Session]) {
    std::thread::scope(|scope| {
        for s in sessions.iter_mut() {
            scope.spawn(move || {
                s.advance();
                tracer.emit(0, s.id, TraceEventKind::FirstToken);
            });
        }
    });
}
"#;
    let violations = lint_str(src, &FileContext::synthetic_library("veda"));
    assert!(
        violations.iter().any(|v| v.rule == rules::COORDINATOR_ONLY_TRACING),
        "worker-side emission not caught: {violations:?}"
    );
}

#[test]
fn injected_unwrap_growth_fails_the_ratchet() {
    let text = std::fs::read_to_string(workspace_root().join(RATCHET_FILE)).expect("baseline");
    let baseline = Ratchet::parse(&text).expect("baseline parses");

    // Measure the live tree, then pretend one crate gained an unwrap.
    let measured = lint_files(workspace_root()).expect("measure");
    assert!(baseline.compare(&measured.counts).violations.is_empty(), "tree must start clean");

    let mut grown: BTreeMap<String, PanicCounts> = measured.counts.clone();
    let entry = grown.get_mut("veda").expect("core crate is ratcheted");
    entry.unwrap += 1;
    let outcome = baseline.compare(&grown);
    assert_eq!(outcome.violations.len(), 1, "{:?}", outcome.violations);
    assert!(outcome.violations[0].message.contains("grew"));

    // Shrinkage is an improvement note, not a violation.
    let mut shrunk: BTreeMap<String, PanicCounts> = measured.counts.clone();
    if let Some(e) = shrunk.values_mut().find(|c| c.index > 0) {
        e.index -= 1;
    }
    let outcome = baseline.compare(&shrunk);
    assert!(outcome.violations.is_empty());
    assert_eq!(outcome.improvements.len(), 1);
}

#[test]
fn lint_allows_in_the_live_tree_are_all_explained() {
    // `lint_workspace` already rejects unexplained allows via
    // allow-hygiene; this pins the *count* of live escape hatches so a
    // PR that sprinkles allows shows up in review as a diff here.
    let mut allow_lines = 0usize;
    for file in veda_lint::workspace::discover(workspace_root()).expect("discover") {
        let source = std::fs::read_to_string(&file.abs_path).expect("read");
        allow_lines += veda_lint::lexer::lex(&source).allows.len();
    }
    assert_eq!(
        allow_lines, 4,
        "the live tree's lint:allow count changed; if the new allow is \
         justified, update this pin and say why in the PR"
    );
}

#[test]
fn panic_surface_counts_are_deterministic() {
    let a = lint_files(workspace_root()).expect("first pass");
    let b = lint_files(workspace_root()).expect("second pass");
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.files_scanned, b.files_scanned);
}

#[test]
fn lint_source_never_flags_test_targets_for_library_rules() {
    // Integration-test files may use HashMap scratch structures; only
    // the wall-clock rule (and allow hygiene) applies there.
    let src = "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let mut ctx = FileContext::synthetic_library("veda-repro");
    ctx.role = veda_lint::workspace::FileRole::TestTarget;
    let violations = lint_str(src, &ctx);
    assert!(violations.is_empty(), "{violations:?}");
}

//! Functional fidelity of the hardware models against the reference
//! kernels, driven by *real* model data (not synthetic unit vectors).

use veda_accel::arch::SfuConfig;
use veda_accel::sfu::SoftmaxUnit;
use veda_accel::voting::VotingEngine;
use veda_accel::{ArrayMode, PeArray};
use veda_eviction::{EvictionPolicy, VotingConfig, VotingPolicy};
use veda_model::{ModelConfig, TransformerModel};
use veda_tensor::ops;

#[test]
fn pe_array_computes_real_attention_scores() {
    // Run the functional transformer, then recompute one head's q×Kᵀ on
    // the PE-array model and compare against the reference kernel.
    let cfg = ModelConfig::tiny();
    let mut model = TransformerModel::new(cfg.clone());
    for pos in 0..12 {
        model.forward_token((pos * 7) % cfg.vocab_size, pos);
    }
    let cache = &model.caches()[0];
    let dh = cfg.head_dim();
    // Head 0 slice of the keys.
    let mut keys_h = veda_tensor::Matrix::zeros(cache.len(), dh);
    for r in 0..cache.len() {
        keys_h.row_mut(r).copy_from_slice(&cache.keys().row(r)[..dh]);
    }
    let mut rng = veda_tensor::rng::seeded(9);
    let q = veda_tensor::rng::normal_vec(&mut rng, dh, 0.5);

    let mut array = PeArray::veda_tile();
    array.configure(ArrayMode::InnerProduct);
    let hw = array.inner_gemv(&q, &keys_h);
    let reference = ops::gemv_inner(&q, &keys_h);
    assert!(ops::max_abs_diff(&hw.values, &reference) < 0.05);
    assert_eq!(hw.cycles, cache.len() as u64); // dh=8 fits the tile: 1 row/cycle
}

#[test]
fn element_serial_softmax_matches_reference_on_real_scores() {
    let cfg = ModelConfig::tiny();
    let mut model = TransformerModel::new(cfg.clone());
    let mut out = model.forward_token(1, 0);
    for pos in 1..16 {
        out = model.forward_token((pos * 3) % cfg.vocab_size, pos);
    }
    // Re-normalize one head's raw-ish scores through the SFU model.
    let scores = out.scores.layer(0).head(0);
    let mut sm = SoftmaxUnit::new(SfuConfig::default());
    for &s in scores {
        sm.push(s.ln()); // feed logits
    }
    let normalized = sm.finish();
    let reference = veda_tensor::softmax::softmax(&scores.iter().map(|s| s.ln()).collect::<Vec<_>>());
    for (a, b) in normalized.iter().zip(&reference) {
        assert!((a - b).abs() < 1e-4);
    }
}

#[test]
fn voting_engine_tracks_software_policy_on_transformer_scores() {
    // Differential test with real attention distributions: the hardware
    // engine (FP16 score ingest) and the software policy fed the same
    // FP16-quantized scores must agree on every eviction.
    let cfg = ModelConfig::tiny();
    let mut model = TransformerModel::new(cfg.clone());
    let mut engine = VotingEngine::new(64, VotingConfig::with_reserved_len(2));
    let mut sw = VotingPolicy::new(VotingConfig::with_reserved_len(2));
    let budget = 10;

    for pos in 0..40 {
        let out = model.forward_token((pos * 5 + 1) % cfg.vocab_size, pos);
        engine.on_append().expect("capacity");
        sw.on_append();
        // Layer 0, averaged across heads (Section V aggregation).
        let avg = out.scores.layer(0).average();
        let quantized: Vec<f32> = avg.iter().map(|&x| veda_tensor::fp16::quantize_f32(x)).collect();
        engine.process_head(&avg);
        sw.observe(veda_eviction::ScoreView::single(&quantized));
        assert_eq!(engine.policy().vote_counts(), sw.vote_counts(), "desync at pos {pos}");

        if model.cache_len() > budget {
            let len = model.cache_len();
            let hw_victim = engine.evict(len);
            let sw_victim = sw.select_victim(len);
            assert_eq!(hw_victim, sw_victim, "victim mismatch at pos {pos}");
            if let Some(slot) = sw_victim {
                sw.on_evict(slot);
                model.evict_all_layers(slot);
            }
        }
    }
    assert!(engine.hidden_behind_compute(budget));
}

#[test]
fn outer_product_attention_matches_reference_on_real_values() {
    let cfg = ModelConfig::tiny();
    let mut model = TransformerModel::new(cfg.clone());
    let mut out = model.forward_token(2, 0);
    for pos in 1..10 {
        out = model.forward_token((pos * 9) % cfg.vocab_size, pos);
    }
    let cache = &model.caches()[1];
    let dh = cfg.head_dim();
    let mut values_h = veda_tensor::Matrix::zeros(cache.len(), dh);
    for r in 0..cache.len() {
        values_h.row_mut(r).copy_from_slice(&cache.values().row(r)[..dh]);
    }
    let s = out.scores.layer(1).head(0);

    let mut array = PeArray::veda_tile();
    array.configure(ArrayMode::OuterProduct);
    let hw = array.outer_gemv(s, &values_h);
    let reference = ops::gemv_outer(s, &values_h);
    assert!(ops::max_abs_diff(&hw.values, &reference) < 0.05);
}

//! Cross-crate integration of the serving engine: the determinism
//! invariant (batched multi-session decode produces per-request reports
//! identical to lone `Simulation::run` calls), continuous batching over
//! a mixed request population, and the engine/legacy API equivalence.

use veda::{Budget, EngineBuilder, Request, Simulation, SimulationBuilder};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

fn prompt(len: usize, salt: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 11 + salt * 17) % 60 + 1).collect()
}

fn legacy(policy: PolicyKind, budget: Budget) -> Simulation {
    SimulationBuilder::new()
        .model(ModelConfig::tiny())
        .policy(policy)
        .budget(budget)
        .build()
        .expect("valid config")
}

/// The acceptance-criteria invariant: an engine decoding several
/// concurrent sessions of *different* policies and budgets must produce,
/// for every request, a report token-for-token and cycle-for-cycle equal
/// to running that request alone through the legacy one-shot API.
#[test]
fn batched_sessions_match_single_session_runs_exactly() {
    let cases: Vec<(PolicyKind, Budget, Vec<usize>, usize)> = vec![
        (PolicyKind::Voting, Budget::Ratio(0.5), prompt(24, 0), 10),
        (PolicyKind::H2o, Budget::Fixed(8), prompt(16, 1), 14),
        (PolicyKind::SlidingWindow, Budget::Ratio(0.25), prompt(32, 2), 6),
        (PolicyKind::Full, Budget::Unbounded, prompt(12, 3), 8),
        (PolicyKind::DecayedScore, Budget::Fixed(10), prompt(20, 4), 12),
    ];

    let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    let sessions: Vec<_> = cases
        .iter()
        .map(|(policy, budget, prompt, gen_len)| {
            engine
                .submit(Request::new(prompt.clone(), *gen_len).policy(*policy).budget(*budget))
                .expect("valid request")
        })
        .collect();
    let engine_report = engine.run_to_completion();
    assert_eq!(engine_report.requests.len(), cases.len());
    assert_eq!(engine_report.max_concurrency, cases.len());

    for (session, (policy, budget, prompt, gen_len)) in sessions.iter().zip(&cases) {
        let batched = engine_report
            .requests
            .iter()
            .find(|r| r.session == *session)
            .expect("every session finished")
            .report
            .clone();
        let solo = legacy(*policy, *budget).run(prompt, *gen_len);
        assert_eq!(batched.generated, solo.generated, "{policy}: token stream diverged");
        assert_eq!(batched, solo, "{policy}: full report diverged");
    }
}

/// The engine keeps batching correctly as sessions finish at different
/// times (continuous batching): batch size shrinks monotonically with
/// completions, and every session still matches its lone run.
#[test]
fn continuous_batching_handles_stragglers() {
    let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    let short = engine.submit(Request::new(prompt(16, 5), 2)).expect("valid");
    let long = engine.submit(Request::new(prompt(16, 6), 9)).expect("valid");

    let mut batch_sizes = Vec::new();
    while engine.active_sessions() > 0 {
        batch_sizes.push(engine.step().batch_size);
    }
    assert_eq!(batch_sizes, vec![2, 2, 1, 1, 1, 1, 1, 1, 1]);

    let solo_short = legacy(PolicyKind::Voting, Budget::Ratio(0.5)).run(&prompt(16, 5), 2);
    let solo_long = legacy(PolicyKind::Voting, Budget::Ratio(0.5)).run(&prompt(16, 6), 9);
    assert_eq!(engine.take_report(short).unwrap(), solo_short);
    assert_eq!(engine.take_report(long).unwrap(), solo_long);
}

/// Submitting mid-flight joins the next tick's batch without disturbing
/// the sessions already decoding.
#[test]
fn late_submissions_join_the_batch() {
    let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    let early = engine.submit(Request::new(prompt(16, 7), 6)).expect("valid");
    engine.step();
    engine.step();
    let late = engine.submit(Request::new(prompt(16, 8), 3).policy(PolicyKind::H2o)).expect("valid");
    assert_eq!(engine.step().batch_size, 2);
    let report = engine.run_to_completion();
    assert_eq!(report.requests.len(), 2);

    let solo_early = legacy(PolicyKind::Voting, Budget::Ratio(0.5)).run(&prompt(16, 7), 6);
    let solo_late = legacy(PolicyKind::H2o, Budget::Ratio(0.5)).run(&prompt(16, 8), 3);
    let get = |s| report.requests.iter().find(|r| r.session == s).unwrap().report.clone();
    assert_eq!(get(early), solo_early, "in-flight session disturbed by late join");
    assert_eq!(get(late), solo_late, "late session diverged");
}

/// The serving_sim example's configuration: at least 8 concurrent
/// requests with mixed policies through one engine, batched throughput
/// reported.
#[test]
fn eight_concurrent_mixed_requests_report_batched_throughput() {
    let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    let policies = [PolicyKind::Voting, PolicyKind::H2o, PolicyKind::SlidingWindow, PolicyKind::Full];
    for i in 0..8 {
        engine
            .submit(
                Request::new(prompt(16 + 4 * (i % 3), i), 8 + i % 4)
                    .policy(policies[i % policies.len()])
                    .budget(if i % 2 == 0 { Budget::Ratio(0.5) } else { Budget::Fixed(10) }),
            )
            .expect("valid request");
    }
    let report = engine.run_to_completion();
    assert_eq!(report.requests.len(), 8);
    assert_eq!(report.max_concurrency, 8);
    assert!(report.batched_tokens_per_second > 0.0);
    assert!(report.batched_total_cycles > 0);
    assert!(
        report.batched_total_cycles < report.sequential_total_cycles,
        "one batched tick per token must beat one-at-a-time serving: {} vs {}",
        report.batched_total_cycles,
        report.sequential_total_cycles
    );
    let policies_seen: std::collections::HashSet<_> = report.requests.iter().map(|r| r.policy).collect();
    assert!(policies_seen.len() >= 4, "mixed policies must survive into the report");
}

/// An engine is reusable across waves of requests: weights are built once,
/// each wave drains cleanly.
#[test]
fn engine_serves_consecutive_waves() {
    let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    for wave in 0..3 {
        for i in 0..3 {
            engine.submit(Request::new(prompt(12, wave * 3 + i), 5)).expect("valid request");
        }
        let report = engine.run_to_completion();
        assert_eq!(report.requests.len(), 3, "wave {wave}");
        assert_eq!(report.total_tokens, 15, "wave {wave}");
        assert_eq!(engine.active_sessions(), 0);
    }
}

//! Display ↔ FromStr round-trips for every configuration enum exposed on
//! a CLI surface: whatever a report prints must parse back to the same
//! value, so saved invocations and log lines stay replayable.

use veda::Budget;
use veda_accel::DataflowVariant;
use veda_eviction::PolicyKind;
use veda_serving::{ArrivalKind, RouterKind, SchedKind};

#[test]
fn policy_kind_display_roundtrips() {
    for kind in PolicyKind::ALL {
        let text = kind.to_string();
        assert_eq!(text.parse::<PolicyKind>().unwrap(), kind, "{text} must parse back");
    }
}

#[test]
fn dataflow_variant_display_roundtrips() {
    for variant in DataflowVariant::ALL {
        let text = variant.to_string();
        assert_eq!(text.parse::<DataflowVariant>().unwrap(), variant, "{text} must parse back");
    }
}

#[test]
fn budget_display_roundtrips() {
    let budgets =
        [Budget::Unbounded, Budget::Fixed(1), Budget::Fixed(4096), Budget::Ratio(0.25), Budget::Ratio(1.0)];
    for budget in budgets {
        let text = budget.to_string();
        assert_eq!(text.parse::<Budget>().unwrap(), budget, "{text} must parse back");
    }
}

#[test]
fn sched_kind_display_roundtrips() {
    for kind in SchedKind::ALL {
        let text = kind.to_string();
        assert_eq!(text.parse::<SchedKind>().unwrap(), kind, "{text} must parse back");
    }
}

#[test]
fn router_kind_display_roundtrips() {
    for kind in RouterKind::ALL {
        let text = kind.to_string();
        assert_eq!(text.parse::<RouterKind>().unwrap(), kind, "{text} must parse back");
    }
}

#[test]
fn arrival_kind_display_roundtrips() {
    for kind in ArrivalKind::ALL {
        let text = kind.to_string();
        assert_eq!(text.parse::<ArrivalKind>().unwrap(), kind, "{text} must parse back");
    }
}

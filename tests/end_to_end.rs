//! Cross-crate integration: full simulations across every policy and
//! dataflow variant.

use veda::SimulationBuilder;
use veda_accel::DataflowVariant;
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

fn prompt() -> Vec<usize> {
    (0..48).map(|i| (i * 11) % 60 + 1).collect()
}

#[test]
fn every_policy_runs_end_to_end() {
    for policy in PolicyKind::ALL {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(policy)
            .compression_ratio(0.5)
            .build()
            .expect("valid config");
        let r = sim.run(&prompt(), 12);
        assert_eq!(r.generated.len(), 12, "{policy}");
        assert!(r.tokens_per_second > 0.0, "{policy}");
        assert!(r.attention_cycles_per_token.iter().all(|&c| c > 0), "{policy}");
    }
}

#[test]
fn every_variant_runs_and_orders() {
    let mut totals = Vec::new();
    for variant in DataflowVariant::ALL {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .variant(variant)
            .policy(PolicyKind::Full)
            .fixed_budget(10_000)
            .build()
            .expect("valid config");
        let r = sim.run(&prompt(), 16);
        totals.push((variant, r.total_cycles));
    }
    assert!(totals[0].1 > totals[1].1, "baseline {:?} <= flexible {:?}", totals[0], totals[1]);
    assert!(totals[1].1 > totals[2].1, "flexible {:?} <= element-serial {:?}", totals[1], totals[2]);
}

#[test]
fn eviction_policies_hold_cache_at_budget() {
    for policy in [PolicyKind::SlidingWindow, PolicyKind::H2o, PolicyKind::Voting] {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(policy)
            .compression_ratio(0.25)
            .build()
            .expect("valid config");
        let r = sim.run(&prompt(), 24);
        assert_eq!(r.cache_budget, 12);
        // The voting policy's reserved length (32, the paper's attention
        // sink) lower-bounds the cache: it never shrinks below R.
        let expected = if policy == PolicyKind::Voting { 32 } else { 12 };
        assert_eq!(r.final_cache_len, expected, "{policy} did not hold the budget");
    }
}

#[test]
fn generation_is_reproducible_across_builds() {
    let run = || {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Voting)
            .compression_ratio(0.5)
            .build()
            .expect("valid config");
        sim.run(&prompt(), 10)
    };
    assert_eq!(run(), run());
}

#[test]
fn smaller_budget_means_fewer_attention_cycles() {
    let total_attn = |ratio: f64| {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Voting)
            .compression_ratio(ratio)
            .build()
            .expect("valid config");
        let r = sim.run(&prompt(), 16);
        r.attention_cycles_per_token.iter().sum::<u64>()
    };
    assert!(total_attn(0.25) < total_attn(0.75));
}

//! The paper's headline experimental shapes, asserted end-to-end across
//! crates (fast configurations of the same code paths the report binaries
//! use).

use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_eviction::PolicyKind;

#[test]
fn fig8_center_bands_and_ordering() {
    let points = veda_bench::fig8_center();
    for p in &points {
        match p.variant {
            DataflowVariant::Baseline => assert!((p.normalized_latency - 1.0).abs() < 1e-12),
            DataflowVariant::Flexible => {
                assert!(
                    (0.55..0.85).contains(&p.normalized_latency),
                    "F at gen {}: {}",
                    p.gen_len,
                    p.normalized_latency
                )
            }
            DataflowVariant::FlexibleElementSerial => {
                assert!(
                    (0.40..0.70).contains(&p.normalized_latency),
                    "F+E at gen {}: {}",
                    p.gen_len,
                    p.normalized_latency
                )
            }
        }
    }
    // The F+E curve rises with generation length, as in the paper.
    let fe = |gen: usize| {
        points
            .iter()
            .find(|p| p.gen_len == gen && p.variant == DataflowVariant::FlexibleElementSerial)
            .unwrap()
            .normalized_latency
    };
    assert!(fe(1024) > fe(0));
}

#[test]
fn fig8_right_corners_and_monotonicity() {
    let points = veda_bench::fig8_right();
    let get = |gen: usize, r: f64| {
        points.iter().find(|p| p.gen_len == gen && (p.kv_ratio - r).abs() < 1e-9).unwrap().speedup
    };
    // Paper corners: 2.3x at (128, 0.5KV) and 10.0x at (1024, 0.2KV).
    assert!((1.8..2.8).contains(&get(128, 0.5)), "{}", get(128, 0.5));
    assert!((7.0..12.0).contains(&get(1024, 0.2)), "{}", get(1024, 0.2));
    // Monotone in both axes.
    for &r in &[0.5, 0.4, 0.3, 0.2] {
        assert!(get(1024, r) > get(128, r));
    }
    for &g in &[128usize, 1024] {
        assert!(get(g, 0.2) > get(g, 0.5));
    }
}

#[test]
fn fig8_left_voting_beats_h2o_and_improves_with_cache() {
    // A reduced-scale run of the exact experiment code: the central
    // algorithmic claim (voting-based eviction beats accumulated-attention
    // eviction) must hold at every cache size, and perplexity must shrink
    // as the cache grows.
    let scale = veda_bench::QualityScale { samples: 2, sample_len: 1024, cache_sizes: &[96, 192, 384] };
    let points = veda_bench::fig8_left(scale);
    let get = |k: PolicyKind, c: usize| {
        points.iter().find(|p| p.policy == k && p.cache_size == c).unwrap().perplexity
    };
    for &c in scale.cache_sizes {
        assert!(
            get(PolicyKind::Voting, c) < get(PolicyKind::H2o, c),
            "cache {c}: voting {} vs h2o {}",
            get(PolicyKind::Voting, c),
            get(PolicyKind::H2o, c)
        );
    }
    for k in [PolicyKind::Voting, PolicyKind::H2o, PolicyKind::SlidingWindow] {
        assert!(get(k, 384) < get(k, 96), "{k} did not improve with cache size");
    }
}

#[test]
fn table1_reproduces_paper_claims() {
    let t = veda_cost::table1(&ArchConfig::veda());
    assert!((t.total.area_mm2 - 1.058).abs() < 0.01);
    assert!((t.total.power_mw - 375.26).abs() < 5.0);
    assert!(t.claims_hold());
}

#[test]
fn table2_reproduces_paper_claims() {
    let t = veda_cost::table2(&ArchConfig::veda());
    assert!(t.claims_hold());
    let veda = t.veda_row();
    assert!((veda.throughput_gops - 245.0).abs() < 5.0);
    assert!((veda.efficiency_gops_w - 653.0).abs() < 30.0);
    assert!((10.0..30.0).contains(&t.gpu.veda_tokens_per_s));
    assert!((20.0..60.0).contains(&t.gpu.energy_efficiency_ratio));
}

#[test]
fn attention_sparsity_claim_holds_on_synthetic_traces() {
    // Section I: attention sparsity approaching 95 %. At long contexts the
    // synthetic trace generator must reach high sparsity.
    let trace =
        veda_model::SyntheticTraceConfig { steps: 768, ..veda_model::SyntheticTraceConfig::default() }
            .generate();
    let s = trace.sparsity(0.9, 384);
    assert!(s > 0.75, "sparsity {s}");
}

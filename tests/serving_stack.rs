//! Cross-crate integration of the serving stack (Workload → Admission →
//! Scheduler → Engine): every arrival process × scheduling policy combo
//! completes and conserves requests, same-seed runs are bit-identical,
//! and capacity pressure produces preemption + costed swap traffic
//! without changing any request's generated token sequence.

use std::collections::BTreeMap;

use veda::EngineBuilder;
use veda_model::ModelConfig;
use veda_serving::{
    AdmissionConfig, ArrivalKind, RequestMix, SchedKind, Server, ServerConfig, ServingReport, Workload,
};

fn engine() -> veda::Engine {
    engine_with_threads(1)
}

fn engine_with_threads(threads: usize) -> veda::Engine {
    EngineBuilder::new().model(ModelConfig::tiny()).decode_threads(threads).build().expect("valid config")
}

fn workload(kind: ArrivalKind, seed: u64, total: usize) -> Workload {
    let mix = RequestMix::default();
    match kind {
        ArrivalKind::Poisson => Workload::poisson(seed, 0.6, total, mix),
        ArrivalKind::Burst => Workload::bursty(seed, 1.2, 6, 30, total, mix),
        ArrivalKind::Closed => Workload::closed_loop(seed, 3, 8.0, total, mix),
        ArrivalKind::Trace => {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            Workload::trace((0..total).map(|i| (3 * i as u64, mix.sample(&mut rng, i))).collect())
        }
    }
}

fn run(kind: ArrivalKind, sched: SchedKind, seed: u64, capacity_bytes: u64) -> ServingReport {
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes, max_queue_depth: 64 },
        sched,
        ..ServerConfig::default()
    };
    Server::new(engine(), workload(kind, seed, 18), config).run()
}

/// Generated token streams keyed by arrival index (stable across
/// scheduling decisions, unlike session ids).
fn tokens_by_arrival(report: &ServingReport) -> BTreeMap<usize, Vec<usize>> {
    report
        .records
        .iter()
        .filter_map(|record| {
            let session = record.session?;
            let outcome = report.engine.requests.iter().find(|r| r.session == session)?;
            Some((record.arrival, outcome.report.generated.clone()))
        })
        .collect()
}

#[test]
fn every_arrival_process_times_every_scheduler_completes() {
    for kind in [ArrivalKind::Poisson, ArrivalKind::Burst, ArrivalKind::Closed] {
        for sched in [SchedKind::Fcfs, SchedKind::Srb, SchedKind::Priority] {
            let report = run(kind, sched, 11, 24 << 10);
            assert_eq!(report.arrival, kind);
            assert_eq!(report.sched, sched);
            assert_eq!(report.submitted, 18, "{kind}/{sched}");
            assert_eq!(
                report.completed + report.rejected(),
                report.submitted,
                "{kind}/{sched}: every request must complete or be rejected"
            );
            assert!(report.completed > 0, "{kind}/{sched}: something must finish");
            assert!(report.ttft().is_some(), "{kind}/{sched}: TTFT is reported");
            assert!(report.e2e().is_some(), "{kind}/{sched}: e2e latency is reported");
            assert!(report.decode_ticks > 0 && report.ticks >= report.decode_ticks);
            assert!(
                report.kv_resident_peak_bytes <= report.capacity_bytes,
                "{kind}/{sched}: resident KV must never exceed capacity"
            );
            assert!(report.kv_reserved_peak_bytes <= report.capacity_bytes, "{kind}/{sched}");
        }
    }
}

#[test]
fn round_robin_and_trace_also_complete() {
    let report = run(ArrivalKind::Trace, SchedKind::RoundRobin, 5, 24 << 10);
    assert_eq!(report.completed + report.rejected(), report.submitted);
    assert!(report.completed > 0);
}

#[test]
fn same_seed_runs_are_bit_identical() {
    for sched in [SchedKind::Fcfs, SchedKind::Priority] {
        let a = run(ArrivalKind::Poisson, sched, 7, 20 << 10);
        let b = run(ArrivalKind::Poisson, sched, 7, 20 << 10);
        assert_eq!(a, b, "{sched}: same seed must reproduce the full report");
        let c = run(ArrivalKind::Poisson, sched, 8, 20 << 10);
        assert_ne!(
            tokens_by_arrival(&a),
            tokens_by_arrival(&c),
            "{sched}: different seeds produce different workloads"
        );
    }
}

#[test]
fn parallel_decode_is_bit_identical_to_serial() {
    // The tentpole invariant of the session-parallel engine: the same
    // seeded request mix run at decode_threads 1, 2 and 8 yields
    // byte-identical ServingReports (and therefore EngineReports and
    // token streams) across arrival processes and schedulers. The default
    // RequestMix rotates through every eviction policy, so all policy
    // stacks cross the worker threads.
    let run_with_threads = |threads: usize, kind: ArrivalKind, sched: SchedKind| {
        let config = ServerConfig {
            admission: AdmissionConfig { capacity_bytes: 24 << 10, max_queue_depth: 64 },
            sched,
            ..ServerConfig::default()
        };
        Server::new(engine_with_threads(threads), workload(kind, 11, 18), config).run()
    };
    for kind in [ArrivalKind::Poisson, ArrivalKind::Burst] {
        for sched in [SchedKind::Fcfs, SchedKind::Srb, SchedKind::Priority] {
            let serial = run_with_threads(1, kind, sched);
            for threads in [2, 8] {
                let parallel = run_with_threads(threads, kind, sched);
                assert_eq!(parallel, serial, "{kind}/{sched}: decode_threads({threads}) changed the report");
                assert_eq!(
                    tokens_by_arrival(&parallel),
                    tokens_by_arrival(&serial),
                    "{kind}/{sched}: decode_threads({threads}) changed a token stream"
                );
            }
        }
    }
}

#[test]
fn capacity_pressure_preempts_and_costs_swap_without_changing_tokens() {
    // Uncontended reference: capacity so large nothing queues or preempts.
    let unconstrained = run(ArrivalKind::Poisson, SchedKind::Priority, 13, 8 << 30);
    assert_eq!(unconstrained.preemptions, 0);
    assert_eq!(unconstrained.swap_out_bytes, 0);
    assert_eq!(unconstrained.completed, unconstrained.submitted);

    // Tight capacity: the priority scheduler must preempt to admit
    // higher-priority arrivals, costing host-link swap traffic.
    let constrained = run(ArrivalKind::Poisson, SchedKind::Priority, 13, 14 << 10);
    assert!(constrained.preemptions > 0, "tight capacity must force preemption");
    assert_eq!(constrained.preemptions, constrained.resumes, "every victim resumes");
    assert!(constrained.swap_out_bytes > 0, "swap-out traffic is costed");
    assert_eq!(constrained.swap_in_bytes, constrained.swap_out_bytes, "KV returns unchanged");
    assert!(constrained.swap_cycles > 0, "host-link cycles are charged");
    assert_eq!(constrained.completed, constrained.submitted, "pressure delays, never kills");
    assert!(
        constrained.e2e().unwrap().max >= unconstrained.e2e().unwrap().max,
        "contention cannot make the slowest request faster"
    );

    // The acceptance invariant: preemption + swap changes *when* tokens
    // appear, never *which* tokens a request generates.
    assert_eq!(
        tokens_by_arrival(&constrained),
        tokens_by_arrival(&unconstrained),
        "preemption must not change any generated token sequence"
    );
}

#[test]
fn oversized_requests_are_rejected_not_wedged() {
    // Capacity below the largest possible request: some arrivals can
    // never fit and must be rejected immediately; the rest still finish.
    let mix = RequestMix::default();
    let max_est = (mix.prompt_len.1 + mix.max_new_tokens.1) as u64 * engine().kv_bytes_per_token();
    let capacity = max_est / 2;
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: capacity, max_queue_depth: 64 },
        sched: SchedKind::Fcfs,
        ..ServerConfig::default()
    };
    let report = Server::new(engine(), Workload::poisson(29, 0.6, 18, mix), config).run();
    assert!(report.rejected_never_fits > 0, "some requests exceed half the max footprint");
    assert_eq!(report.completed + report.rejected(), report.submitted);
    assert!(report.records.iter().all(|r| r.finished.is_some() || r.rejected.is_some()));
}

#[test]
fn queue_depth_limit_rejects_overflow() {
    let config = ServerConfig {
        // Tiny queue + tiny capacity: a burst must overflow it.
        admission: AdmissionConfig { capacity_bytes: 13 << 10, max_queue_depth: 2 },
        sched: SchedKind::Fcfs,
        ..ServerConfig::default()
    };
    let report = Server::new(engine(), workload(ArrivalKind::Burst, 17, 18), config).run();
    assert!(report.rejected_queue_full > 0, "burst must overflow a depth-2 queue");
    assert_eq!(report.completed + report.rejected(), report.submitted);
}

#[test]
fn closed_loop_drains_even_when_requests_are_rejected() {
    // Regression: a rejected request must still free its closed-loop user
    // (otherwise the workload never exhausts and the run spins to the
    // max_ticks safety valve). Capacity below the largest request forces
    // never-fits rejections under closed-loop arrivals.
    let mix = RequestMix::default();
    let max_est = (mix.prompt_len.1 + mix.max_new_tokens.1) as u64 * engine().kv_bytes_per_token();
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: max_est / 2, max_queue_depth: 64 },
        sched: SchedKind::Fcfs,
        ..ServerConfig::default()
    };
    let report = Server::new(engine(), Workload::closed_loop(41, 3, 6.0, 18, mix), config).run();
    assert_eq!(report.submitted, 18, "every closed-loop request must eventually arrive");
    assert!(report.rejected_never_fits > 0, "tiny capacity must reject some requests");
    assert_eq!(report.completed + report.rejected(), report.submitted);
    assert!(report.ticks < ServerConfig::default().max_ticks, "run must drain, not hit the valve");
}

#[test]
fn invalid_trace_requests_are_rejected_cleanly() {
    use veda::{Budget, Request};
    use veda_serving::ServingRequest;
    let mix = RequestMix::default();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(23)
    };
    let bad = |request: Request| ServingRequest { request, priority: 0 };
    let arrivals = vec![
        (0, bad(Request::new(vec![], 4))),          // empty prompt
        (0, bad(Request::new(vec![1, 2, 3], 0))),   // nothing to generate
        (1, bad(Request::new(vec![1, 99_999], 4))), // out of vocabulary
        (1, bad(Request::new(vec![1, 2, 3], 4).budget(Budget::Fixed(0)))), // unusable budget
        (2, mix.sample(&mut rng, 0)),               // one valid request
    ];
    let report = Server::new(engine(), Workload::trace(arrivals), ServerConfig::default()).run();
    assert_eq!(report.rejected_invalid, 4, "all malformed requests are rejected, not panicked on");
    assert_eq!(report.completed, 1, "the valid request still completes");
    assert_eq!(report.completed + report.rejected(), report.submitted);
}

#[test]
fn budget_shrink_mode_tightens_caps_under_pressure() {
    use veda_eviction::{BudgetController, PressureConfig};
    let controller =
        BudgetController::new(PressureConfig { high_watermark: 0.5, low_watermark: 0.35, floor_tokens: 6 });
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: 20 << 10, max_queue_depth: 64 },
        sched: SchedKind::Fcfs,
        shrink: Some(controller),
        ..ServerConfig::default()
    };
    let report = Server::new(engine(), workload(ArrivalKind::Poisson, 13, 18), config).run();
    assert!(report.budget_shrinks > 0, "high occupancy must trigger budget shrinking");
    assert_eq!(report.completed + report.rejected(), report.submitted);
    // Shrinking is the lossy pressure response: token streams may legally
    // differ from an unconstrained run, but counts still conserve.
    assert!(report.kv_resident_peak_bytes <= report.capacity_bytes);
}

#[test]
fn chunked_prefill_makes_ttft_real_and_monotone_in_prompt_length() {
    // Three lone requests (arrivals spaced so nothing queues or batches)
    // under FCFS with a finite prefill chunk: TTFT must be strictly
    // positive — the prompt is consumed on the clock, not instantly at
    // admission — and monotone in prompt length.
    use veda::Request;
    use veda_serving::ServingRequest;
    let chunk = 4;
    let engine =
        EngineBuilder::new().model(ModelConfig::tiny()).prefill_chunk(chunk).build().expect("valid config");
    let prompt_lens = [8usize, 16, 32];
    let arrivals = prompt_lens
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let prompt: Vec<usize> = (0..len).map(|j| (j * 3 + 1) % 60 + 1).collect();
            (300 * i as u64, ServingRequest { request: Request::new(prompt, 4), priority: 0 })
        })
        .collect();
    let config = ServerConfig { sched: SchedKind::Fcfs, ..ServerConfig::default() };
    let report = Server::new(engine, Workload::trace(arrivals), config).run();
    assert_eq!(report.completed, 3);

    let ttfts: Vec<u64> =
        report.records.iter().map(|r| r.ttft().expect("completed request has a TTFT")).collect();
    for (i, (&ttft, &len)) in ttfts.iter().zip(&prompt_lens).enumerate() {
        assert!(ttft > 0, "request {i}: chunked prefill must make TTFT strictly positive");
        assert!(
            ttft >= (len as u64).div_ceil(chunk as u64),
            "request {i}: TTFT {ttft} cannot beat its own prefill ({len} tokens at chunk {chunk})"
        );
    }
    assert!(ttfts.windows(2).all(|w| w[0] < w[1]), "TTFT must grow with prompt length: {ttfts:?}");
    assert!(report.ttft().expect("completed requests").p50 > 0, "TTFT percentiles are nonzero");
    assert!(report.engine.prefill_tokens > 0, "prompt tokens land on the clock");
}

#[test]
fn chunked_prefill_stack_is_bit_identical_across_threads() {
    // The parallel fan-out covers prefill chunks exactly like decode
    // steps: a chunked-prefill serving run must not depend on the worker
    // thread count.
    let run_chunked = |threads: usize| {
        let engine = EngineBuilder::new()
            .model(ModelConfig::tiny())
            .decode_threads(threads)
            .prefill_chunk(4)
            .build()
            .expect("valid config");
        let config = ServerConfig {
            admission: AdmissionConfig { capacity_bytes: 24 << 10, max_queue_depth: 64 },
            sched: SchedKind::Fcfs,
            ..ServerConfig::default()
        };
        Server::new(engine, workload(ArrivalKind::Poisson, 11, 18), config).run()
    };
    let serial = run_chunked(1);
    assert!(serial.engine.prefill_tokens > 0, "chunked prefill must be exercised");
    for threads in [2, 8] {
        let parallel = run_chunked(threads);
        assert_eq!(parallel, serial, "decode_threads({threads}) changed a chunked-prefill run");
    }
}

#[test]
fn swap_latency_delays_resumed_sessions_without_changing_tokens() {
    // The serialized-swap invariant: under capacity pressure, every
    // swap-in parks its session for at least one tick (the transfer's
    // cycles must elapse on the clock), yet the delay changes only when
    // tokens appear, never which tokens a request generates.
    let unconstrained = run(ArrivalKind::Poisson, SchedKind::Priority, 13, 8 << 30);
    assert_eq!(unconstrained.swap_wait_ticks, 0, "no pressure, no swap waits");

    let constrained = run(ArrivalKind::Poisson, SchedKind::Priority, 13, 14 << 10);
    assert!(constrained.resumes > 0, "tight capacity must force swap-ins");
    assert!(
        constrained.swap_wait_ticks >= constrained.resumes,
        "each swap-in waits at least one tick: {} waits for {} resumes",
        constrained.swap_wait_ticks,
        constrained.resumes
    );
    assert_eq!(constrained.completed, constrained.submitted, "swap latency delays, never kills");
    assert_eq!(
        tokens_by_arrival(&constrained),
        tokens_by_arrival(&unconstrained),
        "swap latency must not change any generated token sequence"
    );
}

#[test]
fn shared_prefix_cache_admits_more_sessions_under_capacity_pressure() {
    // The serving-level payoff of shared-prefix KV reuse: under the same
    // tight capacity and bounded queue, a workload of prompts sharing a
    // long prefix admits strictly more sessions (equivalently, rejects
    // fewer) when the engine's prefix cache is enabled — because known-
    // prefix arrivals reserve only their unshared peak bytes — while
    // every request that completes in both runs generates the identical
    // token stream. Unbounded budgets make every request eviction-free,
    // the soundness condition for the admission discount
    // (`Request::never_evicts`): budgeted sessions could privatize their
    // shared span by evicting inside it, so they reserve full peaks.
    use veda::{Budget, PrefixCacheConfig};

    let mix = || RequestMix {
        shared_prefix_len: 24,
        prefix_groups: 1,
        prompt_len: (3, 6), // private suffix bounds on top of the prefix
        max_new_tokens: (4, 8),
        budgets: vec![Budget::Unbounded],
        ..RequestMix::default()
    };
    let per_token = engine().kv_bytes_per_token();
    // Room for roughly two unshared peaks (≈ 38 resident tokens each):
    // without sharing the queue backs up and overflows; with sharing the
    // ≈ 14-token unshared footprints pack several sessions deep.
    let capacity = 80 * per_token;
    let run = |prefix_cache: bool| {
        let mut builder = EngineBuilder::new().model(ModelConfig::tiny());
        if prefix_cache {
            // Bound the (churn-free: no TTL, no spill) cache to half the
            // capacity so its overhead can never crowd admissions out —
            // the sizing rule the admission docs prescribe.
            builder = builder.prefix_cache(PrefixCacheConfig {
                min_match_tokens: 8,
                max_entries: 8,
                max_bytes: capacity / 2,
                ..PrefixCacheConfig::default()
            });
        }
        let engine = builder.build().expect("valid config");
        let config = ServerConfig {
            admission: AdmissionConfig { capacity_bytes: capacity, max_queue_depth: 3 },
            sched: SchedKind::Fcfs,
            ..ServerConfig::default()
        };
        // Rate 0.8: fast enough that tight capacity backs the queue up
        // (rejections without the cache), slow enough that arrivals after
        // the first admission see its cached prefix.
        Server::new(engine, Workload::poisson(19, 0.8, 24, mix()), config).run()
    };

    let disabled = run(false);
    let enabled = run(true);
    assert_eq!(disabled.engine.prefix.hits, 0);
    assert!(enabled.engine.prefix.hits > 0, "shared prompts must hit the cache");
    assert!(enabled.prefix_saved_tokens() > 0);
    assert!(
        disabled.rejected() > 0,
        "the pressure point must actually reject without the cache (tune capacity/queue if not)"
    );
    assert!(
        enabled.admitted > disabled.admitted,
        "prefix sharing must admit strictly more sessions: {} vs {}",
        enabled.admitted,
        disabled.admitted
    );
    assert!(enabled.rejected() < disabled.rejected());

    // Unchanged per-session token streams: every arrival that completed
    // in both runs generated exactly the same tokens.
    let with = tokens_by_arrival(&enabled);
    let without = tokens_by_arrival(&disabled);
    let mut compared = 0;
    for (arrival, tokens) in &without {
        if let Some(shared_run) = with.get(arrival) {
            assert_eq!(shared_run, tokens, "arrival {arrival}: prefix sharing changed a token stream");
            compared += 1;
        }
    }
    assert!(compared > 0, "some requests must complete in both runs");

    // The sharing is honest accounting, not off-the-books capacity: the
    // reported resident peak includes the cache's own entries (counted
    // once) and still fits the configured capacity.
    assert!(enabled.engine.prefix.resident_bytes > 0);
    assert!(
        enabled.kv_resident_peak_bytes <= enabled.capacity_bytes,
        "resident KV (sessions + prefix cache) must fit capacity: {} vs {}",
        enabled.kv_resident_peak_bytes,
        enabled.capacity_bytes
    );
}

#[test]
fn report_display_shows_latency_table() {
    let text = run(ArrivalKind::Poisson, SchedKind::Srb, 3, 20 << 10).to_string();
    for needle in ["ttft", "p50", "p95", "p99", "queue depth", "preemptions", "rejected", "swap traffic"] {
        assert!(text.contains(needle), "report must mention {needle:?}:\n{text}");
    }
}

//! Eviction lab: watch the voting algorithm work on a synthetic attention
//! trace with controllable sink / heavy-hitter / outlier structure, and
//! compare which absolute positions each policy keeps resident.
//!
//! ```sh
//! cargo run --release --example eviction_lab
//! ```

use veda_eviction::{CacheSimulator, PolicyKind};
use veda_model::SyntheticTraceConfig;

fn main() {
    // A 256-step trace with a strong sink, 6 % heavy hitters, recency
    // structure and occasional outlier spikes.
    let trace = SyntheticTraceConfig { steps: 256, heads: 4, ..SyntheticTraceConfig::default() }.generate();
    println!(
        "trace sparsity (positions droppable at 90% kept mass): {:.1}%\n",
        trace.sparsity(0.9, 64) * 100.0
    );

    let budget = 48;
    for kind in [PolicyKind::SlidingWindow, PolicyKind::H2o, PolicyKind::Voting, PolicyKind::Random] {
        let mut sim = CacheSimulator::new(kind.build(), budget);
        for (i, step) in trace.iter().enumerate() {
            sim.step_from_full_scores(i, step);
        }
        let resident = sim.resident();
        let old = resident.iter().filter(|&&p| p < 128).count();
        println!(
            "{:<16} kept {:>2} positions older than half the trace; stats: {}",
            kind.as_str(),
            old,
            sim.stats()
        );
        println!("    oldest kept: {:?}", &resident[..8.min(resident.len())]);
    }

    println!("\nThe voting policy retains old *heavy-hitter* positions while the");
    println!("sliding window forgets everything outside its window and pure");
    println!("accumulation over-retains early positions.");
}

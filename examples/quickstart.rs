//! Quickstart: run one end-to-end VEDA simulation — a prompt through the
//! functional transformer with voting-based eviction on the
//! dataflow-flexible accelerator — and print what the system did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use veda::{SimulationBuilder, SimulationReport};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small but real transformer (synthetic structured weights): D=256,
    // 8 heads, 4 layers. The architecture is VEDA's 8x8x2 PE array scaled
    // to this head geometry.
    let mut sim = SimulationBuilder::new()
        .model(ModelConfig::small())
        .policy(PolicyKind::Voting)
        .compression_ratio(0.5)
        .build()?;

    let prompt: Vec<usize> = (1..=64).map(|i| (i * 37) % 4000 + 1).collect();
    let report: SimulationReport = sim.run(&prompt, 32);

    println!("prompt length        : {}", prompt.len());
    println!("generated tokens     : {:?}", &report.generated[..8.min(report.generated.len())]);
    println!("cache budget         : {} (ratio 0.5)", report.cache_budget);
    println!("final cache length   : {}", report.final_cache_len);
    println!("evictions (all layers): {}", report.evictions);
    println!("decode throughput    : {:.1} tokens/s @ 1 GHz", report.tokens_per_second);
    println!("energy per token     : {:.3} mJ (core + HBM)", report.energy_mj_per_token);
    println!(
        "attention cycles/token: first {} ... last {}",
        report.attention_cycles_per_token.first().unwrap(),
        report.attention_cycles_per_token.last().unwrap()
    );
    Ok(())
}

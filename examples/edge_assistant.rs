//! Edge-assistant scenario: the workload VEDA's introduction motivates — a
//! private on-device assistant answering over a long document. The prompt
//! is long (the "document"), generation is interactive, and memory is
//! scarce, so the KV cache must be compressed without wrecking accuracy.
//!
//! The example compares eviction policies at several compression ratios on
//! both axes the paper evaluates: attention latency (cycle model) and
//! output distortion versus the full-cache oracle (KL on the real
//! transformer's logits).
//!
//! ```sh
//! cargo run --release --example edge_assistant
//! ```

use veda::SimulationBuilder;
use veda_eviction::PolicyKind;
use veda_model::{eval::transformer_distortion, ModelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::tiny();
    // The "document": a long, structured prompt.
    let document: Vec<usize> = (0..96).map(|i| (i * 13 + (i / 7) * 5) % 60 + 1).collect();

    println!("== Edge assistant: 96-token document, 24 generated tokens ==\n");
    println!(
        "{:<16} {:>8} {:>14} {:>16} {:>12}",
        "policy", "ratio", "tokens/s", "attn cycles/tok", "KL vs full"
    );

    for policy in [PolicyKind::Full, PolicyKind::SlidingWindow, PolicyKind::H2o, PolicyKind::Voting] {
        for ratio in [0.5_f64, 0.25] {
            let mut sim = SimulationBuilder::new()
                .model(model.clone())
                .policy(policy)
                .compression_ratio(ratio)
                .build()?;
            let report = sim.run(&document, 24);
            let avg_attn: u64 = report.attention_cycles_per_token.iter().sum::<u64>()
                / report.attention_cycles_per_token.len() as u64;
            let budget = (document.len() as f64 * ratio).round() as usize;
            let distortion = transformer_distortion(&model, &document, policy, budget);
            println!(
                "{:<16} {:>8.2} {:>14.1} {:>16} {:>12.4}",
                policy.as_str(),
                ratio,
                report.tokens_per_second,
                avg_attn,
                distortion
            );
            if policy == PolicyKind::Full {
                break; // ratio is irrelevant without eviction
            }
        }
    }

    println!("\nLower KL at the same ratio = better cache retention;");
    println!("fewer attention cycles = faster generation (the eviction speedup).");
    Ok(())
}

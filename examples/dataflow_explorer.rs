//! Dataflow explorer: interactively sweep the cycle model across the three
//! architecture variants of the paper's ablation and across sequence
//! lengths, showing *why* the flexible-product dataflow and element-serial
//! scheduling win — including the epoch-padding pathology (l = 256 → 257)
//! the introduction describes.
//!
//! ```sh
//! cargo run --release --example dataflow_explorer
//! ```

use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_accel::attention::{decode_attention_cycles_per_head, prefill_attention_cycles_per_head};

fn main() {
    let arch = ArchConfig::veda();

    println!("== Decode attention cycles per head (d = 128, 8x8x2 PEs) ==\n");
    println!("{:<8} {:>12} {:>14} {:>16}", "l", "Baseline", "Baseline+F", "Baseline+F+E");
    for l in [128usize, 256, 257, 512, 1024, 2048, 4096] {
        let row: Vec<u64> =
            DataflowVariant::ALL.iter().map(|&v| decode_attention_cycles_per_head(&arch, v, l)).collect();
        println!("{:<8} {:>12} {:>14} {:>16}", l, row[0], row[1], row[2]);
    }

    println!("\nNote l = 256 -> 257: the fixed adder tree pays a whole extra");
    println!("epoch in s'xV, while the flexible dataflow grows by 2 cycles.\n");

    println!("== Prefill attention cycles per head (causal skip) ==\n");
    println!("{:<8} {:>12} {:>16}", "prompt", "Baseline", "Flexible (F+E)");
    for p in [128usize, 256, 512, 1024] {
        let base = prefill_attention_cycles_per_head(&arch, DataflowVariant::Baseline, p);
        let flex = prefill_attention_cycles_per_head(&arch, DataflowVariant::FlexibleElementSerial, p);
        println!("{:<8} {:>12} {:>16}   ({:.2}x)", p, base, flex, base as f64 / flex as f64);
    }
    println!("\nThe flexible PE array skips the causal upper triangle, roughly");
    println!("halving effective attention operations in the prefilling phase.");
}

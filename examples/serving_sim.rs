//! Serving simulation: the ROADMAP's scaling anchor. A seeded workload of
//! timed arrivals (open-loop Poisson, bursty on-off, closed-loop users, or
//! deterministic trace) flows through the `veda-serving` stack — admission
//! control accounts KV bytes against HBM capacity, a scheduling policy
//! decides which queued request is admitted next (preempting and swapping
//! sessions over the host link when it must make room), and the engine
//! decodes every admitted session in batched ticks. The run ends with a
//! `ServingReport`: TTFT / queueing / end-to-end latency percentiles,
//! queue depth, preemption/rejection counts and swap traffic, next to the
//! engine's batched throughput report.
//!
//! With `--shards N` (N > 1) the same workload instead drives a
//! [`veda_serving::Cluster`]: N full engines behind one routing plane
//! (`--router round_robin|least_loaded|prefix_affinity`), stepped on one
//! virtual clock, with opt-in cross-shard KV migration (`--migrate`).
//! The run then ends with a `ClusterReport` (routing counts, migration
//! traffic, global latency aggregates) plus each shard's `ServingReport`.
//!
//! The fault plane rides on the cluster path (`--fault-plan SPEC`
//! schedules fail-stop crashes and link degradations; `--deadline-ticks`,
//! `--shed-watermark`, `--retry-max`, `--retry-backoff` arm deadlines,
//! load shedding and the retry policy). Any fault flag promotes a
//! 1-shard run onto the cluster path, and the streamed ticks annotate
//! `shard N DOWN` / `shard N UP` transitions live.
//!
//! ```sh
//! cargo run --release --example serving_sim -- --arrival poisson --sched fcfs --seed 7
//! cargo run --release --example serving_sim -- --arrival burst --sched priority --capacity-kb 16
//! cargo run --release --example serving_sim -- --arrival closed --sched srb --requests 24 --rate 0.8
//! cargo run --release --example serving_sim -- --shards 4 --router prefix --shared-prefix 24 --prefix-groups 3
//! cargo run --release --example serving_sim -- --shards 2 --router load --migrate --capacity-kb 16
//! cargo run --release --example serving_sim -- --shards 2 --fault-plan "crash@10:shard=1:recover=60" --requests 32
//! cargo run --release --example serving_sim -- --shards 2 --deadline-ticks 200 --shed-watermark 0.8 --rate 2.0
//! ```

use std::sync::{Arc, Mutex};

use veda::{EngineBuilder, PrefixCacheConfig};
use veda_accel::DataflowVariant;
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;
use veda_serving::{
    chrome_trace_json, AdmissionConfig, ArrivalKind, Cluster, ClusterConfig, FaultConfig, FaultPlan,
    MigrationConfig, RecordingSink, RequestMix, RetryPolicy, RouterKind, SchedKind, Server, ServerConfig,
    ShardHealth, SinkHandle, Workload,
};

struct Args {
    seed: u64,
    arrival: ArrivalKind,
    rate: f64,
    sched: SchedKind,
    requests: usize,
    capacity_kb: u64,
    policy: Option<PolicyKind>,
    variant: DataflowVariant,
    threads: usize,
    /// Prompt tokens one tick may consume per prefilling session;
    /// 0 selects instant (off-clock) prefill.
    prefill_chunk: usize,
    /// Shared-prefix length prepended to every prompt (0 = no shared
    /// prefixes, prefix cache disabled).
    shared_prefix: usize,
    /// Distinct shared-prefix groups requests rotate through.
    prefix_groups: usize,
    /// Idle ticks before an unpinned prefix-cache entry expires
    /// (`None` = entries never expire, the insert-only v1 behaviour).
    prefix_ttl: Option<u64>,
    /// Spill byte-pressure prefix-cache evictions to the host tier
    /// instead of dropping them.
    prefix_spill: bool,
    /// Engines behind the routing plane; 1 runs the standalone server.
    shards: usize,
    /// Routing policy for the multi-shard path.
    router: RouterKind,
    /// Enables cross-shard KV migration (multi-shard path only).
    migrate: bool,
    /// Write a Chrome-trace-event JSON (Perfetto-loadable) of every
    /// request's lifecycle to this path.
    trace_out: Option<String>,
    /// Write the run's metrics registry as JSON to this path.
    metrics_out: Option<String>,
    /// Fault-plan spec (`crash@T:shard=N[:recover=T2][:drain=D]` /
    /// `degrade@T1-T2:shard=N:bw=F`, `;`-separated).
    fault_plan: Option<String>,
    /// Per-attempt end-to-end deadline, in ticks.
    deadline_ticks: Option<u64>,
    /// Load-shedding watermark fraction of total queue slots.
    shed_watermark: Option<f64>,
    /// Retry attempts before a request is dead-lettered.
    retry_max: Option<u32>,
    /// First-retry backoff in ticks (doubles per attempt).
    retry_backoff: Option<u64>,
}

impl Args {
    /// Whether any fault-plane flag was given (promotes a 1-shard run
    /// onto the cluster path, where the fault plane lives).
    fn faulted(&self) -> bool {
        self.fault_plan.is_some()
            || self.deadline_ticks.is_some()
            || self.shed_watermark.is_some()
            || self.retry_max.is_some()
            || self.retry_backoff.is_some()
    }

    /// Builds the fault-plane configuration, or `None` when no fault
    /// flag was given (keeping the run on invariant #9's no-plane side).
    fn fault_config(&self) -> Result<Option<FaultConfig>, Box<dyn std::error::Error>> {
        if !self.faulted() {
            return Ok(None);
        }
        let defaults = RetryPolicy::default();
        Ok(Some(FaultConfig {
            plan: match &self.fault_plan {
                Some(spec) => FaultPlan::parse(spec)?,
                None => FaultPlan::default(),
            },
            retry: RetryPolicy {
                max_attempts: self.retry_max.unwrap_or(defaults.max_attempts),
                backoff_base: self.retry_backoff.unwrap_or(defaults.backoff_base),
            },
            ttft_deadline: None,
            e2e_deadline: self.deadline_ticks,
            shed_watermark: self.shed_watermark,
        }))
    }
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut parsed = Args {
        seed: 7,
        arrival: ArrivalKind::Poisson,
        rate: 0.5,
        sched: SchedKind::Fcfs,
        requests: 24,
        capacity_kb: 32,
        policy: None,
        variant: DataflowVariant::FlexibleElementSerial,
        threads: 1,
        prefill_chunk: 0,
        shared_prefix: 0,
        prefix_groups: 1,
        prefix_ttl: None,
        prefix_spill: false,
        shards: 1,
        router: RouterKind::RoundRobin,
        migrate: false,
        trace_out: None,
        metrics_out: None,
        fault_plan: None,
        deadline_ticks: None,
        shed_watermark: None,
        retry_max: None,
        retry_backoff: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().ok_or(format!("missing value after {arg}"));
        match arg.as_str() {
            "--seed" => parsed.seed = value()?.parse()?,
            "--arrival" => parsed.arrival = value()?.parse()?,
            "--rate" => parsed.rate = value()?.parse()?,
            "--sched" => parsed.sched = value()?.parse()?,
            "--requests" => parsed.requests = value()?.parse()?,
            "--capacity-kb" => parsed.capacity_kb = value()?.parse()?,
            "--policy" => parsed.policy = Some(value()?.parse()?),
            "--variant" => parsed.variant = value()?.parse()?,
            "--threads" => parsed.threads = value()?.parse()?,
            "--prefill-chunk" => parsed.prefill_chunk = value()?.parse()?,
            "--shared-prefix" => parsed.shared_prefix = value()?.parse()?,
            "--prefix-groups" => parsed.prefix_groups = value()?.parse()?,
            "--prefix-ttl" => parsed.prefix_ttl = Some(value()?.parse()?),
            "--prefix-spill" => parsed.prefix_spill = true,
            "--shards" => parsed.shards = value()?.parse()?,
            "--router" => parsed.router = value()?.parse()?,
            "--migrate" => parsed.migrate = true,
            "--trace-out" => parsed.trace_out = Some(value()?),
            "--metrics-out" => parsed.metrics_out = Some(value()?),
            "--fault-plan" => parsed.fault_plan = Some(value()?),
            "--deadline-ticks" => parsed.deadline_ticks = Some(value()?.parse()?),
            "--shed-watermark" => parsed.shed_watermark = Some(value()?.parse()?),
            "--retry-max" => parsed.retry_max = Some(value()?.parse()?),
            "--retry-backoff" => parsed.retry_backoff = Some(value()?.parse()?),
            "--help" | "-h" => {
                println!(
                    "usage: serving_sim [--seed N] [--arrival poisson|burst|closed|trace] [--rate R]\n\
                     \x20                  [--sched fcfs|round_robin|srb|priority] [--requests N]\n\
                     \x20                  [--capacity-kb KB] [--policy P] [--variant V] [--threads N]\n\
                     \x20                  [--prefill-chunk N]   (0 = instant prefill at admission)\n\
                     \x20                  [--shared-prefix LEN] [--prefix-groups N]\n\
                     \x20                  (LEN > 0 prepends per-group shared prompt prefixes and\n\
                     \x20                   enables the engine's prefix cache)\n\
                     \x20                  [--prefix-ttl TICKS] (expire prefix-cache entries idle\n\
                     \x20                   that long; default: entries never expire)\n\
                     \x20                  [--prefix-spill]     (spill byte-pressure prefix-cache\n\
                     \x20                   evictions to a host-memory tier instead of dropping)\n\
                     \x20                  [--shards N] [--router round_robin|least_loaded|prefix_affinity]\n\
                     \x20                  [--migrate]\n\
                     \x20                  (--shards > 1 runs N engines behind the routing plane;\n\
                     \x20                   --capacity-kb is then per shard, --migrate enables\n\
                     \x20                   cross-shard KV migration when a shard runs hot)\n\
                     \x20                  [--trace-out PATH]   (Chrome-trace-event JSON, one track\n\
                     \x20                   per shard — load it in Perfetto / chrome://tracing)\n\
                     \x20                  [--metrics-out PATH] (metrics registry as JSON)\n\
                     \x20                  [--fault-plan SPEC]  (seeded fault schedule, `;`-separated:\n\
                     \x20                   crash@T:shard=N[:recover=T2][:drain=D] fail-stops shard N,\n\
                     \x20                   degrade@T1-T2:shard=N:bw=F scales its host link)\n\
                     \x20                  [--deadline-ticks N] (per-attempt end-to-end deadline)\n\
                     \x20                  [--shed-watermark F] (shed newest low-priority queued work\n\
                     \x20                   when global queue depth exceeds F of total slots)\n\
                     \x20                  [--retry-max N] [--retry-backoff T]\n\
                     \x20                  (any fault flag runs the cluster path even at --shards 1;\n\
                     \x20                   streamed ticks report `shard N DOWN` / `shard N UP` live)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)").into()),
        }
    }
    if parsed.rate <= 0.0 {
        return Err("--rate must be positive".into());
    }
    if parsed.prefix_groups == 0 {
        return Err("--prefix-groups must be at least 1".into());
    }
    if parsed.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(parsed)
}

/// Builds the requested workload over the (optionally single-policy) mix.
fn build_workload(args: &Args) -> Workload {
    let mut mix = RequestMix::default();
    if let Some(policy) = args.policy {
        mix.policies = vec![policy];
    }
    if args.shared_prefix > 0 {
        mix.shared_prefix_len = args.shared_prefix;
        mix.prefix_groups = args.prefix_groups;
        // Prompt-length bounds now size the private suffix.
        mix.prompt_len = (4, 12);
    }
    match args.arrival {
        ArrivalKind::Poisson => Workload::poisson(args.seed, args.rate, args.requests, mix),
        ArrivalKind::Burst => {
            Workload::bursty(args.seed, args.rate.max(0.5) * 2.0, 8, 40, args.requests, mix)
        }
        ArrivalKind::Closed => {
            Workload::closed_loop(args.seed, 4.max(args.requests / 6), 12.0, args.requests, mix)
        }
        ArrivalKind::Trace => {
            // A deterministic stair-step trace: pairs of requests every
            // five ticks, built from the same seeded mix.
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(args.seed);
            let arrivals =
                (0..args.requests).map(|i| ((i as u64 / 2) * 5, mix.sample(&mut rng, i))).collect();
            Workload::trace(arrivals)
        }
    }
}

fn build_engine(args: &Args) -> Result<veda::Engine, veda::BuildError> {
    let mut builder =
        EngineBuilder::new().model(ModelConfig::tiny()).variant(args.variant).decode_threads(args.threads);
    if args.prefill_chunk > 0 {
        builder = builder.prefill_chunk(args.prefill_chunk);
    }
    if args.shared_prefix > 0 {
        // Bound the cache to half the admission capacity, the sizing rule
        // the admission docs prescribe (its bytes are charged against
        // headroom, so an unbounded cache could crowd out admissions).
        // The churn knobs default to the v1 insert-only behaviour: no
        // TTL, drop on byte-pressure eviction.
        builder = builder.prefix_cache(PrefixCacheConfig {
            min_match_tokens: (args.shared_prefix / 2).max(4),
            max_entries: 32,
            max_bytes: (args.capacity_kb << 10) / 2,
            ttl_ticks: args.prefix_ttl.unwrap_or(u64::MAX),
            spill: args.prefix_spill,
        });
    }
    builder.build()
}

/// Wires a recording sink when `--trace-out` asked for one. Returns the
/// config-side handle and the recorder to drain after the run.
fn make_sink(wanted: bool) -> (Option<SinkHandle>, Option<Arc<Mutex<RecordingSink>>>) {
    if wanted {
        let (handle, recorder) = SinkHandle::recording();
        (Some(handle), Some(recorder))
    } else {
        (None, None)
    }
}

/// Writes the Chrome trace (if recorded) and metrics JSON (if asked for).
fn write_observability(
    args: &Args,
    recorder: Option<Arc<Mutex<RecordingSink>>>,
    metrics_json: String,
) -> Result<(), Box<dyn std::error::Error>> {
    if let (Some(path), Some(recorder)) = (&args.trace_out, recorder) {
        let events = recorder.lock().expect("recorder lock").take_events();
        std::fs::write(path, chrome_trace_json(&events))?;
        println!("trace: {} events -> {path} (load in Perfetto / chrome://tracing)", events.len());
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics_json)?;
        println!("metrics: -> {path}");
    }
    Ok(())
}

/// The multi-shard path: N engines behind the routing plane on one clock.
fn run_cluster(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let engines: Vec<veda::Engine> =
        (0..args.shards).map(|_| build_engine(args)).collect::<Result<_, _>>()?;
    let kv_per_token = engines[0].kv_bytes_per_token();
    let workload = build_workload(args);
    let (trace, recorder) = make_sink(args.trace_out.is_some());
    let faults = args.fault_config()?;
    let config = ClusterConfig {
        shards: args.shards,
        per_shard_capacity_bytes: args.capacity_kb << 10,
        router: args.router,
        sched: args.sched,
        migration: args.migrate.then(MigrationConfig::default),
        faults,
        trace,
        ..ClusterConfig::default()
    };
    println!(
        "== serving_sim: {} requests over {} shards, {} router{}{}, {} arrivals (rate {}), {} scheduler ==",
        args.requests,
        args.shards,
        args.router,
        if args.migrate { " + migration" } else { "" },
        if args.faulted() { " + fault plane" } else { "" },
        args.arrival,
        args.rate,
        args.sched,
    );
    println!(
        "   seed {}, per-shard KV capacity {} KiB ({} B/token => ~{} resident tokens/shard)\n",
        args.seed,
        args.capacity_kb,
        kv_per_token,
        (args.capacity_kb << 10) / kv_per_token.max(1)
    );

    // Stream the first stretch of the virtual clock, then run silently.
    const SHOWN_TICKS: usize = 24;
    let mut cluster = Cluster::try_new(engines, workload, config)?;
    println!(
        "{:<8} {:>9} {:>10} {:>12}  per-shard reserved B",
        "tick", "in-flight", "completed", "migrations"
    );
    let mut shown = 0;
    let mut prev_health = cluster.health().to_vec();
    while !cluster.is_done() && shown < SHOWN_TICKS {
        cluster.tick();
        shown += 1;
        for (shard, (before, after)) in prev_health.iter().zip(cluster.health()).enumerate() {
            match (before == &ShardHealth::Down, after == &ShardHealth::Down) {
                (false, true) => println!("{:<8} ** shard {shard} DOWN **", cluster.now()),
                (true, false) => println!("{:<8} ** shard {shard} UP **", cluster.now()),
                _ => {}
            }
        }
        prev_health = cluster.health().to_vec();
        let reserved: Vec<String> = cluster.shards().iter().map(|s| s.reserved_bytes().to_string()).collect();
        println!(
            "{:<8} {:>9} {:>10} {:>12}  [{}]",
            cluster.now(),
            cluster.in_flight(),
            cluster.completed(),
            cluster.migrations(),
            reserved.join(", "),
        );
    }
    if !cluster.is_done() {
        println!("…");
    }
    let report = cluster.run();

    println!("\n{}", report);
    for shard in &report.shards {
        println!("{}", shard);
    }
    println!("(per-shard reports above; each request's record lives on the shard that accepted it)");
    write_observability(args, recorder, report.metrics().to_json())?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    if args.shards > 1 || args.faulted() {
        // The fault plane lives on the cluster path; a faulted 1-shard
        // run rides it too (bit-identical to the Server path otherwise).
        return run_cluster(&args);
    }
    let engine = build_engine(&args)?;
    let kv_per_token = engine.kv_bytes_per_token();
    let workload = build_workload(&args);
    let (trace, recorder) = make_sink(args.trace_out.is_some());
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: args.capacity_kb << 10, ..AdmissionConfig::default() },
        sched: args.sched,
        trace,
        ..ServerConfig::default()
    };

    let prefill_mode = if args.prefill_chunk > 0 {
        format!("chunked prefill ({} tokens/tick)", args.prefill_chunk)
    } else {
        "instant prefill".to_string()
    };
    let prefix_mode = if args.shared_prefix > 0 {
        format!(
            ", {}-token shared prefixes × {} group(s) + prefix cache",
            args.shared_prefix, args.prefix_groups
        )
    } else {
        String::new()
    };
    println!(
        "== serving_sim: {} requests, {} arrivals (rate {}), {} scheduler, {} dataflow, {} decode thread(s), {}{} ==",
        args.requests,
        args.arrival,
        args.rate,
        args.sched,
        args.variant,
        engine.decode_threads(),
        prefill_mode,
        prefix_mode,
    );
    println!(
        "   seed {}, KV capacity {} KiB ({} B/token => ~{} resident tokens)\n",
        args.seed,
        args.capacity_kb,
        kv_per_token,
        (args.capacity_kb << 10) / kv_per_token.max(1)
    );

    // Stream the first stretch of the virtual clock, then run silently.
    const SHOWN_TICKS: usize = 24;
    let mut server = Server::new(engine, workload, config);
    println!("{:<8} {:>7} {:>8} {:>8} {:>12}", "tick", "queued", "running", "paused", "kv reserved");
    let mut shown = 0;
    while !server.is_done() && shown < SHOWN_TICKS {
        server.tick();
        shown += 1;
        println!(
            "{:<8} {:>7} {:>8} {:>8} {:>12}",
            server.now(),
            server.in_flight() - server.engine().active_sessions() - server.engine().paused_sessions(),
            server.engine().active_sessions(),
            server.engine().paused_sessions(),
            server.reserved_bytes(),
        );
    }
    if !server.is_done() {
        println!("…");
    }
    let report = server.run();

    println!("\n{}", report);
    println!("{}", report.engine);

    // Prefill-vs-decode token share of the on-clock work.
    let prefill = report.engine.prefill_tokens;
    let decode = report.engine.total_tokens;
    let total = prefill + decode;
    if prefill > 0 {
        println!(
            "prefill/decode token share : {:.1}% prefill ({} prompt tokens on the clock) / {:.1}% decode ({} generated)",
            100.0 * prefill as f64 / total.max(1) as f64,
            prefill,
            100.0 * decode as f64 / total.max(1) as f64,
            decode,
        );
    } else {
        println!(
            "prefill/decode token share : instant prefill (prompts consumed off-clock at admission) / {decode} generated"
        );
    }
    println!("(ticks are batched mixed prefill/decode steps of the virtual clock;");
    println!(" per-request tok/s in the engine report are single-sequence equivalents)");
    write_observability(&args, recorder, report.metrics().to_json())?;
    Ok(())
}

//! Serving simulation: the workload the ROADMAP's north star describes —
//! many concurrent users, one engine. A dozen requests with mixed
//! eviction policies, cache budgets, prompt lengths and generation limits
//! are decoded through one [`veda::Engine`] in batched ticks: every tick
//! advances all active sessions by one token, streams the shared weights
//! from HBM once, and reports batched throughput/energy next to the exact
//! per-request reports the legacy one-shot API would produce.
//!
//! ```sh
//! cargo run --release --example serving_sim
//! cargo run --release --example serving_sim -- --requests 16 --policy voting --variant veda
//! ```

use veda::{Budget, EngineBuilder, Request};
use veda_accel::DataflowVariant;
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

fn parse_args() -> Result<(usize, Option<PolicyKind>, DataflowVariant), Box<dyn std::error::Error>> {
    let mut requests = 12usize;
    let mut policy = None;
    let mut variant = DataflowVariant::FlexibleElementSerial;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().ok_or(format!("missing value after {arg}"));
        match arg.as_str() {
            "--requests" => requests = value()?.parse()?,
            "--policy" => policy = Some(value()?.parse()?),
            "--variant" => variant = value()?.parse()?,
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }
    Ok((requests, policy, variant))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n_requests, forced_policy, variant) = parse_args()?;

    let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).variant(variant).build()?;

    // A mixed population: policies and budgets rotate per request unless a
    // policy was forced on the command line, prompts differ in content and
    // length, and generation limits vary — continuous batching handles the
    // stragglers.
    let policies = [PolicyKind::Voting, PolicyKind::H2o, PolicyKind::SlidingWindow, PolicyKind::Full];
    let budgets = [Budget::Ratio(0.5), Budget::Fixed(12), Budget::Ratio(0.25), Budget::Unbounded];
    for i in 0..n_requests {
        let prompt: Vec<usize> = (0..16 + 4 * (i % 5)).map(|j| (j * 7 + i * 13) % 60 + 1).collect();
        let policy = forced_policy.unwrap_or(policies[i % policies.len()]);
        let budget = budgets[i % budgets.len()];
        let request = Request::new(prompt, 8 + 2 * (i % 4)).policy(policy).budget(budget);
        engine.submit(request)?;
    }
    println!(
        "== serving_sim: {n_requests} concurrent requests, {} dataflow, model D={} ==\n",
        variant,
        engine.model_config().d_model
    );

    // Stream: one line per batched tick.
    println!("{:<6} {:>6} {:>14} {:>12}  tokens", "tick", "batch", "tick cycles", "finished");
    let mut tick_no = 0;
    while engine.active_sessions() > 0 {
        let tick = engine.step();
        tick_no += 1;
        let finished = tick.events.iter().filter(|e| e.finished).count();
        let tokens: Vec<String> =
            tick.events.iter().take(8).map(|e| format!("{}:{}", e.session, e.token)).collect();
        println!(
            "{:<6} {:>6} {:>14} {:>12}  {}{}",
            tick_no,
            tick.batch_size,
            tick.batch_cycles,
            finished,
            tokens.join(" "),
            if tick.events.len() > 8 { " …" } else { "" },
        );
    }

    println!("\n{}", engine.run_to_completion());
    println!("(per-request tok/s are single-sequence equivalents; the batched");
    println!(" tokens/s above them is what the engine actually sustained)");
    Ok(())
}

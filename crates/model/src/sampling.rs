//! Token sampling strategies for the generation phase.
//!
//! The accelerator is agnostic to how the next token is chosen from the
//! logits; the simulator supports the standard decoding strategies so the
//! examples can exercise realistic generation loops.

use rand::rngs::StdRng;
use veda_tensor::softmax::softmax_with_temperature;

/// A next-token selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Sampler {
    /// Always the argmax token.
    #[default]
    Greedy,
    /// Softmax sampling at a temperature (> 0).
    Temperature(f32),
    /// Top-k truncated sampling at a temperature.
    TopK {
        /// How many highest-logit tokens survive truncation.
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f32,
    },
}

impl Sampler {
    /// Picks the next token from `logits`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty, a temperature is non-positive, or
    /// `k == 0`.
    pub fn sample(&self, logits: &[f32], rng: &mut StdRng) -> usize {
        assert!(!logits.is_empty(), "empty logits");
        match *self {
            Sampler::Greedy => veda_tensor::stats::argmax(logits).expect("non-empty"),
            Sampler::Temperature(t) => {
                let probs = softmax_with_temperature(logits, t);
                veda_tensor::rng::sample_categorical(rng, &probs)
            }
            Sampler::TopK { k, temperature } => {
                assert!(k > 0, "top-k requires k > 0");
                let mut idx: Vec<usize> = (0..logits.len()).collect();
                idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("no NaN logits"));
                let kept = &idx[..k.min(idx.len())];
                let kept_logits: Vec<f32> = kept.iter().map(|&i| logits[i]).collect();
                let probs = softmax_with_temperature(&kept_logits, temperature);
                kept[veda_tensor::rng::sample_categorical(rng, &probs)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_tensor::rng::seeded;

    #[test]
    fn greedy_picks_argmax() {
        let mut rng = seeded(1);
        assert_eq!(Sampler::Greedy.sample(&[0.1, 2.0, -1.0], &mut rng), 1);
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let mut rng = seeded(2);
        let s = Sampler::Temperature(0.01);
        for _ in 0..50 {
            assert_eq!(s.sample(&[0.0, 3.0, 1.0], &mut rng), 1);
        }
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let mut rng = seeded(3);
        let s = Sampler::Temperature(50.0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&[0.0, 1.0, 0.5, 0.2], &mut rng));
        }
        assert!(seen.len() >= 3, "only {} distinct tokens", seen.len());
    }

    #[test]
    fn top_k_never_leaves_the_top_set() {
        let mut rng = seeded(4);
        let logits = [5.0, 4.0, -10.0, -10.0, -10.0];
        let s = Sampler::TopK { k: 2, temperature: 1.0 };
        for _ in 0..100 {
            let t = s.sample(&logits, &mut rng);
            assert!(t == 0 || t == 1, "sampled outside top-2: {t}");
        }
    }

    #[test]
    fn top_k_larger_than_vocab_is_fine() {
        let mut rng = seeded(5);
        let s = Sampler::TopK { k: 100, temperature: 1.0 };
        let t = s.sample(&[1.0, 0.0], &mut rng);
        assert!(t < 2);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = Sampler::Temperature(1.0);
        let logits = [0.5, 0.2, 0.9, -0.3];
        let a: Vec<usize> = {
            let mut rng = seeded(9);
            (0..10).map(|_| s.sample(&logits, &mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded(9);
            (0..10).map(|_| s.sample(&logits, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn zero_k_panics() {
        let mut rng = seeded(6);
        Sampler::TopK { k: 0, temperature: 1.0 }.sample(&[1.0], &mut rng);
    }
}

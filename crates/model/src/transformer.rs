//! The decoder-only transformer: prefill + autoregressive decode with
//! per-layer KV caches and eviction hooks.

use crate::attention::attend_into;
use crate::config::ModelConfig;
use crate::kvcache::LayerKvCache;
use crate::scratch::{ForwardScratch, ScoreBuffer};
use crate::weights::ModelWeights;
use veda_tensor::norm::rmsnorm_into;
use veda_tensor::ops::{gemv_inner_into, gemv_outer_into};
use veda_tensor::softmax::log_softmax;

/// Result of one full forward step (all layers).
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// Next-token logits, length `vocab_size`.
    pub logits: Vec<f32>,
    /// Per-layer, per-head post-softmax attention scores over the resident
    /// cache slots — the observation stream for eviction policies. Stored
    /// flat; `scores.layer(l)` yields the [`veda_eviction::ScoreView`]
    /// policies observe.
    pub scores: ScoreBuffer,
}

/// Per-sequence decoding state: the per-layer KV caches of one sequence.
///
/// Weights live in [`TransformerModel`] and are shared; each concurrent
/// sequence (a serving-engine session) owns exactly one `SequenceState`,
/// which is cheap to create and to free. [`TransformerModel::forward_in`]
/// advances a sequence against the shared weights.
#[derive(Debug, Clone, Default)]
pub struct SequenceState {
    caches: Vec<LayerKvCache>,
}

impl SequenceState {
    /// Creates empty per-layer caches for `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        Self { caches: (0..n_layers).map(|_| LayerKvCache::new()).collect() }
    }

    /// Number of layers this state tracks.
    pub fn n_layers(&self) -> usize {
        self.caches.len()
    }

    /// The per-layer KV caches (read-only).
    pub fn caches(&self) -> &[LayerKvCache] {
        &self.caches
    }

    /// Current cache length (identical across layers by construction).
    pub fn cache_len(&self) -> usize {
        self.caches.first().map_or(0, LayerKvCache::len)
    }

    /// Evicts cache slot `slot` in layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn evict(&mut self, layer: usize, slot: usize) {
        self.caches[layer].evict(slot);
    }

    /// Evicts several cache slots of one layer in a single compaction
    /// pass (see [`LayerKvCache::evict_many`]). `sorted_slots` must be
    /// strictly ascending.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds or unsorted.
    pub fn evict_many(&mut self, layer: usize, sorted_slots: &[usize]) {
        self.caches[layer].evict_many(sorted_slots);
    }

    /// Evicts the same slot in every layer (layer-synchronous eviction).
    pub fn evict_all_layers(&mut self, slot: usize) {
        for cache in &mut self.caches {
            cache.evict(slot);
        }
    }

    /// Reserves KV storage in every layer for `tokens` total resident
    /// rows of `width` features, so prefill and steady-state decode never
    /// reallocate mid-growth.
    pub fn reserve(&mut self, tokens: usize, width: usize) {
        for cache in &mut self.caches {
            cache.reserve(tokens, width);
        }
    }

    /// Seeds every layer of an empty state with the first `rows` resident
    /// rows of `source`, marked as a shared prefix span (see
    /// [`LayerKvCache::seed_from`]): the engine's prefix cache uses this
    /// to start a session from a cached shared-prefix KV without
    /// re-running prefill. The shared rows are excluded from
    /// [`SequenceState::fp16_bytes`] (they are resident once, in the cache
    /// entry) until an eviction inside the span privatizes them.
    ///
    /// # Panics
    ///
    /// Panics if the states' layer counts disagree, any layer is
    /// non-empty, or `rows` exceeds the source's cache length.
    pub fn seed_from(&mut self, source: &SequenceState, rows: usize) {
        assert_eq!(self.n_layers(), source.n_layers(), "seed_from layer count mismatch");
        for (cache, src) in self.caches.iter_mut().zip(&source.caches) {
            cache.seed_from(src, rows);
        }
    }

    /// Leading rows (identical across layers until a per-layer eviction
    /// privatizes a span) referenced from a shared prefix-cache entry in
    /// layer 0 — diagnostic for accounting tests.
    pub fn shared_len(&self) -> usize {
        self.caches.first().map_or(0, LayerKvCache::shared_len)
    }

    /// Converts all shared spans into privately owned rows (see
    /// [`LayerKvCache::clear_shared_marker`]).
    pub fn clear_shared_marker(&mut self) {
        for cache in &mut self.caches {
            cache.clear_shared_marker();
        }
    }

    /// FP16 bytes the sequence *privately owns* off-chip — excludes
    /// shared prefix spans, which are resident once in their prefix-cache
    /// entry and only referenced here.
    pub fn fp16_bytes(&self) -> usize {
        self.caches.iter().map(LayerKvCache::fp16_bytes).sum()
    }

    /// FP16 bytes of the shared prefix spans this sequence references
    /// across all layers (0 when nothing is shared).
    pub fn shared_fp16_bytes(&self) -> usize {
        self.caches.iter().map(LayerKvCache::shared_fp16_bytes).sum()
    }

    /// Total FP16 bytes of all resident rows, owned and shared — the
    /// attention-streaming footprint.
    pub fn total_fp16_bytes(&self) -> usize {
        self.caches.iter().map(LayerKvCache::total_fp16_bytes).sum()
    }

    /// Clears all caches (start over / free the sequence's KV memory).
    pub fn clear(&mut self) {
        for cache in &mut self.caches {
            cache.clear();
        }
    }
}

/// A runnable decoder-only transformer with synthetic structured weights.
///
/// The struct owns the *shared* substrate (config + weights) plus one
/// built-in [`SequenceState`] so the classic single-sequence API
/// ([`TransformerModel::forward_token`], [`TransformerModel::prefill`], …)
/// keeps working. Serving engines that decode many sequences against one
/// set of weights allocate extra states via [`TransformerModel::new_state`]
/// and drive them through [`TransformerModel::forward_in`].
///
/// ```
/// use veda_model::{ModelConfig, TransformerModel};
/// let mut m = TransformerModel::new(ModelConfig::tiny());
/// let out = m.forward_token(1, 0);
/// assert_eq!(out.logits.len(), m.config().vocab_size);
///
/// // Two independent sequences against the same weights:
/// let (mut a, mut b) = (m.new_state(), m.new_state());
/// m.forward_in(&mut a, 1, 0);
/// m.forward_in(&mut b, 2, 0);
/// assert_eq!(a.cache_len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TransformerModel {
    config: ModelConfig,
    weights: ModelWeights,
    state: SequenceState,
    eps: f32,
}

impl TransformerModel {
    /// Builds a model with synthetic structured weights for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ModelConfig) -> Self {
        config.validate().expect("valid model config");
        let weights = ModelWeights::synthetic(&config);
        let state = SequenceState::new(config.n_layers);
        Self { config, weights, state, eps: veda_tensor::norm::DEFAULT_EPS }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Creates a fresh per-sequence state sized for this model.
    pub fn new_state(&self) -> SequenceState {
        SequenceState::new(self.config.n_layers)
    }

    /// The built-in sequence's per-layer KV caches (read-only).
    pub fn caches(&self) -> &[LayerKvCache] {
        self.state.caches()
    }

    /// Current cache length of the built-in sequence.
    pub fn cache_len(&self) -> usize {
        self.state.cache_len()
    }

    /// Evicts cache slot `slot` in layer `layer` of the built-in sequence.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn evict(&mut self, layer: usize, slot: usize) {
        self.state.evict(layer, slot);
    }

    /// Evicts the same slot in every layer (layer-synchronous eviction).
    pub fn evict_all_layers(&mut self, slot: usize) {
        self.state.evict_all_layers(slot);
    }

    /// Clears the built-in sequence's caches (new sequence).
    pub fn reset(&mut self) {
        self.state.clear();
    }

    /// Runs one token of the built-in sequence through all layers,
    /// returning logits and the attention observations.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn forward_token(&mut self, token: usize, position: usize) -> StepOutput {
        // Validate before the take below: a panic must not leave the
        // built-in state swapped out (a recovered caller would silently
        // continue on an empty cache).
        assert!(token < self.config.vocab_size, "token {token} outside vocabulary");
        let mut state = std::mem::take(&mut self.state);
        let out = self.forward_in(&mut state, token, position);
        self.state = state;
        out
    }

    /// Creates a [`ForwardScratch`] pre-sized for this model's geometry
    /// (`seq_hint` pre-sizes the score buffer for an expected resident
    /// cache length).
    pub fn new_scratch(&self, seq_hint: usize) -> ForwardScratch {
        ForwardScratch::for_config(&self.config, seq_hint)
    }

    /// Runs one token of an arbitrary sequence through all layers against
    /// the shared weights (allocating convenience wrapper over
    /// [`TransformerModel::forward_with_scratch`]). The model itself is
    /// untouched (`&self`), so any number of sequences can interleave
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary or the state's layer
    /// count disagrees with the model.
    pub fn forward_in(&self, state: &mut SequenceState, token: usize, position: usize) -> StepOutput {
        let mut scratch = ForwardScratch::new();
        self.forward_with_scratch(state, token, position, &mut scratch);
        StepOutput {
            logits: std::mem::take(&mut scratch.logits),
            scores: std::mem::take(&mut scratch.scores),
        }
    }

    /// Runs one token of an arbitrary sequence through all layers against
    /// the shared weights, reusing `scratch` for every intermediate buffer
    /// — the zero-allocation decode hot path. After the call
    /// [`ForwardScratch::logits`] holds the next-token logits and
    /// [`ForwardScratch::scores`] the step's attention observations.
    ///
    /// Bit-identical to [`TransformerModel::forward_in`]: every in-place
    /// kernel preserves the f32 summation order of its allocating twin.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary or the state's layer
    /// count disagrees with the model.
    pub fn forward_with_scratch(
        &self,
        state: &mut SequenceState,
        token: usize,
        position: usize,
        scratch: &mut ForwardScratch,
    ) {
        assert!(token < self.config.vocab_size, "token {token} outside vocabulary");
        if state.caches.is_empty() {
            // Allow `SequenceState::default()` to be used directly.
            *state = self.new_state();
        }
        assert_eq!(state.n_layers(), self.config.n_layers, "sequence state layer count mismatch");
        scratch.hidden.clear();
        scratch.hidden.extend_from_slice(self.weights.embed(token));
        scratch.scores.begin_step(self.config.n_heads);

        for (li, cache) in state.caches.iter_mut().enumerate() {
            let w = &self.weights.layers[li];
            // Attention block with pre-norm residual.
            rmsnorm_into(&scratch.hidden, &w.attn_norm, self.eps, &mut scratch.normed);
            attend_into(position, cache, w, &self.config, scratch);
            for (xi, oi) in scratch.hidden.iter_mut().zip(&scratch.attn_out) {
                *xi += oi;
            }

            // FFN block with pre-norm residual (Step 4 of Fig. 1).
            rmsnorm_into(&scratch.hidden, &w.ffn_norm, self.eps, &mut scratch.normed);
            gemv_outer_into(&scratch.normed, &w.w1, &mut scratch.gate);
            self.config.activation.apply_slice(&mut scratch.gate);
            gemv_outer_into(&scratch.normed, &w.w3, &mut scratch.up);
            // Hadamard gate ∘ up, in place in the gate buffer.
            for (g, &u) in scratch.gate.iter_mut().zip(&scratch.up) {
                *g *= u;
            }
            gemv_outer_into(&scratch.gate, &w.w2, &mut scratch.down);
            for (xi, di) in scratch.hidden.iter_mut().zip(&scratch.down) {
                *xi += di;
            }
        }

        rmsnorm_into(&scratch.hidden, &self.weights.final_norm, self.eps, &mut scratch.normed);
        // Tied LM head: logits = E · x.
        gemv_inner_into(&scratch.normed, &self.weights.embedding, &mut scratch.logits);
    }

    /// Prefills a prompt (GEMM realized as successive GEMVs, as VEDA does),
    /// returning the output of the final prompt token.
    pub fn prefill(&mut self, prompt: &[usize]) -> Option<StepOutput> {
        let mut last = None;
        for (pos, &t) in prompt.iter().enumerate() {
            last = Some(self.forward_token(t, pos));
        }
        last
    }

    /// Greedy generation of `n` tokens after `prompt`. Returns the
    /// generated token ids.
    pub fn generate_greedy(&mut self, prompt: &[usize], n: usize) -> Vec<usize> {
        let mut rng = veda_tensor::rng::seeded(0);
        self.generate_with(prompt, n, crate::sampling::Sampler::Greedy, &mut rng)
    }

    /// Generation with an arbitrary [`crate::sampling::Sampler`].
    pub fn generate_with(
        &mut self,
        prompt: &[usize],
        n: usize,
        sampler: crate::sampling::Sampler,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        let Some(mut step) = self.prefill(prompt) else {
            return out;
        };
        for position in prompt.len()..prompt.len() + n {
            let next = sampler.sample(&step.logits, rng);
            out.push(next);
            step = self.forward_token(next, position);
        }
        out
    }

    /// Negative log-likelihood of `target` under the logits of the last
    /// step (convenience for evaluation).
    pub fn nll(logits: &[f32], target: usize) -> f32 {
        -log_softmax(logits)[target]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_produces_finite_logits() {
        let mut m = TransformerModel::new(ModelConfig::tiny());
        let out = m.forward_token(5, 0);
        assert_eq!(out.logits.len(), 64);
        assert!(out.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_scores_cover_all_layers_and_heads() {
        let cfg = ModelConfig::tiny();
        let mut m = TransformerModel::new(cfg.clone());
        m.forward_token(1, 0);
        let out = m.forward_token(2, 1);
        assert_eq!(out.scores.n_layers(), cfg.n_layers);
        assert_eq!(out.scores.layer(0).n_heads(), cfg.n_heads);
        assert_eq!(out.scores.layer(0).len(), 2);
    }

    #[test]
    fn caches_grow_in_lockstep() {
        let mut m = TransformerModel::new(ModelConfig::tiny());
        for pos in 0..4 {
            m.forward_token(pos + 1, pos);
        }
        assert_eq!(m.cache_len(), 4);
        assert!(m.caches().iter().all(|c| c.len() == 4));
    }

    #[test]
    fn evict_all_layers_shrinks_every_cache() {
        let mut m = TransformerModel::new(ModelConfig::tiny());
        for pos in 0..4 {
            m.forward_token(1, pos);
        }
        m.evict_all_layers(1);
        assert!(m.caches().iter().all(|c| c.len() == 3));
        assert!(m.caches().iter().all(|c| c.positions() == [0, 2, 3]));
    }

    #[test]
    fn generation_is_deterministic() {
        let prompt = [1usize, 5, 9, 2];
        let mut a = TransformerModel::new(ModelConfig::tiny());
        let mut b = TransformerModel::new(ModelConfig::tiny());
        assert_eq!(a.generate_greedy(&prompt, 8), b.generate_greedy(&prompt, 8));
    }

    #[test]
    fn reset_allows_fresh_sequence() {
        let mut m = TransformerModel::new(ModelConfig::tiny());
        m.forward_token(1, 0);
        m.reset();
        assert_eq!(m.cache_len(), 0);
        let out = m.forward_token(1, 0);
        assert_eq!(out.scores.layer(0).len(), 1);
    }

    #[test]
    fn nll_is_lower_for_higher_logit() {
        let logits = [0.0f32, 2.0, -1.0];
        assert!(TransformerModel::nll(&logits, 1) < TransformerModel::nll(&logits, 2));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocab_token_panics() {
        let mut m = TransformerModel::new(ModelConfig::tiny());
        m.forward_token(10_000, 0);
    }

    #[test]
    fn recovered_out_of_vocab_panic_leaves_cache_intact() {
        let mut m = TransformerModel::new(ModelConfig::tiny());
        m.forward_token(1, 0);
        m.forward_token(2, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.forward_token(10_000, 2);
        }));
        assert!(result.is_err());
        assert_eq!(m.cache_len(), 2, "panic must not wipe the built-in sequence state");
    }

    #[test]
    fn independent_states_share_weights_without_interference() {
        // Interleaving two sequences against one model must produce exactly
        // the streams each would produce alone — KV state is per-sequence,
        // weights are shared.
        let tokens_a = [1usize, 5, 9, 2];
        let tokens_b = [3usize, 7, 7, 7];

        let mut solo = TransformerModel::new(ModelConfig::tiny());
        let solo_a: Vec<Vec<f32>> =
            tokens_a.iter().enumerate().map(|(p, &t)| solo.forward_token(t, p).logits).collect();
        solo.reset();
        let solo_b: Vec<Vec<f32>> =
            tokens_b.iter().enumerate().map(|(p, &t)| solo.forward_token(t, p).logits).collect();

        let shared = TransformerModel::new(ModelConfig::tiny());
        let mut state_a = shared.new_state();
        let mut state_b = shared.new_state();
        for (p, (&ta, &tb)) in tokens_a.iter().zip(&tokens_b).enumerate() {
            let la = shared.forward_in(&mut state_a, ta, p).logits;
            let lb = shared.forward_in(&mut state_b, tb, p).logits;
            assert_eq!(la, solo_a[p], "sequence A diverged at {p}");
            assert_eq!(lb, solo_b[p], "sequence B diverged at {p}");
        }
        assert_eq!(state_a.cache_len(), 4);
        assert_eq!(state_b.cache_len(), 4);
    }

    #[test]
    fn sequence_state_clear_frees_kv() {
        let m = TransformerModel::new(ModelConfig::tiny());
        let mut st = m.new_state();
        m.forward_in(&mut st, 1, 0);
        assert!(st.fp16_bytes() > 0);
        st.clear();
        assert_eq!(st.cache_len(), 0);
        assert_eq!(st.fp16_bytes(), 0);
        // Cleared state is reusable.
        m.forward_in(&mut st, 2, 0);
        assert_eq!(st.cache_len(), 1);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_allocating_path() {
        let m = TransformerModel::new(ModelConfig::tiny());
        let mut state_alloc = m.new_state();
        let mut state_scratch = m.new_state();
        let mut scratch = m.new_scratch(8);
        for (pos, token) in [1usize, 5, 9, 2, 40, 7].into_iter().enumerate() {
            let out = m.forward_in(&mut state_alloc, token, pos);
            m.forward_with_scratch(&mut state_scratch, token, pos, &mut scratch);
            assert_eq!(scratch.logits(), out.logits.as_slice(), "logits diverged at {pos}");
            assert_eq!(scratch.scores(), &out.scores, "scores diverged at {pos}");
        }
        assert_eq!(state_alloc.cache_len(), state_scratch.cache_len());
        for (a, b) in state_alloc.caches().iter().zip(state_scratch.caches()) {
            assert_eq!(a.keys(), b.keys());
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn seeded_state_is_bit_identical_to_prefilled_state() {
        // Seeding a state from another state's prefix rows must yield
        // exactly the forward results a full prefill would: the shared
        // span is a byte-accounting overlay, never a numeric one.
        let m = TransformerModel::new(ModelConfig::tiny());
        let prompt = [1usize, 5, 9, 2, 40, 7];
        let shared = 4;

        let mut reference = m.new_state();
        let mut ref_logits = Vec::new();
        for (pos, &t) in prompt.iter().enumerate() {
            ref_logits = m.forward_in(&mut reference, t, pos).logits;
        }

        let mut donor = m.new_state();
        for (pos, &t) in prompt[..shared].iter().enumerate() {
            m.forward_in(&mut donor, t, pos);
        }
        let mut seeded = m.new_state();
        seeded.seed_from(&donor, shared);
        assert_eq!(seeded.cache_len(), shared);
        assert_eq!(seeded.shared_len(), shared);
        assert_eq!(seeded.fp16_bytes(), 0, "shared rows are not privately owned");
        assert_eq!(seeded.shared_fp16_bytes(), donor.fp16_bytes());

        let mut logits = Vec::new();
        for (pos, &t) in prompt.iter().enumerate().skip(shared) {
            logits = m.forward_in(&mut seeded, t, pos).logits;
        }
        assert_eq!(logits, ref_logits, "seeded forward diverged from full prefill");
        assert_eq!(seeded.cache_len(), reference.cache_len());
        for (a, b) in seeded.caches().iter().zip(reference.caches()) {
            assert_eq!(a.keys(), b.keys());
            assert_eq!(a.values(), b.values());
            assert_eq!(a.positions(), b.positions());
        }
        assert_eq!(seeded.total_fp16_bytes(), reference.total_fp16_bytes());
    }

    #[test]
    fn default_state_is_lazily_sized() {
        let m = TransformerModel::new(ModelConfig::tiny());
        let mut st = SequenceState::default();
        m.forward_in(&mut st, 1, 0);
        assert_eq!(st.n_layers(), m.config().n_layers);
    }
}

//! Rotary position embedding (RoPE), as used by the Llama family.
//!
//! RoPE rotates each even/odd pair of query/key channels by a
//! position-dependent angle; dot products between rotated vectors then
//! depend on the *relative* position, which gives random-weight attention a
//! natural recency structure — one of the ingredients the synthetic model
//! uses to reproduce realistic attention-score distributions.

/// Applies RoPE in place to a head vector `x` of even length at `position`.
///
/// # Panics
///
/// Panics if `x.len()` is odd.
pub fn apply_rope(x: &mut [f32], position: usize, theta: f32) {
    assert!(x.len().is_multiple_of(2), "RoPE requires an even head dimension, got {}", x.len());
    let half = x.len() / 2;
    for i in 0..half {
        let freq = theta.powf(-2.0 * i as f32 / x.len() as f32);
        let angle = position as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Returns a rotated copy (convenience for tests and tracing).
pub fn roped(x: &[f32], position: usize, theta: f32) -> Vec<f32> {
    let mut out = x.to_vec();
    apply_rope(&mut out, position, theta);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_tensor::ops::{dot, norm2};

    #[test]
    fn position_zero_is_identity() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(roped(&x, 0, 10000.0), x.to_vec());
    }

    #[test]
    fn rotation_preserves_norm() {
        let x = [0.3, -1.2, 2.0, 0.7, -0.1, 0.9];
        for pos in [1, 17, 255, 4095] {
            let r = roped(&x, pos, 10000.0);
            assert!((norm2(&r) - norm2(&x)).abs() < 1e-4, "norm changed at pos {pos}");
        }
    }

    #[test]
    fn dot_product_depends_on_relative_position() {
        // <RoPE(q, m), RoPE(k, n)> is a function of (m - n): shifting both
        // positions by the same offset leaves the dot product unchanged.
        let q = [0.5, -0.2, 0.8, 0.1];
        let k = [-0.3, 0.9, 0.2, 0.4];
        let d1 = dot(&roped(&q, 10, 10000.0), &roped(&k, 7, 10000.0));
        let d2 = dot(&roped(&q, 110, 10000.0), &roped(&k, 107, 10000.0));
        assert!((d1 - d2).abs() < 1e-3, "{d1} vs {d2}");
    }

    #[test]
    fn self_similarity_decays_with_distance_on_average() {
        // For a generic vector, <RoPE(x, 0), RoPE(x, p)> trends downward as
        // p grows (not monotonically — it oscillates — so compare averages).
        let mut rng = veda_tensor::rng::seeded(2);
        let mut near = 0.0;
        let mut far = 0.0;
        for _ in 0..50 {
            let x = veda_tensor::rng::normal_vec(&mut rng, 16, 1.0);
            let base = roped(&x, 0, 10000.0);
            near += dot(&base, &roped(&x, 1, 10000.0));
            far += dot(&base, &roped(&x, 200, 10000.0));
        }
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    #[should_panic(expected = "even head dimension")]
    fn odd_dimension_panics() {
        let mut x = [1.0, 2.0, 3.0];
        apply_rope(&mut x, 1, 10000.0);
    }
}

//! # veda-model
//!
//! Llama-style transformer substrate for the VEDA reproduction.
//!
//! The paper evaluates on Llama-2 7B; this crate provides the equivalent
//! *functional* substrate built from scratch:
//!
//! * [`ModelConfig`] — model geometry, including a [`ModelConfig::llama2_7b`]
//!   preset used by the cycle model (no tensors are allocated for it) and
//!   small presets that run end-to-end on a CPU in seconds.
//! * [`TransformerModel`] — embedding, RoPE, multi-head attention with a
//!   pluggable KV cache, SwiGLU-free FFN, RMSNorm, tied LM head; prefill +
//!   autoregressive decode. Weights are synthetic but *structured*
//!   (attention sink, content-based matching, recency) so attention-score
//!   distributions exhibit the sparsity the eviction literature documents.
//! * [`InductionLm`] — an interpretable attention-based retrieval language
//!   model used for the perplexity experiment (Fig. 8 left): its
//!   next-token distribution genuinely depends on which KV entries survive
//!   eviction, so cache policies differentiate by mechanism, not by fiat.
//! * [`corpus`] — a structured synthetic token source (Zipf unigrams,
//!   Markov bigrams, long-range segment copies) standing in for PG-19.
//! * [`trace`] — attention-trace recording and a synthetic trace generator
//!   with controllable sink/heavy-hitter/outlier/recency structure.
//!
//! The substitution argument: the paper's claims are about *mechanisms*
//! (score distributions, eviction dynamics, dataflow timing), not about
//! Llama-2's learned knowledge, so a synthetic substrate that reproduces
//! the mechanism-relevant structure — sinks, heavy hitters, recency —
//! supports the same comparisons while staying offline and fast. See
//! `docs/ARCHITECTURE.md` at the workspace root for where this crate
//! sits in the request lifecycle.

// Crate hygiene, enforced by veda-lint (rule crate-hygiene): no unsafe
// code under the determinism pins, no undocumented public surface.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod attention;
pub mod config;
pub mod corpus;
pub mod eval;
pub mod induction;
pub mod kvcache;
pub mod rope;
pub mod sampling;
pub mod scratch;
pub mod trace;
pub mod transformer;
pub mod weights;

pub use config::ModelConfig;
pub use corpus::{Corpus, CorpusConfig};
pub use eval::{evaluate_policy_perplexity, PerplexityReport};
pub use induction::{InductionConfig, InductionLm};
pub use kvcache::LayerKvCache;
pub use sampling::Sampler;
pub use scratch::{ForwardScratch, ScoreBuffer};
pub use trace::{AttentionTrace, SyntheticTraceConfig};
pub use transformer::{SequenceState, StepOutput, TransformerModel};

//! Structured synthetic token source (PG-19 substitute).
//!
//! PG-19 is book-length text: locally predictable, with long-range reuse
//! *and strong topical drift* — vocabulary that dominates one stretch goes
//! quiet in the next. KV-eviction policies differentiate on exactly these
//! axes, so the generator mixes four processes, all deterministic given the
//! seed:
//!
//! * **topics** — the stream is segmented into topics of `topic_len`
//!   tokens; each topic draws from its own contiguous vocabulary slice and
//!   has its own bigram successor table. Tokens frequent in one topic go
//!   permanently quiet when the topic changes — the non-stationarity that
//!   punishes policies which hoard stale high-scoring entries;
//! * **Zipf unigrams** (within the active slice) — some tokens are heavy
//!   hitters while their topic is live;
//! * **bigram chains** (per topic) — local predictability, so recent
//!   context matters;
//! * **segment copies** (within the current topic) — long-range reuse, so
//!   discarding mid-range context costs accuracy.

use rand::Rng;
use veda_tensor::rng::{sample_categorical, seeded};

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Vocabulary size (token 0 is reserved as BOS).
    pub vocab_size: usize,
    /// Zipf exponent of the per-topic unigram distribution.
    pub zipf_exponent: f64,
    /// Probability that the next token follows the topic's bigram chain.
    pub bigram_prob: f64,
    /// Probability of *starting* an in-topic copy at any step.
    pub copy_start_prob: f64,
    /// Copy segment length range (inclusive).
    pub copy_len: (usize, usize),
    /// Tokens per topic before the vocabulary slice rotates.
    pub topic_len: usize,
    /// Number of vocabulary slices the topics cycle through.
    pub n_topics: usize,
    /// Probability that a unigram draw comes from the *global* slice —
    /// function-word-like tokens shared by all topics, whose bigram
    /// successors are topic-independent (they never go stale).
    pub global_frac: f64,
    /// Entities per topic: rare "named" tokens introduced with their
    /// attribute at the topic opening and queried throughout the topic.
    /// A query emits the entity token and the true continuation is its
    /// attribute — recoverable only from a resident anchor of an earlier
    /// occurrence (the long-range retrieval that recency windows lose).
    pub entities_per_topic: usize,
    /// Per-step probability of an entity query (outside intros/copies).
    pub query_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            vocab_size: 4096,
            zipf_exponent: 1.05,
            bigram_prob: 0.45,
            copy_start_prob: 0.06,
            copy_len: (12, 64),
            topic_len: 512,
            n_topics: 8,
            global_frac: 0.4,
            entities_per_topic: 16,
            query_prob: 0.06,
            seed: 19,
        }
    }
}

/// A deterministic structured token source.
///
/// ```
/// use veda_model::{Corpus, CorpusConfig};
/// let corpus = Corpus::new(CorpusConfig::default());
/// let a = corpus.sample(0, 128);
/// let b = corpus.sample(0, 128);
/// assert_eq!(a, b); // same sample index => same stream
/// assert!(a.iter().all(|&t| t < 4096));
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    config: CorpusConfig,
    /// Stationary unigram weight of each token: its Zipf mass within its
    /// own slice, divided by the topic count (used for salience and the
    /// unigram prior).
    unigram: Vec<f32>,
}

impl Corpus {
    /// Builds the corpus distributions for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary is too small for the topic count, the copy
    /// range is inverted, or `topic_len`/`n_topics` is zero.
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.n_topics > 0 && config.topic_len > 0, "topics must be non-degenerate");
        assert!(config.vocab_size >= 4 * config.n_topics, "vocabulary too small for topic count");
        assert!(config.copy_len.0 <= config.copy_len.1, "inverted copy length range");
        let mut unigram = vec![1e-9f32; config.vocab_size];
        for (t, u) in unigram.iter_mut().enumerate().skip(1) {
            let rank = Self::slice_rank(&config, t);
            *u = (1.0 / (rank as f64).powf(config.zipf_exponent) / config.n_topics as f64) as f32;
        }
        Self { config, unigram }
    }

    fn slice_len(config: &CorpusConfig) -> usize {
        // One extra slice for the global (topic-independent) vocabulary.
        (config.vocab_size - 1) / (config.n_topics + 1)
    }

    /// 1-based Zipf rank of a token within its slice (global or topical).
    fn slice_rank(config: &CorpusConfig, token: usize) -> usize {
        ((token - 1) % Self::slice_len(config)) + 1
    }

    /// Number of global (topic-independent) tokens; globals are tokens
    /// `1..=global_len`.
    pub fn global_len(&self) -> usize {
        Self::slice_len(&self.config)
    }

    /// Whether a token belongs to the global slice.
    pub fn is_global(&self, token: usize) -> bool {
        (1..=self.global_len()).contains(&token)
    }

    /// Whether a token is one of its topic's entity tokens (the rarest
    /// slice ranks are reserved for entities; they never appear in unigram
    /// or bigram draws).
    pub fn is_entity(&self, token: usize) -> bool {
        if token == 0 || self.is_global(token) {
            return false;
        }
        let len = Self::slice_len(&self.config);
        let rank = Self::slice_rank(&self.config, token); // 1-based
        rank > len - self.config.entities_per_topic.min(len)
    }

    /// The `i`-th entity token of a topic.
    ///
    /// # Panics
    ///
    /// Panics if `i >= entities_per_topic`.
    pub fn entity(&self, topic: usize, i: usize) -> usize {
        assert!(i < self.config.entities_per_topic, "entity index out of range");
        let (start, len) = self.topic_slice(topic);
        start + len - 1 - i
    }

    /// The attribute token of an entity in its topic: a deterministic
    /// non-entity, non-global token of the topic slice. Queries of the
    /// entity are always followed by this attribute.
    pub fn attribute(&self, topic: usize, entity_index: usize) -> usize {
        let (start, len) = self.topic_slice(topic);
        let usable = len - self.config.entities_per_topic.min(len);
        start
            + (entity_index.wrapping_mul(0x9E3779B9).wrapping_add(topic.wrapping_mul(0x85EBCA6B))
                % usable.max(1))
    }

    /// The configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// The topic active at a stream position.
    pub fn topic_at(&self, position: usize) -> usize {
        (position / self.config.topic_len) % self.config.n_topics
    }

    /// The vocabulary slice (start, length) of a topic (after the global
    /// slice).
    pub fn topic_slice(&self, topic: usize) -> (usize, usize) {
        let len = Self::slice_len(&self.config);
        (1 + len + (topic % self.config.n_topics) * len, len)
    }

    /// The bigram successor of `token` under the topic active at
    /// `position`. Global tokens have topic-independent successors into
    /// the global slice (stable n-grams); topical tokens continue within
    /// their topic's slice (topical drift).
    pub fn successor_at(&self, token: usize, position: usize) -> usize {
        if self.is_global(token) {
            return 1 + (token.wrapping_mul(2654435761) % self.global_len());
        }
        let topic = self.topic_at(position);
        let (start, len) = self.topic_slice(topic);
        let usable = (len - self.config.entities_per_topic.min(len)).max(1);
        start + (token.wrapping_mul(2654435761).wrapping_add(topic.wrapping_mul(40503)) % usable)
    }

    /// Stationary unigram weight of a token (Zipf mass within its slice,
    /// averaged over topics).
    pub fn unigram_weight(&self, token: usize) -> f32 {
        self.unigram[token]
    }

    /// Generates sample `index` of length `len`, starting with BOS.
    pub fn sample(&self, index: u64, len: usize) -> Vec<usize> {
        let mut rng = seeded(self.config.seed ^ (0x9E37_79B9 + index.wrapping_mul(0x85EB_CA6B)));
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return out;
        }
        // Per-slice Zipf weights are shared across topics; entity ranks
        // (the tail of each slice) are never drawn.
        let usable =
            Self::slice_len(&self.config) - self.config.entities_per_topic.min(Self::slice_len(&self.config));
        let slice_weights: Vec<f32> =
            (0..usable).map(|i| (1.0 / ((i + 1) as f64).powf(self.config.zipf_exponent)) as f32).collect();
        out.push(0); // BOS
        let mut copy: Option<(usize, usize)> = None; // (source cursor, remaining)
        let mut forced: Option<usize> = None; // pending attribute after a query
        while out.len() < len {
            let pos = out.len();
            let prev = *out.last().expect("non-empty");
            let topic = self.topic_at(pos);
            let (start, _) = self.topic_slice(topic);
            let topic_start_pos = pos - (pos % self.config.topic_len);

            // A query's attribute always follows its entity.
            if let Some(attr) = forced.take() {
                out.push(attr);
                continue;
            }
            // Topic intro: introduce each entity with its attribute.
            let in_topic_now = pos - topic_start_pos;
            let n_ent = self.config.entities_per_topic;
            if in_topic_now < 2 * n_ent && pos > 0 {
                let i = in_topic_now / 2;
                if in_topic_now.is_multiple_of(2) {
                    out.push(self.entity(topic, i));
                } else {
                    out.push(self.attribute(topic, i));
                }
                copy = None;
                continue;
            }

            // Continue an active copy first (but never across a topic edge).
            if let Some((cursor, remaining)) = copy {
                if remaining > 0 && cursor < pos && cursor >= topic_start_pos {
                    out.push(out[cursor]);
                    copy = Some((cursor + 1, remaining - 1));
                    continue;
                }
                copy = None;
            }
            let u: f64 = rng.gen();
            let in_topic = pos - topic_start_pos;
            if u < self.config.query_prob && n_ent > 0 {
                // Entity query: the entity token, then (next step) its
                // attribute.
                let i = rng.gen_range(0..n_ent);
                forced = Some(self.attribute(topic, i));
                out.push(self.entity(topic, i));
                continue;
            }
            if u < self.config.query_prob + self.config.copy_start_prob
                && in_topic > self.config.copy_len.0 + 2
            {
                // Start copying an earlier segment of this topic. Sources
                // are skewed toward the topic opening (documents introduce
                // entities early and reference them throughout), so useful
                // anchors concentrate beyond any fixed recency window.
                let lo = topic_start_pos.max(1);
                let hi = pos - 1;
                if hi > lo {
                    let skew: f64 = rng.gen::<f64>();
                    let src = lo + ((skew * skew) * (hi - lo) as f64) as usize;
                    let span = rng.gen_range(self.config.copy_len.0..=self.config.copy_len.1);
                    copy = Some((src + 1, span));
                    out.push(out[src]);
                    continue;
                }
            }
            if u < self.config.copy_start_prob + self.config.bigram_prob {
                out.push(self.successor_at(prev, pos));
            } else if rng.gen::<f64>() < self.config.global_frac {
                out.push(1 + sample_categorical(&mut rng, &slice_weights));
            } else {
                out.push(start + sample_categorical(&mut rng, &slice_weights));
            }
        }
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_per_index() {
        let c = Corpus::new(CorpusConfig::default());
        assert_eq!(c.sample(3, 256), c.sample(3, 256));
        assert_ne!(c.sample(3, 256), c.sample(4, 256));
    }

    #[test]
    fn starts_with_bos_and_stays_in_vocab() {
        let c = Corpus::new(CorpusConfig::default());
        let s = c.sample(0, 512);
        assert_eq!(s[0], 0);
        assert!(s.iter().all(|&t| t < c.config().vocab_size));
    }

    #[test]
    fn tokens_stay_in_topic_or_global_slice() {
        let c = Corpus::new(CorpusConfig::default());
        let s = c.sample(1, 2048);
        for (pos, &t) in s.iter().enumerate().skip(1) {
            let (start, len) = c.topic_slice(c.topic_at(pos));
            assert!(
                c.is_global(t) || (start..start + len).contains(&t),
                "token {t} at pos {pos} outside topic slice [{start}, {}) and not global",
                start + len
            );
        }
    }

    #[test]
    fn global_tokens_have_stable_successors() {
        let c = Corpus::new(CorpusConfig::default());
        let g = 5; // a global token
        assert!(c.is_global(g));
        assert_eq!(c.successor_at(g, 100), c.successor_at(g, 5000));
        assert!(c.is_global(c.successor_at(g, 100)));
    }

    #[test]
    fn topics_rotate_with_position() {
        let c = Corpus::new(CorpusConfig::default());
        assert_eq!(c.topic_at(0), 0);
        assert_eq!(c.topic_at(511), 0);
        assert_eq!(c.topic_at(512), 1);
        assert_eq!(c.topic_at(512 * 8), 0); // cycles
    }

    #[test]
    fn successors_differ_across_topics() {
        let c = Corpus::new(CorpusConfig::default());
        // A *topical* token: globals have stable successors by design.
        let (start, _) = c.topic_slice(0);
        let token = start + 5;
        assert!(!c.is_global(token));
        let a = c.successor_at(token, 100); // topic 0
        let b = c.successor_at(token, 700); // topic 1
        assert_ne!(a, b, "topical drift requires per-topic successors");
        // Global tokens keep stable successors.
        assert_eq!(c.successor_at(3, 100), c.successor_at(3, 700));
    }

    #[test]
    fn unigram_distribution_is_skewed_within_slice() {
        let c = Corpus::new(CorpusConfig::default());
        // Slice-rank 1 vs a deep rank within the same slice.
        assert!(c.unigram_weight(1) > 10.0 * c.unigram_weight(400));
    }

    #[test]
    fn bigram_chain_is_followed_often() {
        let c = Corpus::new(CorpusConfig::default());
        let s = c.sample(2, 4096);
        let follows = s.windows(2).enumerate().filter(|(i, w)| c.successor_at(w[0], i + 1) == w[1]).count();
        let frac = follows as f64 / (s.len() - 1) as f64;
        // Intros, queries and copies dilute the raw bigram share; the chain
        // must still be a visible fraction of transitions.
        assert!(frac > 0.15, "bigram fraction {frac}");
    }

    #[test]
    fn copies_produce_repeated_segments() {
        let c = Corpus::new(CorpusConfig::default());
        let s = c.sample(5, 2048);
        let mut seen = std::collections::BTreeMap::new();
        for w in s.windows(8) {
            *seen.entry(w.to_vec()).or_insert(0usize) += 1;
        }
        let repeats = seen.values().filter(|&&v| v > 1).count();
        assert!(repeats > 10, "repeated 8-grams: {repeats}");
    }

    #[test]
    fn zero_length_sample_is_empty() {
        let c = Corpus::new(CorpusConfig::default());
        assert!(c.sample(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn tiny_vocab_rejected() {
        Corpus::new(CorpusConfig { vocab_size: 16, ..CorpusConfig::default() });
    }
}

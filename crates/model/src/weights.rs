//! Synthetic, *structured* weight generation.
//!
//! No pretrained checkpoints are available offline, so the reproduction
//! generates weights that give a random-initialized transformer the three
//! attention properties the KV-eviction literature documents for trained
//! LLMs (and which the VEDA algorithm exploits):
//!
//! * **attention sink** — every embedding carries a small shared component
//!   `u`, and the BOS token a large one, so `q · k_BOS` is systematically
//!   high (Xiao et al.);
//! * **content-based matching / heavy hitters** — `W_Q` and `W_K` contain a
//!   scaled identity, so tokens that recur in the context produce high
//!   query–key scores at their earlier occurrences;
//! * **recency** — RoPE rotation (applied in the attention module) makes
//!   nearby positions correlate more strongly on average.
//!
//! The result is not a language model that "knows English" — it is a
//! substrate whose attention-score *distributions* are realistic, which is
//! what the eviction-policy comparison consumes.

use crate::config::ModelConfig;
use veda_tensor::rng::{normal_vec, seeded, xavier_std};
use veda_tensor::Matrix;

/// Weights of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `(D, D)`.
    pub wq: Matrix,
    /// Key projection `(D, D)`.
    pub wk: Matrix,
    /// Value projection `(D, D)`.
    pub wv: Matrix,
    /// Output projection `(D, D)`.
    pub wo: Matrix,
    /// FFN gate projection `(D, F)`.
    pub w1: Matrix,
    /// FFN down projection `(F, D)`.
    pub w2: Matrix,
    /// FFN up projection `(D, F)` (gated FFN, as in Llama).
    pub w3: Matrix,
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// RMSNorm gain before the FFN.
    pub ffn_norm: Vec<f32>,
}

/// Full model weights (LM head tied to the embedding).
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding `(V, D)`; also the output head.
    pub embedding: Matrix,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
}

/// Strength of the structural components injected into the synthetic
/// weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureParams {
    /// Identity-component scale in `W_Q`/`W_K` (content matching).
    pub match_gain: f32,
    /// Shared sink-direction component in every embedding.
    pub sink_base: f32,
    /// Extra sink component on token 0 (BOS).
    pub sink_bos: f32,
}

impl Default for StructureParams {
    fn default() -> Self {
        Self { match_gain: 1.0, sink_base: 0.15, sink_bos: 2.0 }
    }
}

fn noise_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_vec(rows, cols, normal_vec(rng, rows * cols, std)).expect("sized buffer")
}

fn identity_plus_noise(rng: &mut rand::rngs::StdRng, n: usize, gain: f32, std: f32) -> Matrix {
    let mut m = noise_matrix(rng, n, n, std);
    for i in 0..n {
        m[(i, i)] += gain;
    }
    m
}

impl ModelWeights {
    /// Generates structured synthetic weights for `config`.
    pub fn synthetic(config: &ModelConfig) -> Self {
        Self::synthetic_with(config, StructureParams::default())
    }

    /// Generates structured synthetic weights with explicit structure
    /// parameters (ablation hook).
    pub fn synthetic_with(config: &ModelConfig, sp: StructureParams) -> Self {
        config.validate().expect("valid model config");
        let mut rng = seeded(config.seed);
        let d = config.d_model;
        let f = config.ffn_hidden;
        let v = config.vocab_size;

        // Embeddings: unit-scale rows plus a shared "sink" direction.
        let sink_dir = {
            let mut u = normal_vec(&mut rng, d, 1.0);
            let n = veda_tensor::ops::norm2(&u).max(1e-6);
            for x in &mut u {
                *x /= n;
            }
            u
        };
        let emb_std = 1.0 / (d as f32).sqrt();
        let mut embedding = noise_matrix(&mut rng, v, d, emb_std);
        for t in 0..v {
            // Gains are in units of the unit-norm sink direction, i.e.
            // comparable to the ~unit embedding row norm.
            let gain = if t == 0 { sp.sink_bos } else { sp.sink_base };
            let row = embedding.row_mut(t);
            for (x, &u) in row.iter_mut().zip(&sink_dir) {
                *x += gain * u;
            }
        }

        let layers = (0..config.n_layers)
            .map(|_| {
                let std = xavier_std(d, d);
                LayerWeights {
                    wq: identity_plus_noise(&mut rng, d, sp.match_gain, std),
                    wk: identity_plus_noise(&mut rng, d, sp.match_gain, std),
                    wv: noise_matrix(&mut rng, d, d, std),
                    wo: noise_matrix(&mut rng, d, d, std),
                    w1: noise_matrix(&mut rng, d, f, xavier_std(d, f)),
                    w2: noise_matrix(&mut rng, f, d, xavier_std(f, d)),
                    w3: noise_matrix(&mut rng, d, f, xavier_std(d, f)),
                    attn_norm: vec![1.0; d],
                    ffn_norm: vec![1.0; d],
                }
            })
            .collect();

        Self { embedding, final_norm: vec![1.0; d], layers }
    }

    /// Embedding row of a token.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn embed(&self, token: usize) -> &[f32] {
        self.embedding.row(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_tensor::ops::dot;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let a = ModelWeights::synthetic(&cfg);
        let b = ModelWeights::synthetic(&cfg);
        assert_eq!(a.embedding.as_slice(), b.embedding.as_slice());
        assert_eq!(a.layers[0].wq.as_slice(), b.layers[0].wq.as_slice());
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg);
        assert_eq!(w.embedding.shape(), [cfg.vocab_size, cfg.d_model]);
        assert_eq!(w.layers.len(), cfg.n_layers);
        assert_eq!(w.layers[0].w1.shape(), [cfg.d_model, cfg.ffn_hidden]);
        assert_eq!(w.layers[0].w2.shape(), [cfg.ffn_hidden, cfg.d_model]);
    }

    #[test]
    fn bos_embedding_attracts_queries() {
        // The sink structure: <e_t, e_0> should on average exceed
        // <e_t, e_s> for random non-BOS s.
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg);
        let mut to_bos = 0.0;
        let mut to_other = 0.0;
        for t in 1..32 {
            to_bos += dot(w.embed(t), w.embed(0));
            to_other += dot(w.embed(t), w.embed(t + 16));
        }
        assert!(to_bos > to_other, "sink dot {to_bos} vs other {to_other}");
    }

    #[test]
    fn matching_structure_boosts_same_token_scores() {
        // q(x) · k(x) should exceed q(x) · k(y) on average thanks to the
        // identity components of W_Q / W_K.
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg);
        let l = &w.layers[0];
        let mut same = 0.0;
        let mut cross = 0.0;
        for t in 1..20 {
            let x = w.embed(t);
            let q = veda_tensor::ops::gemv_outer(x, &l.wq);
            let kx = veda_tensor::ops::gemv_outer(x, &l.wk);
            let ky = veda_tensor::ops::gemv_outer(w.embed(t + 20), &l.wk);
            same += dot(&q, &kx);
            cross += dot(&q, &ky);
        }
        assert!(same > cross, "same {same} vs cross {cross}");
    }

    #[test]
    fn different_seeds_change_weights() {
        let mut cfg = ModelConfig::tiny();
        let a = ModelWeights::synthetic(&cfg);
        cfg.seed += 1;
        let b = ModelWeights::synthetic(&cfg);
        assert_ne!(a.embedding.as_slice(), b.embedding.as_slice());
    }
}

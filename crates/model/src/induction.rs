//! An interpretable attention-based retrieval language model.
//!
//! The Fig. 8 (left) experiment needs a language model whose predictive
//! quality *depends causally on which KV entries survive eviction*, and
//! which is cheap enough to evaluate over 1000 × 4096-token samples. A
//! random-weight transformer fails the first requirement (its logits carry
//! no signal), and a trained 7B model is unavailable offline. The
//! [`InductionLm`] fills the gap:
//!
//! * it is a genuine attention model: per-head scores over the resident
//!   cache are formed from content match (induction heads), recency, and an
//!   attention sink — the same structure measured in trained LLMs;
//! * its next-token distribution mixes attention-retrieved continuations
//!   (the value of a cache entry is the token that followed it) with bigram
//!   and unigram priors, so evicting a cache entry that would have been
//!   retrieved provably hurts the NLL;
//! * eviction policies observe exactly the per-head score vectors — the same
//!   interface the transformer and the hardware voting engine use.
//!
//! Perplexity numbers are therefore on the synthetic corpus' own scale, but
//! the *ordering and spacing* of policies is produced by the same mechanisms
//! the paper describes (heavy hitters, sinks, recency, outliers).

use crate::corpus::Corpus;
use veda_eviction::EvictionPolicy;
use veda_tensor::softmax::softmax;

/// One pseudo-head's score parameterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadParams {
    /// Logit bonus when a cache entry's token equals the current token.
    pub match_gain: f32,
    /// Recency timescale: logit −= min(distance / tau, recency_cap).
    pub recency_tau: f32,
    /// Logit bonus for absolute position 0 (attention sink).
    pub sink_gain: f32,
    /// Query-independent key-salience gain: frequent tokens and named
    /// entities act as heavy hitters whose keys attract attention in
    /// *every* step (the persistence-of-importance structure of
    /// Scissorhands/H2O).
    pub salience_gain: f32,
    /// Topic-affinity gain: keys belonging to the *active* topic's
    /// vocabulary (or the global slice) are more attractive than keys from
    /// past topics — attention follows the current discourse, so stale
    /// anchors fade instead of scoring forever.
    pub topic_gain: f32,
    /// Weight of this head in the *prediction* mixture (how much the
    /// model's output actually depends on what this head retrieves).
    pub predict_weight: f32,
}

/// Configuration of the retrieval LM.
#[derive(Debug, Clone, PartialEq)]
pub struct InductionConfig {
    /// Per-head score parameters (heads model the diversity of real
    /// attention: match-dominant, recency-dominant, sink-dominant).
    pub heads: Vec<HeadParams>,
    /// Cap on the recency penalty in nats: beyond ~`cap·tau` tokens the
    /// scores plateau at a noise floor instead of vanishing, as measured
    /// attention does.
    pub recency_cap: f32,
    /// Standard deviation of per-entry, per-head, per-step logit noise
    /// (attention scores fluctuate; without noise every policy becomes
    /// quasi-deterministic in age).
    pub score_noise: f32,
    /// Noise seed.
    pub noise_seed: u64,
    /// Mixture weight of the attention-retrieved continuation.
    pub attn_weight: f32,
    /// Mixture weight of the bigram prior.
    pub bigram_weight: f32,
    /// Mixture weight of the unigram prior.
    pub unigram_weight: f32,
    /// Uniform smoothing floor.
    pub floor_weight: f32,
}

impl Default for InductionConfig {
    fn default() -> Self {
        Self {
            heads: vec![
                HeadParams {
                    match_gain: 6.0,
                    recency_tau: 1.0e9,
                    sink_gain: 0.5,
                    salience_gain: 2.5,
                    topic_gain: 2.5,
                    predict_weight: 0.55,
                },
                HeadParams {
                    match_gain: 1.5,
                    recency_tau: 32.0,
                    sink_gain: 1.0,
                    salience_gain: 0.5,
                    topic_gain: 0.5,
                    predict_weight: 0.35,
                },
                HeadParams {
                    match_gain: 2.0,
                    recency_tau: 256.0,
                    sink_gain: 3.0,
                    salience_gain: 3.0,
                    topic_gain: 2.0,
                    predict_weight: 0.10,
                },
            ],
            recency_cap: 6.0,
            score_noise: 0.2,
            noise_seed: 77,
            attn_weight: 0.70,
            bigram_weight: 0.10,
            unigram_weight: 0.10,
            floor_weight: 0.10,
        }
    }
}

impl InductionConfig {
    /// Validates mixture weights (must be positive and sum to ~1).
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.heads.is_empty() {
            return Err("at least one head required".into());
        }
        let sum = self.attn_weight + self.bigram_weight + self.unigram_weight + self.floor_weight;
        if (sum - 1.0).abs() > 1e-3 {
            return Err(format!("mixture weights sum to {sum}, expected 1"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Entry {
    position: usize,
    key_token: usize,
    /// The token that followed this position; `None` for the newest entry.
    value_token: Option<usize>,
}

/// Result of evaluating one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEval {
    /// Sum of per-token negative log-likelihoods.
    pub total_nll: f64,
    /// Number of predicted tokens.
    pub tokens: usize,
    /// Number of evictions performed.
    pub evictions: usize,
}

impl SampleEval {
    /// Perplexity `exp(mean NLL)`.
    pub fn perplexity(&self) -> f64 {
        if self.tokens == 0 {
            return f64::NAN;
        }
        (self.total_nll / self.tokens as f64).exp()
    }
}

/// The retrieval language model. Stateless across samples; each
/// [`InductionLm::evaluate_sample`] call drives a fresh pass.
#[derive(Debug, Clone)]
pub struct InductionLm {
    config: InductionConfig,
    /// Normalized unigram distribution from the corpus.
    unigram: Vec<f32>,
    /// Query-independent key salience per token type: frequent tokens and
    /// entities have persistently attractive keys (heavy hitters), in
    /// [0, 1].
    salience: Vec<f32>,
    /// Topic id of each token (usize::MAX for global/BOS tokens, which
    /// belong to every topic).
    token_topic: Vec<usize>,
    /// Topic schedule parameters (mirrored from the corpus).
    topic_len: usize,
    n_topics: usize,
}

impl InductionLm {
    /// Builds the LM against a corpus (for its unigram/bigram priors).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: InductionConfig, corpus: &Corpus) -> Self {
        config.validate().expect("valid induction config");
        let v = corpus.config().vocab_size;
        let mut unigram: Vec<f32> = (0..v).map(|t| corpus.unigram_weight(t)).collect();
        let sum = veda_tensor::stats::sum(&unigram);
        for u in &mut unigram {
            *u /= sum;
        }
        let max_u = veda_tensor::stats::max_or(f32::MIN_POSITIVE, &unigram);
        // Frequent tokens get only mild salience — their many duplicate
        // anchors are redundant; named entities get full salience.
        let mut salience: Vec<f32> = unigram.iter().map(|&u| 0.35 * (u / max_u).sqrt()).collect();
        let mut token_topic = vec![usize::MAX; v];
        for topic in 0..corpus.config().n_topics {
            let (start, len) = corpus.topic_slice(topic);
            for slot in token_topic[start..(start + len).min(v)].iter_mut() {
                *slot = topic;
            }
        }
        for (t, sal) in salience.iter_mut().enumerate() {
            if corpus.is_entity(t) {
                // Named entities are salient keys regardless of frequency —
                // but below the topic-affinity gain, so entities of *past*
                // topics fade below active-topic content.
                *sal = 0.6;
            }
        }
        Self {
            config,
            unigram,
            salience,
            token_topic,
            topic_len: corpus.config().topic_len,
            n_topics: corpus.config().n_topics,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &InductionConfig {
        &self.config
    }

    fn head_scores(
        &self,
        entries: &[Entry],
        current_token: usize,
        current_pos: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<Vec<f32>> {
        self.config
            .heads
            .iter()
            .map(|h| {
                let logits: Vec<f32> = entries
                    .iter()
                    .map(|e| {
                        let mut logit = 0.0;
                        if e.key_token == current_token {
                            logit += h.match_gain;
                        }
                        logit += h.salience_gain * self.salience[e.key_token];
                        let active_topic = (current_pos / self.topic_len) % self.n_topics;
                        let tt = self.token_topic[e.key_token];
                        if tt == usize::MAX || tt == active_topic {
                            logit += h.topic_gain;
                        }
                        let recency = (current_pos - e.position) as f32 / h.recency_tau;
                        logit -= recency.min(self.config.recency_cap);
                        if e.position == 0 {
                            logit += h.sink_gain;
                        }
                        logit + veda_tensor::rng::standard_normal(rng) * self.config.score_noise
                    })
                    .collect();
                softmax(&logits)
            })
            .collect()
    }

    /// Prediction-weighted combination of head scores.
    fn predict_weighted_scores(&self, scores: &[Vec<f32>]) -> Vec<f32> {
        let len = scores.first().map_or(0, Vec::len);
        let mut out = vec![0.0f32; len];
        // lint:allow(float-reduction): head-count-bounded sum in fixed config order; a kernel call would force a per-token allocation
        let total: f32 = self.config.heads.iter().map(|h| h.predict_weight).sum();
        for (h, head_scores) in self.config.heads.iter().zip(scores) {
            let w = h.predict_weight / total.max(1e-9);
            for (o, &s) in out.iter_mut().zip(head_scores) {
                *o += w * s;
            }
        }
        out
    }

    /// Probability of `target` (arriving at `target_pos`) under the
    /// mixture given prediction-weighted attention over the entries.
    fn predict_prob(
        &self,
        entries: &[Entry],
        avg_scores: &[f32],
        prev_token: usize,
        target_pos: usize,
        corpus: &Corpus,
        target: usize,
    ) -> f64 {
        // Attention-retrieved continuation mass on `target`.
        let mut retrieved = 0.0f64;
        let mut covered = 0.0f64;
        for (e, &s) in entries.iter().zip(avg_scores) {
            if let Some(v) = e.value_token {
                covered += f64::from(s);
                if v == target {
                    retrieved += f64::from(s);
                }
            }
        }
        let p_attn = if covered > 1e-12 { retrieved / covered } else { 0.0 };
        let p_bigram = if corpus.successor_at(prev_token, target_pos) == target {
            0.9
        } else {
            0.1 / self.unigram.len() as f64
        };
        let p_uni = f64::from(self.unigram[target]);
        let p_floor = 1.0 / self.unigram.len() as f64;
        f64::from(self.config.attn_weight) * p_attn
            + f64::from(self.config.bigram_weight) * p_bigram
            + f64::from(self.config.unigram_weight) * p_uni
            + f64::from(self.config.floor_weight) * p_floor
    }

    /// Evaluates one token sample under a cache `budget` and an eviction
    /// `policy`, returning accumulated NLL statistics.
    ///
    /// The policy is driven through the standard protocol (append →
    /// observe → evict) with per-head score observations.
    pub fn evaluate_sample(
        &self,
        tokens: &[usize],
        budget: usize,
        policy: &mut dyn EvictionPolicy,
        corpus: &Corpus,
    ) -> SampleEval {
        self.evaluate_sample_with_residents(tokens, budget, policy, corpus).0
    }

    /// Like [`InductionLm::evaluate_sample`], additionally returning the
    /// absolute positions resident at the end (diagnostics for policy
    /// behaviour analysis).
    pub fn evaluate_sample_with_residents(
        &self,
        tokens: &[usize],
        budget: usize,
        policy: &mut dyn EvictionPolicy,
        corpus: &Corpus,
    ) -> (SampleEval, Vec<usize>) {
        policy.reset();
        let mut rng =
            veda_tensor::rng::seeded(self.config.noise_seed ^ (tokens.len() as u64).wrapping_mul(0x9E37));
        let mut entries: Vec<Entry> = Vec::new();
        let mut flat_scores: Vec<f32> = Vec::new();
        let mut eval = SampleEval { total_nll: 0.0, tokens: 0, evictions: 0 };
        // Pending prediction distribution context from the previous step.
        let mut pending: Option<(Vec<f32>, usize)> = None; // (weighted scores, prev token)

        for (pos, &tok) in tokens.iter().enumerate() {
            // Score the prediction made for this token.
            if let Some((avg, prev)) = pending.take() {
                // `avg` was computed over `entries` *as they were* at the end
                // of the previous step; entries have not changed since.
                debug_assert_eq!(avg.len(), entries.len());
                let p = self.predict_prob(&entries, &avg, prev, pos, corpus, tok).max(1e-12);
                eval.total_nll += -p.ln();
                eval.tokens += 1;
            }
            // Backfill the newest entry's value: `tok` followed it.
            if let Some(last) = entries.last_mut() {
                if last.value_token.is_none() {
                    last.value_token = Some(tok);
                }
            }
            // Append the new entry and observe (flattened into the
            // reusable buffer the policies' ScoreView borrows).
            entries.push(Entry { position: pos, key_token: tok, value_token: None });
            policy.on_append();
            let scores = self.head_scores(&entries, tok, pos, &mut rng);
            veda_eviction::observe_heads_into(policy, &scores, &mut flat_scores);

            // Evict if over budget.
            if entries.len() > budget {
                if let Some(slot) = policy.select_victim(entries.len()) {
                    entries.remove(slot);
                    policy.on_evict(slot);
                    eval.evictions += 1;
                }
            }

            // Stage the prediction for the next token.
            let scores = self.head_scores(&entries, tok, pos, &mut rng);
            let avg = self.predict_weighted_scores(&scores);
            pending = Some((avg, tok));
        }
        (eval, entries.iter().map(|e| e.position).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use veda_eviction::{FullCachePolicy, PolicyKind, SlidingWindowPolicy};

    fn small_corpus() -> Corpus {
        Corpus::new(CorpusConfig { vocab_size: 256, seed: 5, ..CorpusConfig::default() })
    }

    #[test]
    fn full_cache_beats_tiny_window() {
        let corpus = small_corpus();
        let lm = InductionLm::new(InductionConfig::default(), &corpus);
        let sample = corpus.sample(0, 512);
        let full = lm.evaluate_sample(&sample, usize::MAX / 2, &mut FullCachePolicy::new(), &corpus);
        let windowed = lm.evaluate_sample(&sample, 16, &mut SlidingWindowPolicy::new(4), &corpus);
        assert!(
            full.perplexity() < windowed.perplexity(),
            "full {} vs window {}",
            full.perplexity(),
            windowed.perplexity()
        );
    }

    #[test]
    fn perplexity_decreases_with_budget() {
        let corpus = small_corpus();
        let lm = InductionLm::new(InductionConfig::default(), &corpus);
        let sample = corpus.sample(1, 768);
        let small = lm.evaluate_sample(&sample, 32, &mut PolicyKind::Voting.build(), &corpus);
        let large = lm.evaluate_sample(&sample, 256, &mut PolicyKind::Voting.build(), &corpus);
        assert!(
            large.perplexity() <= small.perplexity() + 0.5,
            "large {} vs small {}",
            large.perplexity(),
            small.perplexity()
        );
    }

    #[test]
    fn evictions_happen_exactly_when_over_budget() {
        let corpus = small_corpus();
        let lm = InductionLm::new(InductionConfig::default(), &corpus);
        let sample = corpus.sample(2, 300);
        let eval = lm.evaluate_sample(&sample, 100, &mut PolicyKind::H2o.build(), &corpus);
        assert_eq!(eval.evictions, 200);
        assert_eq!(eval.tokens, 299);
    }

    #[test]
    fn deterministic_across_runs() {
        let corpus = small_corpus();
        let lm = InductionLm::new(InductionConfig::default(), &corpus);
        let sample = corpus.sample(3, 400);
        let a = lm.evaluate_sample(&sample, 64, &mut PolicyKind::Voting.build(), &corpus);
        let b = lm.evaluate_sample(&sample, 64, &mut PolicyKind::Voting.build(), &corpus);
        assert_eq!(a.total_nll, b.total_nll);
    }

    #[test]
    fn scores_observed_are_distributions() {
        let corpus = small_corpus();
        let lm = InductionLm::new(InductionConfig::default(), &corpus);
        let entries = [
            Entry { position: 0, key_token: 0, value_token: Some(3) },
            Entry { position: 1, key_token: 3, value_token: Some(9) },
            Entry { position: 2, key_token: 9, value_token: None },
        ];
        let mut rng = veda_tensor::rng::seeded(1);
        let scores = lm.head_scores(&entries, 3, 2, &mut rng);
        assert_eq!(scores.len(), lm.config().heads.len());
        for s in &scores {
            let sum: f32 = s.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        // The match head (head 0) should put most mass on the matching key.
        assert!(scores[0][1] > scores[0][0] && scores[0][1] > scores[0][2]);
    }

    #[test]
    fn invalid_mixture_rejected() {
        let cfg = InductionConfig { attn_weight: 0.9, ..InductionConfig::default() };
        assert!(cfg.validate().is_err());
        assert!(InductionConfig::default().validate().is_ok());
    }
}

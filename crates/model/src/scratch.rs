//! Reusable per-sequence forward-pass scratch: the zero-allocation decode
//! hot path.
//!
//! One token through [`crate::TransformerModel::forward_in`] historically
//! allocated ~10 fresh `Vec`s per layer (q/k/v, per-head score vectors,
//! softmax copies, gate/up/hidden/down, plus the nested
//! `Vec<Vec<Vec<f32>>>` score tensor of the step output). A
//! [`ForwardScratch`] owns all of those buffers once per sequence;
//! [`crate::TransformerModel::forward_with_scratch`] threads them through
//! every kernel so steady-state decode performs **zero per-token heap
//! allocations** (pinned by a counting-allocator test) while producing
//! bit-identical results — every in-place kernel keeps the f32 summation
//! order of its allocating twin.
//!
//! Attention-score observations land in a [`ScoreBuffer`]: one flat
//! buffer for all layers and heads of the step, exposed to eviction
//! policies as borrowed [`ScoreView`]s instead of nested vectors.

use veda_eviction::ScoreView;

/// Flat per-step attention-score storage: every layer's head-major score
/// block, concatenated, with per-layer end offsets.
///
/// Layers may have different resident cache lengths (per-layer eviction
/// can diverge when a policy refuses a victim), so each layer records its
/// own segment boundary; within a layer all heads have equal length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreBuffer {
    data: Vec<f32>,
    /// Cumulative end offset of each layer's segment in `data`.
    ends: Vec<usize>,
    n_heads: usize,
}

impl ScoreBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of layers recorded in the current step.
    pub fn n_layers(&self) -> usize {
        self.ends.len()
    }

    /// Heads per layer.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// The flat head-major score block of layer `l` as a [`ScoreView`]
    /// (the observation eviction policies consume).
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_layers()`.
    pub fn layer(&self, l: usize) -> ScoreView<'_> {
        assert!(l < self.ends.len(), "layer {l} out of bounds ({} layers)", self.ends.len());
        let start = if l == 0 { 0 } else { self.ends[l - 1] };
        ScoreView::new(&self.data[start..self.ends[l]], self.n_heads)
    }

    /// Resets the buffer for a new step, retaining capacity.
    pub(crate) fn begin_step(&mut self, n_heads: usize) {
        self.data.clear();
        self.ends.clear();
        self.n_heads = n_heads;
    }

    /// Current write position (start of the segment about to be written).
    pub(crate) fn mark(&self) -> usize {
        self.data.len()
    }

    /// Appends one raw score.
    pub(crate) fn push(&mut self, score: f32) {
        self.data.push(score);
    }

    /// The mutable segment from `mark` to the end (for in-place softmax).
    pub(crate) fn segment_mut(&mut self, mark: usize) -> &mut [f32] {
        &mut self.data[mark..]
    }

    /// The segment from `mark` to the end.
    pub(crate) fn segment(&self, mark: usize) -> &[f32] {
        &self.data[mark..]
    }

    /// Closes the current layer's segment.
    pub(crate) fn seal_layer(&mut self) {
        self.ends.push(self.data.len());
    }
}

/// Reusable buffers for one sequence's forward pass (see the
/// [module docs](self)). Create one per decoding session — via
/// [`crate::TransformerModel::new_scratch`] to pre-size every buffer for
/// the model geometry — and pass it to every
/// [`crate::TransformerModel::forward_with_scratch`] call; after the call
/// the next-token [`ForwardScratch::logits`] and the step's
/// [`ForwardScratch::scores`] remain readable until the next call.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    /// Residual-stream hidden state, length `d_model`.
    pub(crate) hidden: Vec<f32>,
    /// Pre-norm output feeding attention / FFN / the LM head.
    pub(crate) normed: Vec<f32>,
    /// Query projection, length `d_model`.
    pub(crate) q: Vec<f32>,
    /// Key projection, length `d_model`.
    pub(crate) k: Vec<f32>,
    /// Value projection, length `d_model`.
    pub(crate) v: Vec<f32>,
    /// Concatenated per-head attention outputs, length `d_model`.
    pub(crate) concat: Vec<f32>,
    /// Attention output after `W_O`, length `d_model`.
    pub(crate) attn_out: Vec<f32>,
    /// FFN gate activation, length `ffn_hidden`.
    pub(crate) gate: Vec<f32>,
    /// FFN up projection, length `ffn_hidden`.
    pub(crate) up: Vec<f32>,
    /// FFN down projection, length `d_model`.
    pub(crate) down: Vec<f32>,
    /// Next-token logits, length `vocab_size`.
    pub(crate) logits: Vec<f32>,
    /// All attention-score observations of the step.
    pub(crate) scores: ScoreBuffer,
}

impl ForwardScratch {
    /// Creates an empty scratch; buffers grow to their working sizes on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for a model geometry, so even the
    /// first forward pass allocates only inside the KV cache. `seq_hint`
    /// pre-sizes the score buffer for an expected resident cache length.
    pub fn for_config(config: &crate::config::ModelConfig, seq_hint: usize) -> Self {
        let d = config.d_model;
        Self {
            hidden: Vec::with_capacity(d),
            normed: Vec::with_capacity(d),
            q: Vec::with_capacity(d),
            k: Vec::with_capacity(d),
            v: Vec::with_capacity(d),
            concat: Vec::with_capacity(d),
            attn_out: Vec::with_capacity(d),
            gate: Vec::with_capacity(config.ffn_hidden),
            up: Vec::with_capacity(config.ffn_hidden),
            down: Vec::with_capacity(d),
            logits: Vec::with_capacity(config.vocab_size),
            scores: ScoreBuffer {
                data: Vec::with_capacity(config.n_layers * config.n_heads * seq_hint),
                ends: Vec::with_capacity(config.n_layers),
                n_heads: config.n_heads,
            },
        }
    }

    /// Next-token logits of the most recent forward pass.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Attention-score observations of the most recent forward pass.
    pub fn scores(&self) -> &ScoreBuffer {
        &self.scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_buffer_tracks_layer_segments() {
        let mut b = ScoreBuffer::new();
        b.begin_step(2);
        for s in [0.25, 0.75, 0.5, 0.5] {
            b.push(s);
        }
        b.seal_layer();
        for s in [1.0, 0.0] {
            b.push(s);
        }
        b.seal_layer();
        assert_eq!(b.n_layers(), 2);
        let l0 = b.layer(0);
        assert_eq!(l0.len(), 2);
        assert_eq!(l0.head(0), &[0.25, 0.75]);
        assert_eq!(l0.head(1), &[0.5, 0.5]);
        let l1 = b.layer(1);
        assert_eq!(l1.len(), 1);
        assert_eq!(l1.head(0), &[1.0]);
        assert_eq!(l1.head(1), &[0.0]);
        // A new step resets the segments.
        b.begin_step(2);
        assert_eq!(b.n_layers(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn score_buffer_rejects_bad_layer() {
        ScoreBuffer::new().layer(0);
    }
}

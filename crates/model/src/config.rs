//! Model geometry configuration.

use veda_tensor::activation::Activation;

/// Geometry and hyper-parameters of a decoder-only transformer.
///
/// ```
/// use veda_model::ModelConfig;
/// let cfg = ModelConfig::tiny();
/// assert_eq!(cfg.head_dim() * cfg.n_heads, cfg.d_model);
/// assert!(ModelConfig::llama2_7b().params() > 6_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden (embedding) dimension `D`.
    pub d_model: usize,
    /// Number of attention heads `H` (must divide `d_model`).
    pub n_heads: usize,
    /// Number of transformer layers `N`.
    pub n_layers: usize,
    /// FFN hidden dimension (4·D in the paper's Fig. 1; 11008 in Llama-2 7B).
    pub ffn_hidden: usize,
    /// Maximum sequence length (4096 for Llama-2).
    pub max_seq_len: usize,
    /// FFN activation.
    pub activation: Activation,
    /// RoPE base frequency (10000 in Llama).
    pub rope_theta: f32,
    /// Seed for synthetic weight generation.
    pub seed: u64,
}

impl ModelConfig {
    /// Head dimension `d = D / H`.
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` does not divide `d_model`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.d_model % self.n_heads, 0, "n_heads must divide d_model");
        self.d_model / self.n_heads
    }

    /// Llama-2 7B geometry (used by the cycle model; never materialized as
    /// tensors in this workspace).
    pub fn llama2_7b() -> Self {
        Self {
            vocab_size: 32000,
            d_model: 4096,
            n_heads: 32,
            n_layers: 32,
            ffn_hidden: 11008,
            max_seq_len: 4096,
            activation: Activation::Silu,
            rope_theta: 10000.0,
            seed: 0,
        }
    }

    /// A small model that runs the full functional pipeline in seconds:
    /// D=256, H=8, 4 layers, 4 Ki vocabulary.
    pub fn small() -> Self {
        Self {
            vocab_size: 4096,
            d_model: 256,
            n_heads: 8,
            n_layers: 4,
            ffn_hidden: 1024,
            max_seq_len: 4096,
            activation: Activation::Silu,
            rope_theta: 10000.0,
            seed: 7,
        }
    }

    /// A unit-test-sized model: D=32, H=4, 2 layers, 64-token vocabulary.
    pub fn tiny() -> Self {
        Self {
            vocab_size: 64,
            d_model: 32,
            n_heads: 4,
            n_layers: 2,
            ffn_hidden: 64,
            max_seq_len: 512,
            activation: Activation::Silu,
            rope_theta: 10000.0,
            seed: 3,
        }
    }

    /// Total parameter count (embedding + per-layer attention/FFN + norms),
    /// with the LM head tied to the embedding.
    pub fn params(&self) -> u64 {
        let d = self.d_model as u64;
        let f = self.ffn_hidden as u64;
        let v = self.vocab_size as u64;
        let per_layer = 4 * d * d // wq wk wv wo
            + 3 * d * f           // w1 (gate), w3 (up), w2 (down) — gated FFN
            + 2 * d; //            two RMSNorm gains
        v * d + self.n_layers as u64 * per_layer + d
    }

    /// FLOPs of one decode step at cache length `l` (multiply-accumulate
    /// counted as 2 ops) — the workload the accelerator executes per token.
    pub fn decode_flops(&self, cache_len: usize) -> u64 {
        let d = self.d_model as u64;
        let f = self.ffn_hidden as u64;
        let l = cache_len as u64;
        let dh = self.head_dim() as u64;
        let h = self.n_heads as u64;
        let qkv = 3 * 2 * d * d;
        let attn = h * (2 * dh * l + 2 * l * dh);
        let proj = 2 * d * d;
        let ffn = 3 * 2 * d * f; // gate, up and down projections
        self.n_layers as u64 * (qkv + attn + proj + ffn)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.d_model == 0 || self.n_heads == 0 || self.n_layers == 0 {
            return Err("dimensions must be positive".into());
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(format!("n_heads {} must divide d_model {}", self.n_heads, self.d_model));
        }
        if self.vocab_size < 2 {
            return Err("vocabulary must have at least 2 tokens".into());
        }
        if self.max_seq_len == 0 {
            return Err("max_seq_len must be positive".into());
        }
        Ok(())
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_head_dim_is_128() {
        assert_eq!(ModelConfig::llama2_7b().head_dim(), 128);
    }

    #[test]
    fn llama2_param_count_near_7b() {
        let p = ModelConfig::llama2_7b().params();
        assert!(p > 6_000_000_000 && p < 8_000_000_000, "params {p}");
    }

    #[test]
    fn presets_validate() {
        assert!(ModelConfig::llama2_7b().validate().is_ok());
        assert!(ModelConfig::small().validate().is_ok());
        assert!(ModelConfig::tiny().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ModelConfig::tiny();
        c.n_heads = 5;
        assert!(c.validate().is_err());
        c = ModelConfig::tiny();
        c.vocab_size = 1;
        assert!(c.validate().is_err());
        c = ModelConfig::tiny();
        c.d_model = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn decode_flops_grow_with_cache() {
        let c = ModelConfig::small();
        assert!(c.decode_flops(1024) > c.decode_flops(128));
    }
}

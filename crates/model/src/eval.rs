//! Perplexity evaluation harness: policies × cache sizes over the synthetic
//! corpus (the Fig. 8 left experiment), plus a transformer-based distortion
//! metric.

use crate::corpus::Corpus;
use crate::induction::{InductionConfig, InductionLm};
use crate::transformer::TransformerModel;
use veda_eviction::PolicyKind;

/// Aggregated result of evaluating one policy at one cache budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PerplexityReport {
    /// Which policy.
    pub policy: PolicyKind,
    /// The cache budget (number of resident kv vectors).
    pub cache_budget: usize,
    /// Perplexity `exp(mean NLL)` over all evaluated tokens.
    pub perplexity: f64,
    /// Mean negative log-likelihood.
    pub mean_nll: f64,
    /// Total tokens scored.
    pub tokens: usize,
    /// Total evictions performed.
    pub evictions: usize,
}

/// Evaluates `policy` at `cache_budget` over `n_samples` corpus samples of
/// `sample_len` tokens each.
///
/// This is the workhorse of the Fig. 8 (left) reproduction: call it for
/// each (policy, cache size) pair.
pub fn evaluate_policy_perplexity(
    corpus: &Corpus,
    lm_config: &InductionConfig,
    policy: PolicyKind,
    cache_budget: usize,
    n_samples: u64,
    sample_len: usize,
) -> PerplexityReport {
    let lm = InductionLm::new(lm_config.clone(), corpus);
    let mut total_nll = 0.0f64;
    let mut tokens = 0usize;
    let mut evictions = 0usize;
    for s in 0..n_samples {
        let sample = corpus.sample(s, sample_len);
        let mut p = policy.build();
        let eval = lm.evaluate_sample(&sample, cache_budget, p.as_mut(), corpus);
        total_nll += eval.total_nll;
        tokens += eval.tokens;
        evictions += eval.evictions;
    }
    let mean_nll = if tokens == 0 { f64::NAN } else { total_nll / tokens as f64 };
    PerplexityReport { policy, cache_budget, perplexity: mean_nll.exp(), mean_nll, tokens, evictions }
}

/// Mean KL divergence (in nats) between the pruned-cache transformer's
/// next-token distribution and the full-cache oracle, over one generated
/// sequence — a direct measurement of how much an eviction policy distorts
/// the *actual transformer* outputs.
///
/// Both models consume the same token stream. The policy observes the
/// pruned model's layer-0 attention scores and evicts synchronously across
/// layers, matching VEDA's layer-wise voting engine.
pub fn transformer_distortion(
    model_config: &crate::config::ModelConfig,
    tokens: &[usize],
    policy: PolicyKind,
    cache_budget: usize,
) -> f64 {
    let mut oracle = TransformerModel::new(model_config.clone());
    let mut pruned = TransformerModel::new(model_config.clone());
    let mut p = policy.build();
    let mut kl_sum = 0.0f64;
    let mut count = 0usize;

    for (pos, &tok) in tokens.iter().enumerate() {
        let full = oracle.forward_token(tok, pos);
        let cut = pruned.forward_token(tok, pos);

        // Drive the policy with the pruned model's first-layer observation.
        p.on_append();
        p.observe(cut.scores.layer(0));
        if pruned.cache_len() > cache_budget {
            if let Some(slot) = p.select_victim(pruned.cache_len()) {
                pruned.evict_all_layers(slot);
                p.on_evict(slot);
            }
        }

        // KL(full || pruned) over next-token distributions.
        let lp_full = veda_tensor::softmax::log_softmax(&full.logits);
        let lp_cut = veda_tensor::softmax::log_softmax(&cut.logits);
        let kl: f64 = lp_full
            .iter()
            .zip(&lp_cut)
            .map(|(&a, &b)| (f64::from(a).exp()) * (f64::from(a) - f64::from(b)))
            // lint:allow(float-reduction): f64 KL accumulation in vocab order; widening to f64 is the precision discipline here
            .sum();
        kl_sum += kl.max(0.0);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        kl_sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::corpus::CorpusConfig;

    fn fast_corpus() -> Corpus {
        Corpus::new(CorpusConfig { vocab_size: 256, seed: 5, ..CorpusConfig::default() })
    }

    #[test]
    fn report_fields_are_consistent() {
        let corpus = fast_corpus();
        let r =
            evaluate_policy_perplexity(&corpus, &InductionConfig::default(), PolicyKind::Voting, 64, 2, 256);
        assert_eq!(r.tokens, 2 * 255);
        assert!((r.perplexity - r.mean_nll.exp()).abs() < 1e-9);
        assert!(r.perplexity > 1.0);
    }

    #[test]
    fn bigger_cache_is_no_worse() {
        let corpus = fast_corpus();
        let small = evaluate_policy_perplexity(
            &corpus,
            &InductionConfig::default(),
            PolicyKind::SlidingWindow,
            24,
            2,
            384,
        );
        let large = evaluate_policy_perplexity(
            &corpus,
            &InductionConfig::default(),
            PolicyKind::SlidingWindow,
            192,
            2,
            384,
        );
        assert!(
            large.perplexity <= small.perplexity + 0.2,
            "large {} small {}",
            large.perplexity,
            small.perplexity
        );
    }

    #[test]
    fn transformer_distortion_grows_as_budget_shrinks() {
        let cfg = ModelConfig::tiny();
        let corpus = fast_corpus();
        let tokens: Vec<usize> = corpus.sample(0, 48).iter().map(|&t| t % cfg.vocab_size).collect();
        let tight = transformer_distortion(&cfg, &tokens, PolicyKind::SlidingWindow, 8);
        let loose = transformer_distortion(&cfg, &tokens, PolicyKind::SlidingWindow, 40);
        assert!(tight >= loose, "tight {tight} loose {loose}");
        assert!(loose >= 0.0);
    }

    #[test]
    fn full_policy_has_zero_distortion() {
        let cfg = ModelConfig::tiny();
        let tokens = [1usize, 4, 9, 16, 25, 36, 7, 12];
        let d = transformer_distortion(&cfg, &tokens, PolicyKind::Full, 1);
        assert!(d.abs() < 1e-9, "distortion {d}");
    }
}

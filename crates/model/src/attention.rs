//! Multi-head attention with a pluggable KV cache, computed with the two
//! GEMV interpretations VEDA maps to hardware.
//!
//! One decode step per call: the query row attends over all resident cache
//! entries (`q × Kᵀ` via [`veda_tensor::ops::gemv_inner`] over `(l, d)` rows)
//! and aggregates values (`s' × V` via [`veda_tensor::ops::gemv_outer`]).
//! The per-head post-softmax score vectors are returned so eviction policies
//! and the voting engine can observe them.

use crate::config::ModelConfig;
use crate::kvcache::LayerKvCache;
use crate::rope::apply_rope;
use crate::scratch::ForwardScratch;
use crate::weights::LayerWeights;
use veda_tensor::ops::{dot, gemv_outer_into};
use veda_tensor::softmax::softmax_in_place;

/// Result of one attention step.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// The attention output after the `W_O` projection, length `D`.
    pub output: Vec<f32>,
    /// Post-softmax attention scores per head over all resident cache
    /// slots (including the current token's own new entry).
    pub head_scores: Vec<Vec<f32>>,
}

/// Runs one attention step for a single layer through reusable scratch
/// buffers: reads the RMS-normed hidden state from `scratch.normed`,
/// leaves the `W_O`-projected output in `scratch.attn_out` and appends the
/// layer's head-major score block to `scratch.scores` (the segment is
/// sealed here). Allocation-free once the scratch capacity is warm, and
/// bit-identical to the historical allocating kernel.
pub(crate) fn attend_into(
    position: usize,
    cache: &mut LayerKvCache,
    w: &LayerWeights,
    config: &ModelConfig,
    scratch: &mut ForwardScratch,
) {
    let d = config.d_model;
    let dh = config.head_dim();
    assert_eq!(scratch.normed.len(), d, "hidden state width mismatch");

    // QKV generation (Step 1 of Fig. 1): x·W via the outer-product view.
    gemv_outer_into(&scratch.normed, &w.wq, &mut scratch.q);
    gemv_outer_into(&scratch.normed, &w.wk, &mut scratch.k);
    gemv_outer_into(&scratch.normed, &w.wv, &mut scratch.v);

    // RoPE per head on q and k.
    for h in 0..config.n_heads {
        apply_rope(&mut scratch.q[h * dh..(h + 1) * dh], position, config.rope_theta);
        apply_rope(&mut scratch.k[h * dh..(h + 1) * dh], position, config.rope_theta);
    }

    cache.append(position, &scratch.k, &scratch.v);
    let l = cache.len();
    let scale = 1.0 / (dh as f32).sqrt();

    scratch.concat.clear();
    scratch.concat.resize(d, 0.0);
    for h in 0..config.n_heads {
        let span = h * dh..(h + 1) * dh;
        let qh = &scratch.q[span.clone()];
        // q × Kᵀ: inner product over the (l, d) key rows — l is temporal.
        let mark = scratch.scores.mark();
        for row in 0..l {
            scratch.scores.push(dot(qh, &cache.keys().row(row)[span.clone()]) * scale);
        }
        softmax_in_place(scratch.scores.segment_mut(mark));
        // s' × V: outer product over the (l, d) value rows — l is temporal.
        let out = &mut scratch.concat[span.clone()];
        for (row, &sv) in scratch.scores.segment(mark).iter().enumerate() {
            let vrow = &cache.values().row(row)[span.clone()];
            for (a, &vv) in out.iter_mut().zip(vrow) {
                *a += sv * vv;
            }
        }
    }
    scratch.scores.seal_layer();

    gemv_outer_into(&scratch.concat, &w.wo, &mut scratch.attn_out);
}

/// Runs one attention step for a single layer (allocating convenience
/// wrapper over the crate-internal `attend_into` scratch kernel).
///
/// `x` is the RMS-normed hidden state of the current token, `position` its
/// absolute index. The token's K/V vectors are appended to `cache` before
/// attending, so causality holds and the score vectors have length
/// `cache.len()`.
pub fn attend(
    x: &[f32],
    position: usize,
    cache: &mut LayerKvCache,
    w: &LayerWeights,
    config: &ModelConfig,
) -> AttentionOutput {
    let mut scratch = ForwardScratch::new();
    scratch.normed.extend_from_slice(x);
    scratch.scores.begin_step(config.n_heads);
    attend_into(position, cache, w, config, &mut scratch);
    let head_scores = scratch.scores.layer(0).heads().map(<[f32]>::to_vec).collect();
    AttentionOutput { output: std::mem::take(&mut scratch.attn_out), head_scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::ModelWeights;

    fn setup() -> (ModelConfig, ModelWeights, LayerKvCache) {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::synthetic(&cfg);
        (cfg, w, LayerKvCache::new())
    }

    #[test]
    fn scores_are_distributions_over_cache() {
        let (cfg, w, mut cache) = setup();
        let x = w.embed(5).to_vec();
        for pos in 0..4 {
            let out = attend(&x, pos, &mut cache, &w.layers[0], &cfg);
            assert_eq!(out.head_scores.len(), cfg.n_heads);
            for s in &out.head_scores {
                assert_eq!(s.len(), pos + 1);
                let sum: f32 = s.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "scores sum to {sum}");
            }
        }
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        let (cfg, w, mut cache) = setup();
        let x = w.embed(3).to_vec();
        let out = attend(&x, 0, &mut cache, &w.layers[0], &cfg);
        for s in &out.head_scores {
            assert!((s[0] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn output_width_is_d_model() {
        let (cfg, w, mut cache) = setup();
        let x = w.embed(1).to_vec();
        let out = attend(&x, 0, &mut cache, &w.layers[0], &cfg);
        assert_eq!(out.output.len(), cfg.d_model);
        assert!(out.output.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cache_grows_by_one_per_step() {
        let (cfg, w, mut cache) = setup();
        let x = w.embed(2).to_vec();
        for pos in 0..5 {
            attend(&x, pos, &mut cache, &w.layers[0], &cfg);
            assert_eq!(cache.len(), pos + 1);
        }
    }

    #[test]
    fn eviction_changes_attention_output() {
        let (cfg, w, _) = setup();
        let tokens = [5usize, 9, 13, 21, 2, 40];
        // Run with full cache.
        let mut full = LayerKvCache::new();
        let mut full_out = Vec::new();
        for (pos, &t) in tokens.iter().enumerate() {
            full_out = attend(w.embed(t), pos, &mut full, &w.layers[0], &cfg).output;
        }
        // Run with one mid-entry evicted before the last step.
        let mut pruned = LayerKvCache::new();
        let mut pruned_out = Vec::new();
        for (pos, &t) in tokens.iter().enumerate() {
            if pos == tokens.len() - 1 {
                pruned.evict(2);
            }
            pruned_out = attend(w.embed(t), pos, &mut pruned, &w.layers[0], &cfg).output;
        }
        let diff = veda_tensor::ops::max_abs_diff(&full_out, &pruned_out);
        assert!(diff > 1e-6, "eviction must perturb the output, diff {diff}");
    }

    #[test]
    fn attention_sink_emerges_on_bos() {
        // With the structured weights, later queries put above-uniform mass
        // on position 0 when the sequence starts with BOS (token 0).
        let (cfg, w, mut cache) = setup();
        let seq = [0usize, 17, 33, 21, 9, 41, 25, 13];
        let mut sink_mass = 0.0;
        let mut steps = 0;
        for (pos, &t) in seq.iter().enumerate() {
            let out = attend(w.embed(t), pos, &mut cache, &w.layers[0], &cfg);
            if pos >= 4 {
                for s in &out.head_scores {
                    sink_mass += s[0];
                    steps += 1;
                }
            }
        }
        let avg = sink_mass / steps as f32;
        let uniform = 1.0 / 6.0; // average cache length in the measured span
        assert!(avg > uniform, "sink mass {avg} should exceed uniform {uniform}");
    }
}

//! Per-layer KV cache in the uniform `(l, d)` storage format.
//!
//! Keys and values are stored row-per-token — exactly the layout VEDA keeps
//! in HBM so that both `q × Kᵀ` (inner product over rows) and `s' × V`
//! (outer product over rows) touch memory sequentially and no transpose is
//! ever materialized.

use veda_tensor::Matrix;

/// KV cache of one attention layer: all heads concatenated along the
/// feature dimension (`d_model` columns), one row per resident token.
#[derive(Debug, Clone, Default)]
pub struct LayerKvCache {
    keys: Matrix,
    values: Matrix,
    /// Absolute token position of each resident row.
    positions: Vec<usize>,
}

impl LayerKvCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident tokens.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Appends the key/value vectors of the token at absolute `position`.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` widths disagree with existing rows.
    pub fn append(&mut self, position: usize, k: &[f32], v: &[f32]) {
        self.keys.push_row(k).expect("key width mismatch");
        self.values.push_row(v).expect("value width mismatch");
        self.positions.push(position);
    }

    /// Removes the resident entry at cache slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn evict(&mut self, slot: usize) {
        assert!(slot < self.len(), "evict slot {slot} out of bounds ({})", self.len());
        self.keys.remove_row(slot);
        self.values.remove_row(slot);
        self.positions.remove(slot);
    }

    /// Removes several resident entries in one stable compaction pass —
    /// O(l·d) total instead of O(l·d) *per eviction* — used when multiple
    /// evictions land in one tick (budget shrink). Surviving rows keep
    /// their order, so the result is bit-identical to calling
    /// [`LayerKvCache::evict`] per slot.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_slots` is not strictly ascending or any slot is
    /// out of bounds.
    pub fn evict_many(&mut self, sorted_slots: &[usize]) {
        if sorted_slots.is_empty() {
            return;
        }
        self.keys.remove_rows(sorted_slots);
        self.values.remove_rows(sorted_slots);
        let mut next_victim = 0;
        let mut slot = 0;
        self.positions.retain(|_| {
            let evict = next_victim < sorted_slots.len() && sorted_slots[next_victim] == slot;
            if evict {
                next_victim += 1;
            }
            slot += 1;
            !evict
        });
    }

    /// Reserves storage for `tokens` total resident rows of `width`
    /// features, so [`LayerKvCache::append`] never reallocates while the
    /// cache grows to its working size (wired to prompt length +
    /// generation budget at request admission).
    pub fn reserve(&mut self, tokens: usize, width: usize) {
        self.keys.reserve_rows(tokens, width);
        self.values.reserve_rows(tokens, width);
        if tokens > self.positions.len() {
            self.positions.reserve(tokens - self.positions.len());
        }
    }

    /// The key matrix `(l, d)`.
    pub fn keys(&self) -> &Matrix {
        &self.keys
    }

    /// The value matrix `(l, d)`.
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Absolute token positions of resident rows, oldest first.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Bytes this cache occupies in FP16 off-chip storage.
    pub fn fp16_bytes(&self) -> usize {
        veda_tensor::fp16::fp16_bytes(self.keys.as_slice().len() + self.values.as_slice().len())
    }

    /// Clears all residents.
    pub fn clear(&mut self) {
        self.keys = Matrix::default();
        self.values = Matrix::default();
        self.positions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_rows() {
        let mut c = LayerKvCache::new();
        c.append(0, &[1.0, 2.0], &[3.0, 4.0]);
        c.append(1, &[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys().row(1), &[5.0, 6.0]);
        assert_eq!(c.values().row(0), &[3.0, 4.0]);
        assert_eq!(c.positions(), &[0, 1]);
    }

    #[test]
    fn evict_removes_matching_rows_everywhere() {
        let mut c = LayerKvCache::new();
        for i in 0..4 {
            c.append(i, &[i as f32, 0.0], &[0.0, i as f32]);
        }
        c.evict(1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.positions(), &[0, 2, 3]);
        assert_eq!(c.keys().row(1), &[2.0, 0.0]);
        assert_eq!(c.values().row(1), &[0.0, 2.0]);
    }

    #[test]
    fn evict_many_matches_sequential_evictions() {
        let build = || {
            let mut c = LayerKvCache::new();
            for i in 0..6 {
                c.append(i, &[i as f32, 1.0], &[2.0, i as f32]);
            }
            c
        };
        for victims in [vec![], vec![0], vec![5], vec![1, 3, 4], vec![0, 1, 2, 3, 4, 5]] {
            let mut sequential = build();
            for &v in victims.iter().rev() {
                sequential.evict(v);
            }
            let mut batch = build();
            batch.evict_many(&victims);
            assert_eq!(batch.len(), sequential.len(), "victims {victims:?}");
            assert_eq!(batch.positions(), sequential.positions(), "victims {victims:?}");
            assert_eq!(batch.keys(), sequential.keys(), "victims {victims:?}");
            assert_eq!(batch.values(), sequential.values(), "victims {victims:?}");
        }
    }

    #[test]
    fn reserve_prevents_append_reallocation() {
        let mut c = LayerKvCache::new();
        c.reserve(8, 2);
        let keys_buf = c.keys().as_slice().as_ptr();
        for i in 0..8 {
            c.append(i, &[1.0, 2.0], &[3.0, 4.0]);
        }
        assert_eq!(c.keys().as_slice().as_ptr(), keys_buf, "append must not reallocate");
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn fp16_bytes_counts_keys_and_values() {
        let mut c = LayerKvCache::new();
        c.append(0, &[0.0; 8], &[0.0; 8]);
        assert_eq!(c.fp16_bytes(), 32);
    }

    #[test]
    fn clear_empties() {
        let mut c = LayerKvCache::new();
        c.append(0, &[1.0], &[2.0]);
        c.clear();
        assert!(c.is_empty());
        // Width resets too: a different width may be appended after clear.
        c.append(5, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn evict_out_of_bounds_panics() {
        let mut c = LayerKvCache::new();
        c.append(0, &[1.0], &[1.0]);
        c.evict(1);
    }
}

//! Per-layer KV cache in the uniform `(l, d)` storage format.
//!
//! Keys and values are stored row-per-token — exactly the layout VEDA keeps
//! in HBM so that both `q × Kᵀ` (inner product over rows) and `s' × V`
//! (outer product over rows) touch memory sequentially and no transpose is
//! ever materialized.
//!
//! ## Shared prefix spans
//!
//! A cache seeded from a prefix-cache entry ([`LayerKvCache::seed_from`])
//! marks its leading rows as a **shared span**: the bytes are resident in
//! HBM once, inside the cache entry, and this sequence merely references
//! them, so [`LayerKvCache::fp16_bytes`] (the *privately owned* footprint)
//! excludes them. The span is copy-on-evict: the first eviction that
//! targets a slot inside it privatizes the whole span (models deep-copying
//! the referenced rows before mutating them), flipping its bytes into the
//! owned account. Appends only ever land after the span, so the marker
//! never moves otherwise.

use veda_tensor::Matrix;

/// KV cache of one attention layer: all heads concatenated along the
/// feature dimension (`d_model` columns), one row per resident token.
#[derive(Debug, Clone, Default)]
pub struct LayerKvCache {
    keys: Matrix,
    values: Matrix,
    /// Absolute token position of each resident row.
    positions: Vec<usize>,
    /// Leading rows referenced from a shared prefix-cache entry rather
    /// than privately owned (see the [module docs](self)).
    shared_len: usize,
}

impl LayerKvCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident tokens.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Appends the key/value vectors of the token at absolute `position`.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` widths disagree with existing rows.
    pub fn append(&mut self, position: usize, k: &[f32], v: &[f32]) {
        self.keys.push_row(k).expect("key width mismatch");
        self.values.push_row(v).expect("value width mismatch");
        self.positions.push(position);
    }

    /// Removes the resident entry at cache slot `slot`. Evicting inside a
    /// shared prefix span first privatizes it (see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn evict(&mut self, slot: usize) {
        assert!(slot < self.len(), "evict slot {slot} out of bounds ({})", self.len());
        if slot < self.shared_len {
            self.shared_len = 0;
        }
        self.keys.remove_row(slot);
        self.values.remove_row(slot);
        self.positions.remove(slot);
    }

    /// Removes several resident entries in one stable compaction pass —
    /// O(l·d) total instead of O(l·d) *per eviction* — used when multiple
    /// evictions land in one tick (budget shrink). Surviving rows keep
    /// their order, so the result is bit-identical to calling
    /// [`LayerKvCache::evict`] per slot.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_slots` is not strictly ascending or any slot is
    /// out of bounds.
    pub fn evict_many(&mut self, sorted_slots: &[usize]) {
        if sorted_slots.is_empty() {
            return;
        }
        if sorted_slots[0] < self.shared_len {
            // Copy-on-evict: mutating the shared span privatizes it.
            self.shared_len = 0;
        }
        self.keys.remove_rows(sorted_slots);
        self.values.remove_rows(sorted_slots);
        let mut next_victim = 0;
        let mut slot = 0;
        self.positions.retain(|_| {
            let evict = next_victim < sorted_slots.len() && sorted_slots[next_victim] == slot;
            if evict {
                next_victim += 1;
            }
            slot += 1;
            !evict
        });
    }

    /// Reserves storage for `tokens` total resident rows of `width`
    /// features, so [`LayerKvCache::append`] never reallocates while the
    /// cache grows to its working size (wired to prompt length +
    /// generation budget at request admission).
    pub fn reserve(&mut self, tokens: usize, width: usize) {
        self.keys.reserve_rows(tokens, width);
        self.values.reserve_rows(tokens, width);
        if tokens > self.positions.len() {
            self.positions.reserve(tokens - self.positions.len());
        }
    }

    /// The key matrix `(l, d)`.
    pub fn keys(&self) -> &Matrix {
        &self.keys
    }

    /// The value matrix `(l, d)`.
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Absolute token positions of resident rows, oldest first.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Seeds an empty cache with the first `rows` resident rows of
    /// `source`, marking them as a shared span: the bytes stay resident in
    /// `source` (a prefix-cache entry) and this cache references them, so
    /// they are excluded from [`LayerKvCache::fp16_bytes`] until an
    /// eviction privatizes the span. The row values are copied so the
    /// attention kernels see one contiguous `(l, d)` matrix — the sharing
    /// is an HBM-residency accounting model, not a pointer graph.
    ///
    /// # Panics
    ///
    /// Panics if the cache is non-empty or `rows > source.len()`.
    pub fn seed_from(&mut self, source: &LayerKvCache, rows: usize) {
        assert!(self.is_empty(), "seed_from requires an empty cache");
        assert!(rows <= source.len(), "seed rows {rows} exceed source length {}", source.len());
        // One up-front reservation so the row copies never reallocate
        // (a no-op when the engine already reserved the session's peak).
        self.reserve(rows, source.keys.cols());
        for row in 0..rows {
            self.append(source.positions[row], source.keys.row(row), source.values.row(row));
        }
        self.shared_len = rows;
    }

    /// Leading rows referenced from a shared prefix span (0 when the
    /// cache owns every row).
    pub fn shared_len(&self) -> usize {
        self.shared_len
    }

    /// Converts any shared span into privately owned rows (accounting
    /// only; the row data is already materialized). Used when a seeded
    /// copy becomes a residency root of its own — e.g. a prefix-cache
    /// entry built from a session that itself started from a shorter
    /// cached prefix.
    pub fn clear_shared_marker(&mut self) {
        self.shared_len = 0;
    }

    /// Bytes this cache *privately owns* in FP16 off-chip storage —
    /// excludes the shared prefix span, whose bytes are resident once in
    /// the prefix-cache entry they came from.
    pub fn fp16_bytes(&self) -> usize {
        let owned_rows = self.len() - self.shared_len;
        veda_tensor::fp16::fp16_bytes(owned_rows * self.keys.cols() * 2)
    }

    /// FP16 bytes of the shared prefix span this cache references (0 when
    /// nothing is shared).
    pub fn shared_fp16_bytes(&self) -> usize {
        veda_tensor::fp16::fp16_bytes(self.shared_len * self.keys.cols() * 2)
    }

    /// Total FP16 bytes of all resident rows, owned and shared — what the
    /// attention kernels stream per decode step regardless of who owns the
    /// bytes.
    pub fn total_fp16_bytes(&self) -> usize {
        veda_tensor::fp16::fp16_bytes(self.keys.as_slice().len() + self.values.as_slice().len())
    }

    /// Clears all residents.
    pub fn clear(&mut self) {
        self.keys = Matrix::default();
        self.values = Matrix::default();
        self.positions.clear();
        self.shared_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_rows() {
        let mut c = LayerKvCache::new();
        c.append(0, &[1.0, 2.0], &[3.0, 4.0]);
        c.append(1, &[5.0, 6.0], &[7.0, 8.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys().row(1), &[5.0, 6.0]);
        assert_eq!(c.values().row(0), &[3.0, 4.0]);
        assert_eq!(c.positions(), &[0, 1]);
    }

    #[test]
    fn evict_removes_matching_rows_everywhere() {
        let mut c = LayerKvCache::new();
        for i in 0..4 {
            c.append(i, &[i as f32, 0.0], &[0.0, i as f32]);
        }
        c.evict(1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.positions(), &[0, 2, 3]);
        assert_eq!(c.keys().row(1), &[2.0, 0.0]);
        assert_eq!(c.values().row(1), &[0.0, 2.0]);
    }

    #[test]
    fn evict_many_matches_sequential_evictions() {
        let build = || {
            let mut c = LayerKvCache::new();
            for i in 0..6 {
                c.append(i, &[i as f32, 1.0], &[2.0, i as f32]);
            }
            c
        };
        for victims in [vec![], vec![0], vec![5], vec![1, 3, 4], vec![0, 1, 2, 3, 4, 5]] {
            let mut sequential = build();
            for &v in victims.iter().rev() {
                sequential.evict(v);
            }
            let mut batch = build();
            batch.evict_many(&victims);
            assert_eq!(batch.len(), sequential.len(), "victims {victims:?}");
            assert_eq!(batch.positions(), sequential.positions(), "victims {victims:?}");
            assert_eq!(batch.keys(), sequential.keys(), "victims {victims:?}");
            assert_eq!(batch.values(), sequential.values(), "victims {victims:?}");
        }
    }

    #[test]
    fn reserve_prevents_append_reallocation() {
        let mut c = LayerKvCache::new();
        c.reserve(8, 2);
        let keys_buf = c.keys().as_slice().as_ptr();
        for i in 0..8 {
            c.append(i, &[1.0, 2.0], &[3.0, 4.0]);
        }
        assert_eq!(c.keys().as_slice().as_ptr(), keys_buf, "append must not reallocate");
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn fp16_bytes_counts_keys_and_values() {
        let mut c = LayerKvCache::new();
        c.append(0, &[0.0; 8], &[0.0; 8]);
        assert_eq!(c.fp16_bytes(), 32);
    }

    #[test]
    fn clear_empties() {
        let mut c = LayerKvCache::new();
        c.append(0, &[1.0], &[2.0]);
        c.clear();
        assert!(c.is_empty());
        // Width resets too: a different width may be appended after clear.
        c.append(5, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn evict_out_of_bounds_panics() {
        let mut c = LayerKvCache::new();
        c.append(0, &[1.0], &[1.0]);
        c.evict(1);
    }

    fn source(rows: usize) -> LayerKvCache {
        let mut c = LayerKvCache::new();
        for i in 0..rows {
            c.append(i, &[i as f32, 1.0], &[2.0, i as f32]);
        }
        c
    }

    #[test]
    fn seed_from_copies_rows_and_marks_them_shared() {
        let src = source(4);
        let mut c = LayerKvCache::new();
        c.seed_from(&src, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.shared_len(), 3);
        assert_eq!(c.positions(), &[0, 1, 2]);
        assert_eq!(c.keys().row(2), src.keys().row(2));
        assert_eq!(c.values().row(1), src.values().row(1));
        // Shared rows are excluded from the owned footprint but present in
        // the total (what attention streams).
        assert_eq!(c.fp16_bytes(), 0);
        assert_eq!(c.shared_fp16_bytes(), 3 * 2 * 2 * 2);
        assert_eq!(c.total_fp16_bytes(), c.shared_fp16_bytes());
        // Appends after the span are privately owned.
        c.append(3, &[9.0, 9.0], &[9.0, 9.0]);
        assert_eq!(c.shared_len(), 3);
        assert_eq!(c.fp16_bytes(), 2 * 2 * 2);
        assert_eq!(c.total_fp16_bytes(), c.fp16_bytes() + c.shared_fp16_bytes());
    }

    #[test]
    fn evicting_inside_the_shared_span_privatizes_it() {
        let src = source(4);
        let mut c = LayerKvCache::new();
        c.seed_from(&src, 4);
        c.append(4, &[5.0, 5.0], &[5.0, 5.0]);
        // Evicting past the span leaves the marker alone…
        c.evict(4);
        assert_eq!(c.shared_len(), 4);
        c.append(4, &[5.0, 5.0], &[5.0, 5.0]);
        c.evict_many(&[4]);
        assert_eq!(c.shared_len(), 4);
        // …but the first eviction inside it deep-copies (privatizes) the
        // whole span.
        c.evict(1);
        assert_eq!(c.shared_len(), 0);
        assert_eq!(c.fp16_bytes(), c.total_fp16_bytes());
    }

    #[test]
    fn evict_many_inside_the_shared_span_privatizes_it() {
        let src = source(4);
        let mut c = LayerKvCache::new();
        c.seed_from(&src, 2);
        c.append(2, &[5.0, 5.0], &[5.0, 5.0]);
        c.evict_many(&[0, 2]);
        assert_eq!(c.shared_len(), 0);
        assert_eq!(c.positions(), &[1]);
    }

    #[test]
    fn clear_resets_the_shared_marker() {
        let src = source(2);
        let mut c = LayerKvCache::new();
        c.seed_from(&src, 2);
        c.clear();
        assert_eq!(c.shared_len(), 0);
        assert_eq!(c.shared_fp16_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "empty cache")]
    fn seed_from_rejects_non_empty_caches() {
        let src = source(2);
        let mut c = source(1);
        c.seed_from(&src, 2);
    }
}

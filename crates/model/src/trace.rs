//! Attention-trace recording and synthetic trace generation.
//!
//! Traces decouple policy experiments from model execution: a trace is, per
//! step, the per-head post-softmax score vector of the new token over all
//! *absolute* previous positions. [`SyntheticTraceConfig`] generates traces
//! with controllable sink / heavy-hitter / recency / outlier structure —
//! the fast path for policy unit tests and ablations.

use rand::Rng;
use veda_tensor::softmax::softmax;

/// A recorded attention trace: `steps[i][h][j]` is head `h`'s score from
/// token `i` to absolute position `j ≤ i`.
#[derive(Debug, Clone, Default)]
pub struct AttentionTrace {
    steps: Vec<Vec<Vec<f32>>>,
}

impl AttentionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one step's per-head scores.
    ///
    /// # Panics
    ///
    /// Panics if score lengths are not `steps_so_far + 1`.
    pub fn push_step(&mut self, head_scores: Vec<Vec<f32>>) {
        let expected = self.steps.len() + 1;
        for h in &head_scores {
            assert_eq!(h.len(), expected, "trace step has wrong score length");
        }
        self.steps.push(head_scores);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps are recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Per-head scores of step `i`.
    pub fn step(&self, i: usize) -> &[Vec<f32>] {
        &self.steps[i]
    }

    /// Iterates over steps.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Vec<f32>>> {
        self.steps.iter()
    }

    /// Measures attention sparsity: the average (over steps ≥ `skip` and
    /// heads) fraction of positions holding the *smallest* scores that
    /// together account for at most `1 − mass` of the attention. A value of
    /// 0.95 at `mass = 0.9` means 95 % of positions can be dropped while
    /// keeping 90 % of the attention mass — the sparsity claim of Section I.
    pub fn sparsity(&self, mass: f32, skip: usize) -> f32 {
        let mut total = 0.0;
        let mut count = 0usize;
        for step in self.steps.iter().skip(skip) {
            for head in step {
                if head.len() < 4 {
                    continue;
                }
                let mut sorted = head.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN scores"));
                let mut acc = 0.0;
                let mut needed = 0usize;
                for &s in &sorted {
                    if acc >= mass {
                        break;
                    }
                    acc += s;
                    needed += 1;
                }
                total += 1.0 - needed as f32 / head.len() as f32;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f32
        }
    }
}

/// Parameters of the synthetic attention-trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTraceConfig {
    /// Number of steps (tokens) to generate.
    pub steps: usize,
    /// Number of heads.
    pub heads: usize,
    /// Logit bonus of position 0 (attention sink).
    pub sink_gain: f32,
    /// Fraction of positions that are heavy hitters.
    pub heavy_fraction: f32,
    /// Logit bonus of heavy-hitter positions.
    pub heavy_gain: f32,
    /// Recency timescale (logit −= distance/tau).
    pub recency_tau: f32,
    /// Per-step probability that a random position gets a one-off outlier
    /// logit spike (the outlier-bias stressor).
    pub outlier_prob: f32,
    /// Outlier spike magnitude.
    pub outlier_gain: f32,
    /// i.i.d. logit noise standard deviation.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticTraceConfig {
    fn default() -> Self {
        Self {
            steps: 256,
            heads: 4,
            sink_gain: 3.0,
            heavy_fraction: 0.06,
            heavy_gain: 2.5,
            recency_tau: 48.0,
            outlier_prob: 0.05,
            outlier_gain: 8.0,
            noise: 0.5,
            seed: 23,
        }
    }
}

impl SyntheticTraceConfig {
    /// Generates the trace.
    pub fn generate(&self) -> AttentionTrace {
        let mut rng = veda_tensor::rng::seeded(self.seed);
        let heavy: Vec<bool> = (0..self.steps).map(|_| rng.gen::<f32>() < self.heavy_fraction).collect();
        let mut trace = AttentionTrace::new();
        for i in 0..self.steps {
            let mut heads = Vec::with_capacity(self.heads);
            for _ in 0..self.heads {
                let mut logits: Vec<f32> = (0..=i)
                    .map(|j| {
                        let mut l = 0.0;
                        if j == 0 {
                            l += self.sink_gain;
                        }
                        if heavy[j] {
                            l += self.heavy_gain;
                        }
                        l -= (i - j) as f32 / self.recency_tau;
                        l + veda_tensor::rng::standard_normal(&mut rng) * self.noise
                    })
                    .collect();
                if i > 0 && rng.gen::<f32>() < self.outlier_prob {
                    let j = rng.gen_range(0..=i);
                    logits[j] += self.outlier_gain;
                }
                heads.push(softmax(&logits));
            }
            trace.push_step(heads);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_has_expected_shape() {
        let cfg = SyntheticTraceConfig { steps: 32, heads: 2, ..SyntheticTraceConfig::default() };
        let t = cfg.generate();
        assert_eq!(t.len(), 32);
        assert_eq!(t.step(10).len(), 2);
        assert_eq!(t.step(10)[0].len(), 11);
    }

    #[test]
    fn scores_are_distributions() {
        let t = SyntheticTraceConfig { steps: 64, ..SyntheticTraceConfig::default() }.generate();
        for step in t.iter() {
            for head in step {
                let sum: f32 = head.iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn sink_receives_above_uniform_mass() {
        let t = SyntheticTraceConfig { steps: 128, ..SyntheticTraceConfig::default() }.generate();
        let mut sink = 0.0;
        let mut n = 0;
        for step in t.iter().skip(32) {
            for head in step {
                sink += head[0] * head.len() as f32; // ratio to uniform
                n += 1;
            }
        }
        assert!(sink / n as f32 > 2.0, "sink/uniform ratio {}", sink / n as f32);
    }

    #[test]
    fn long_traces_are_sparse_like_llms() {
        // Section I: attention sparsity approaching 95 % at long contexts.
        let t = SyntheticTraceConfig { steps: 512, ..SyntheticTraceConfig::default() }.generate();
        let s = t.sparsity(0.9, 256);
        assert!(s > 0.7, "sparsity {s}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticTraceConfig { steps: 16, ..SyntheticTraceConfig::default() };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.step(15), b.step(15));
    }

    #[test]
    #[should_panic(expected = "wrong score length")]
    fn push_step_validates_length() {
        let mut t = AttentionTrace::new();
        t.push_step(vec![vec![0.5, 0.5]]);
    }

    #[test]
    fn sparsity_of_empty_trace_is_zero() {
        assert_eq!(AttentionTrace::new().sparsity(0.9, 0), 0.0);
    }
}

//! Pins the zero-allocation guarantee of the scratch decode path: once a
//! session's buffers are warm and its KV cache is pre-reserved, a
//! steady-state decode token performs **zero** heap allocations inside
//! `TransformerModel::forward_with_scratch`.
//!
//! This file must stay a single-test binary: the counting `#[global_allocator]`
//! is process-wide, and a concurrently running sibling test would perturb
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use veda_model::{ModelConfig, TransformerModel};

/// Counts every allocation and reallocation passed to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_decode_performs_zero_heap_allocations() {
    let cfg = ModelConfig::tiny();
    let model = TransformerModel::new(cfg.clone());
    let mut state = model.new_state();
    let budget = 8usize;
    // Reserve for the cap (+1 for the append-then-evict overshoot) so
    // steady-state `push_row` never grows the backing storage.
    state.reserve(budget + 1, cfg.d_model);
    let mut scratch = model.new_scratch(budget + 1);

    let token = |step: usize| (step * 7 + 1) % cfg.vocab_size;

    // Warm-up: fill the cache to the budget and let every scratch buffer
    // reach its working capacity.
    for pos in 0..budget + 4 {
        model.forward_with_scratch(&mut state, token(pos), pos, &mut scratch);
        while state.cache_len() > budget {
            // Keep the sink: evict the slot after the reserved prefix, as
            // a sliding-window policy would.
            for layer in 0..state.n_layers() {
                state.evict_many(layer, &[1]);
            }
        }
    }

    // Steady state: decode must not touch the allocator at all.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for step in 0..64 {
        let pos = budget + 4 + step;
        model.forward_with_scratch(&mut state, token(pos), pos, &mut scratch);
        for layer in 0..state.n_layers() {
            state.evict_many(layer, &[1]);
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "steady-state decode allocated {} time(s) over 64 tokens", after - before);
}

//! Exponentially-decayed score eviction — an extra baseline between H2O's
//! unbounded accumulation and a pure recency heuristic.
//!
//! Each step the per-slot importance is `imp = decay · imp + score`; the
//! minimum-importance slot is evicted. With `decay → 1` this approaches
//! H2O; with `decay → 0` it approaches evict-min-of-last-step.

use crate::policy::EvictionPolicy;
use crate::score::ScoreView;

/// Decayed-score eviction baseline.
///
/// ```
/// use veda_eviction::{DecayedScorePolicy, EvictionPolicy};
/// let mut p = DecayedScorePolicy::new(0.5);
/// for _ in 0..2 { p.on_append(); }
/// p.observe(veda_eviction::ScoreView::single(&[0.9, 0.1]));
/// assert_eq!(p.select_victim(2), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct DecayedScorePolicy {
    decay: f32,
    importance: Vec<f32>,
}

impl DecayedScorePolicy {
    /// Creates a policy with decay factor in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `[0, 1]`.
    pub fn new(decay: f32) -> Self {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0,1], got {decay}");
        Self { decay, importance: Vec::new() }
    }

    /// The decay factor.
    pub fn decay(&self) -> f32 {
        self.decay
    }

    /// Current per-slot importance.
    pub fn importance(&self) -> &[f32] {
        &self.importance
    }
}

impl EvictionPolicy for DecayedScorePolicy {
    fn name(&self) -> &'static str {
        "decayed_score"
    }

    fn on_append(&mut self) {
        self.importance.push(0.0);
    }

    fn observe(&mut self, scores: ScoreView<'_>) {
        let n_heads = scores.n_heads().max(1) as f32;
        for imp in self.importance.iter_mut() {
            *imp *= self.decay;
        }
        for head in scores.heads() {
            debug_assert_eq!(head.len(), self.importance.len(), "cache/policy desync");
            for (imp, &s) in self.importance.iter_mut().zip(head.iter()) {
                *imp += s / n_heads;
            }
        }
    }

    fn select_victim(&mut self, cache_len: usize) -> Option<usize> {
        debug_assert_eq!(cache_len, self.importance.len(), "cache/policy desync");
        veda_tensor::stats::argmin(&self.importance[..cache_len])
    }

    fn on_evict(&mut self, idx: usize) {
        self.importance.remove(idx);
    }

    fn reset(&mut self) {
        self.importance.clear();
    }

    fn tracked_len(&self) -> usize {
        self.importance.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_discounts_old_scores() {
        let mut p = DecayedScorePolicy::new(0.5);
        for _ in 0..2 {
            p.on_append();
        }
        p.observe(ScoreView::single(&[1.0, 0.0]));
        p.observe(ScoreView::single(&[0.0, 0.6]));
        // imp0 = 1.0*0.5 = 0.5; imp1 = 0.6 => evict slot 0.
        assert_eq!(p.select_victim(2), Some(0));
    }

    #[test]
    fn zero_decay_is_last_step_only() {
        let mut p = DecayedScorePolicy::new(0.0);
        for _ in 0..2 {
            p.on_append();
        }
        p.observe(ScoreView::single(&[10.0, 0.0]));
        p.observe(ScoreView::single(&[0.1, 0.2]));
        assert_eq!(p.select_victim(2), Some(0));
    }

    #[test]
    fn full_decay_matches_h2o_accumulation() {
        let mut d = DecayedScorePolicy::new(1.0);
        let mut h = crate::H2oPolicy::new();
        for _ in 0..3 {
            d.on_append();
            h.on_append();
        }
        for obs in [[0.2f32, 0.3, 0.5], [0.6, 0.3, 0.1], [0.1, 0.1, 0.8]] {
            d.observe(ScoreView::single(&obs));
            h.observe(ScoreView::single(&obs));
        }
        assert_eq!(d.select_victim(3), h.select_victim(3));
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn invalid_decay_panics() {
        DecayedScorePolicy::new(1.5);
    }
}

//! The VEDA voting-based eviction algorithm (Section III, Fig. 3).
//!
//! Every generated token is a *voter*. Alongside the attention-score vector
//! `s'(i)` of step `i`, an adaptive threshold
//!
//! ```text
//! T(i) = a · mean(s'(i)) − b · σ(s'(i))
//! ```
//!
//! is computed. Every cache position whose score falls below `T(i)` receives
//! one vote; if the threshold is not positive the single minimum-score
//! position receives the vote instead. When the cache exceeds its budget,
//! the position with the highest vote count is evicted (earliest position on
//! ties). The first `reserved_len` steps cast no votes, and the first
//! `reserved_len` positions are never evicted — the attention-sink
//! reservation that lower-bounds the cache.
//!
//! The three biases of accumulation-based eviction are addressed by
//! construction:
//!
//! * **item-count bias** — recent positions have had fewer chances to be
//!   voted against, so they are *less* likely to be evicted, not more;
//! * **criteria bias** — the threshold adapts to each step's own score
//!   distribution (rows with few items have higher means and thus higher
//!   thresholds);
//! * **outlier bias** — a vote is worth 1 regardless of score magnitude.

use crate::policy::EvictionPolicy;
use crate::score::ScoreView;

/// Hyper-parameters of the voting algorithm.
///
/// Defaults follow the paper: `a = 1.0`, `b = 0.2`, reserved length 32,
/// 16-bit saturating vote counters (the hardware vote buffer is
/// 4096 × 16 bit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VotingConfig {
    /// Mean coefficient `a` of the threshold.
    pub a: f32,
    /// Standard-deviation coefficient `b` of the threshold.
    pub b: f32,
    /// Reserved prefix length `R`: steps before which no voting occurs and
    /// positions that are never evicted (attention sink).
    pub reserved_len: usize,
    /// Whether votes are accumulated layer-wise across heads (paper
    /// behaviour) or from the head-averaged score vector only. `true`
    /// means each head votes independently and votes are summed.
    pub per_head_votes: bool,
}

impl Default for VotingConfig {
    fn default() -> Self {
        // Section V: "Voting operates layer-wise, meaning that all heads
        // are aggregated and averaged" — one vote round per step on the
        // head-averaged score vector.
        Self { a: 1.0, b: 0.2, reserved_len: 32, per_head_votes: false }
    }
}

impl VotingConfig {
    /// Paper defaults with a custom reserved length.
    pub fn with_reserved_len(reserved_len: usize) -> Self {
        Self { reserved_len, ..Self::default() }
    }

    /// Paper defaults with custom threshold coefficients.
    pub fn with_coefficients(a: f32, b: f32) -> Self {
        Self { a, b, ..Self::default() }
    }

    /// The adaptive threshold `T = a·mean − b·σ` for one score vector.
    pub fn threshold(&self, scores: &[f32]) -> f32 {
        let mut m = veda_tensor::norm::StreamingMoments::new();
        for &s in scores {
            m.push(s);
        }
        m.voting_threshold(self.a, self.b)
    }
}

/// Votes cast by a single score vector under a threshold: the list of voted
/// slots. Implements the `T ≤ 0 → vote for the minimum` fallback.
pub fn votes_for(scores: &[f32], threshold: f32) -> Vec<usize> {
    if scores.is_empty() {
        return Vec::new();
    }
    if threshold > 0.0 {
        let below: Vec<usize> =
            scores.iter().enumerate().filter(|(_, &s)| s < threshold).map(|(j, _)| j).collect();
        if !below.is_empty() {
            return below;
        }
    }
    // Threshold non-positive (or nothing below it): vote for the minimum.
    vec![veda_tensor::stats::argmin(scores).expect("non-empty scores")]
}

/// The voting-based eviction policy.
///
/// See the [module documentation](self) for the algorithm and
/// [`crate::policy`] for the driving protocol.
#[derive(Debug, Clone)]
pub struct VotingPolicy {
    config: VotingConfig,
    /// Saturating per-slot vote counters (hardware: 16-bit buffer).
    votes: Vec<u16>,
    /// Number of observe() calls so far (the step index `i` of Fig. 3).
    steps_observed: usize,
    /// Reusable head-average buffer: steady-state observation allocates
    /// nothing once its capacity is warm.
    avg_scratch: Vec<f32>,
}

impl VotingPolicy {
    /// Creates a policy with the given configuration.
    pub fn new(config: VotingConfig) -> Self {
        Self { config, votes: Vec::new(), steps_observed: 0, avg_scratch: Vec::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> &VotingConfig {
        &self.config
    }

    /// Current vote counts per cache slot (diagnostic / hardware mirror).
    pub fn vote_counts(&self) -> &[u16] {
        &self.votes
    }

    /// Number of observations processed.
    pub fn steps_observed(&self) -> usize {
        self.steps_observed
    }

    fn cast_votes(&mut self, scores: &[f32]) {
        // Reserved positions take no part in voting: they can never be
        // evicted, so votes for them would be discarded — worse, the
        // minimum-score fallback would waste its single vote on a reserved
        // slot and leave the evictable region vote-free.
        let lo = self.config.reserved_len.min(scores.len());
        let votable = &scores[lo..];
        if votable.is_empty() {
            return;
        }
        let threshold = self.config.threshold(scores);
        for j in votes_for(votable, threshold) {
            let slot = lo + j;
            if slot < self.votes.len() {
                self.votes[slot] = self.votes[slot].saturating_add(1);
            }
        }
    }
}

impl EvictionPolicy for VotingPolicy {
    fn name(&self) -> &'static str {
        "voting"
    }

    fn on_append(&mut self) {
        self.votes.push(0);
    }

    fn observe(&mut self, scores: ScoreView<'_>) {
        self.steps_observed += 1;
        // Reserved stage: the first R steps cast no votes (Fig. 3 line
        // "if (i < R) break").
        if self.steps_observed <= self.config.reserved_len {
            return;
        }
        if self.config.per_head_votes {
            for head in scores.heads() {
                self.cast_votes(head);
            }
        } else {
            // Take the scratch out so `cast_votes` can borrow `self`
            // mutably; moving a Vec does not allocate.
            let mut avg = std::mem::take(&mut self.avg_scratch);
            scores.average_into(&mut avg);
            self.cast_votes(&avg);
            self.avg_scratch = avg;
        }
    }

    fn select_victim(&mut self, cache_len: usize) -> Option<usize> {
        debug_assert_eq!(cache_len, self.votes.len(), "cache/policy desync");
        let lo = self.config.reserved_len.min(cache_len);
        if lo >= cache_len {
            return None;
        }
        // Highest vote count wins; earliest position on ties (Section III:
        // "the earliest position is selected").
        let mut best = lo;
        for j in lo + 1..cache_len {
            if self.votes[j] > self.votes[best] {
                best = j;
            }
        }
        Some(best)
    }

    fn on_evict(&mut self, idx: usize) {
        self.votes.remove(idx);
    }

    fn reset(&mut self) {
        self.votes.clear();
        self.steps_observed = 0;
    }

    fn tracked_len(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(policy: &mut VotingPolicy, heads: &[Vec<f32>]) {
        crate::score::observe_heads(policy, heads);
    }

    #[test]
    fn threshold_is_mean_minus_scaled_sigma() {
        let cfg = VotingConfig::with_coefficients(1.0, 0.5);
        // mean = 0.25, sigma of [0.1,0.4] around 0.25 = 0.15
        let t = cfg.threshold(&[0.1, 0.4]);
        assert!((t - (0.25 - 0.5 * 0.15)).abs() < 1e-5);
    }

    #[test]
    fn uniform_scores_vote_for_minimum_only() {
        // Uniform distribution: sigma = 0, T = mean; nothing strictly below
        // the mean except... nothing, so the min fallback triggers.
        let votes = votes_for(&[0.25, 0.25, 0.25, 0.25], 0.25);
        assert_eq!(votes, vec![0]);
    }

    #[test]
    fn sparse_scores_vote_for_small_entries() {
        // One dominant score: threshold falls well below it; tiny scores
        // below threshold get voted.
        let scores = [0.9, 0.02, 0.02, 0.06];
        let cfg = VotingConfig::default();
        let t = cfg.threshold(&scores);
        let votes = votes_for(&scores, t);
        assert!(votes.contains(&1) && votes.contains(&2), "votes = {votes:?}, t = {t}");
        assert!(!votes.contains(&0));
    }

    #[test]
    fn negative_threshold_falls_back_to_minimum() {
        let votes = votes_for(&[0.5, 0.1, 0.4], -1.0);
        assert_eq!(votes, vec![1]);
    }

    #[test]
    fn reserved_steps_cast_no_votes() {
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(2));
        for _ in 0..3 {
            p.on_append();
        }
        drive(&mut p, &[vec![0.9, 0.05, 0.05]]);
        drive(&mut p, &[vec![0.9, 0.05, 0.05]]);
        assert!(p.vote_counts().iter().all(|&v| v == 0), "no votes during reserved stage");
        drive(&mut p, &[vec![0.9, 0.05, 0.05]]);
        assert!(p.vote_counts().iter().any(|&v| v > 0), "votes after reserved stage");
    }

    #[test]
    fn reserved_positions_never_evicted() {
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(2));
        for _ in 0..5 {
            p.on_append();
        }
        // Make position 0 maximally voted — it must still not be selected.
        for _ in 0..10 {
            drive(&mut p, &[vec![0.01, 0.01, 0.3, 0.3, 0.38]]);
        }
        let victim = p.select_victim(5).unwrap();
        assert!(victim >= 2, "victim {victim} is inside the reserved prefix");
    }

    #[test]
    fn tie_breaks_to_earliest() {
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(0));
        for _ in 0..3 {
            p.on_append();
        }
        // No observations => all votes zero => earliest slot wins.
        assert_eq!(p.select_victim(3), Some(0));
    }

    #[test]
    fn eviction_compacts_vote_state() {
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(0));
        for _ in 0..4 {
            p.on_append();
        }
        drive(&mut p, &[vec![0.4, 0.01, 0.55, 0.04]]);
        let before = p.vote_counts().to_vec();
        let victim = p.select_victim(4).unwrap();
        p.on_evict(victim);
        assert_eq!(p.tracked_len(), 3);
        let mut expect = before.clone();
        expect.remove(victim);
        assert_eq!(p.vote_counts(), expect.as_slice());
    }

    #[test]
    fn recent_tokens_accumulate_fewer_votes() {
        // Item-count bias check: under i.i.d. sparse scores, early positions
        // can only accumulate votes over more steps than late positions.
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(0));
        p.on_append();
        for step in 1..40 {
            p.on_append();
            let len = step + 1;
            // Low score everywhere except the newest position.
            let mut s = vec![0.5 / (len - 1) as f32; len];
            s[len - 1] = 0.5;
            drive(&mut p, &[s]);
        }
        let votes = p.vote_counts();
        let newest = votes[votes.len() - 1];
        let oldest = votes[0];
        assert!(oldest >= newest, "older positions should have at least as many votes");
    }

    #[test]
    fn select_victim_none_when_everything_reserved() {
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(8));
        for _ in 0..4 {
            p.on_append();
        }
        assert_eq!(p.select_victim(4), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = VotingPolicy::new(VotingConfig::default());
        p.on_append();
        p.observe(ScoreView::single(&[1.0]));
        p.reset();
        assert_eq!(p.tracked_len(), 0);
        assert_eq!(p.steps_observed(), 0);
    }

    #[test]
    fn vote_counts_saturate_at_u16_max() {
        let mut p = VotingPolicy::new(VotingConfig::with_reserved_len(0));
        p.on_append();
        p.on_append();
        p.votes[0] = u16::MAX - 1;
        // Observing sparse scores votes for slot 0 twice (per-head).
        drive(&mut p, &[vec![0.01, 0.99], vec![0.01, 0.99], vec![0.01, 0.99]]);
        assert_eq!(p.vote_counts()[0], u16::MAX);
    }

    #[test]
    fn layerwise_aggregation_option_still_votes() {
        let mut p = VotingPolicy::new(VotingConfig {
            per_head_votes: false,
            reserved_len: 0,
            ..VotingConfig::default()
        });
        for _ in 0..3 {
            p.on_append();
        }
        drive(&mut p, &[vec![0.01, 0.5, 0.49], vec![0.03, 0.48, 0.49]]);
        assert!(p.vote_counts()[0] > 0);
    }
}

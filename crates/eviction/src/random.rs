//! Deterministic pseudo-random eviction baseline.
//!
//! Useful as a statistical floor in quality experiments: any score-driven
//! policy should beat it. Uses an internal SplitMix64 generator so the crate
//! stays dependency-free and the policy is reproducible from its seed.

use crate::policy::EvictionPolicy;
use crate::score::ScoreView;

/// Evicts a uniformly pseudo-random non-sink slot.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    state: u64,
    sink_len: usize,
    len: usize,
}

impl RandomPolicy {
    /// Creates a seeded random policy with no protected sink.
    pub fn new(seed: u64) -> Self {
        Self { state: seed, sink_len: 0, len: 0 }
    }

    /// Creates a seeded random policy protecting the first `sink_len` slots.
    pub fn with_sink(seed: u64, sink_len: usize) -> Self {
        Self { state: seed, sink_len, len: 0 }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl EvictionPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_append(&mut self) {
        self.len += 1;
    }

    fn observe(&mut self, _scores: ScoreView<'_>) {}

    fn select_victim(&mut self, cache_len: usize) -> Option<usize> {
        debug_assert_eq!(cache_len, self.len, "cache/policy desync");
        if cache_len <= self.sink_len {
            return None;
        }
        let span = (cache_len - self.sink_len) as u64;
        Some(self.sink_len + (self.next_u64() % span) as usize)
    }

    fn on_evict(&mut self, _idx: usize) {
        self.len = self.len.saturating_sub(1);
    }

    fn reset(&mut self) {
        self.len = 0;
    }

    fn tracked_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_victims() {
        let mut a = RandomPolicy::new(7);
        let mut b = RandomPolicy::new(7);
        for _ in 0..50 {
            a.on_append();
            b.on_append();
        }
        for _ in 0..10 {
            assert_eq!(a.select_victim(50), b.select_victim(50));
        }
    }

    #[test]
    fn victims_stay_in_range_and_outside_sink() {
        let mut p = RandomPolicy::with_sink(3, 5);
        for _ in 0..20 {
            p.on_append();
        }
        for _ in 0..100 {
            let v = p.select_victim(20).unwrap();
            assert!((5..20).contains(&v));
        }
    }

    #[test]
    fn refuses_when_all_sink() {
        let mut p = RandomPolicy::with_sink(1, 4);
        for _ in 0..3 {
            p.on_append();
        }
        assert_eq!(p.select_victim(3), None);
    }

    #[test]
    fn victims_are_spread_out() {
        let mut p = RandomPolicy::new(42);
        for _ in 0..10 {
            p.on_append();
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(p.select_victim(10).unwrap());
        }
        assert!(seen.len() >= 8, "only {} distinct victims", seen.len());
    }
}

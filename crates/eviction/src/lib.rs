//! # veda-eviction
//!
//! KV cache eviction policies for LLM generation, implementing Section III
//! of the VEDA paper plus every baseline it compares against:
//!
//! * [`VotingPolicy`] — the paper's contribution: each generated token
//!   "votes" for unimportant KV positions using the adaptive threshold
//!   `T(i) = a·mean(s'(i)) − b·σ(s'(i))`; the position with the most votes is
//!   evicted. A reserved prefix (attention sink) never receives votes.
//! * [`H2oPolicy`] — accumulated-attention-score eviction (H2O, Zhang et
//!   al.), which the paper analyzes as suffering from item-count, criteria
//!   and outlier bias.
//! * [`SlidingWindowPolicy`] — Streaming-LLM style sink + recent window.
//! * [`DecayedScorePolicy`] — an exponentially-decayed score baseline.
//! * [`RandomPolicy`] — a deterministic pseudo-random victim baseline.
//! * [`FullCachePolicy`] — never evicts (the accuracy oracle).
//!
//! All policies implement [`EvictionPolicy`] and operate on per-head
//! post-softmax attention-score observations, delivered as borrowed flat
//! [`ScoreView`]s (zero-copy, zero-allocation on the decode hot path);
//! they are *pure algorithm state machines* so both the functional model
//! (`veda-model`) and the cycle-accurate hardware voting engine
//! (`veda-accel`) can drive them.
//!
//! ## Example
//!
//! ```
//! use veda_eviction::{EvictionPolicy, ScoreView, VotingConfig, VotingPolicy};
//!
//! // Reserved length 1 so this tiny example can evict (the paper uses 32).
//! let mut policy = VotingPolicy::new(VotingConfig::with_reserved_len(1));
//! // Simulate three cached tokens and two attention observations.
//! for _ in 0..3 { policy.on_append(); }
//! policy.observe(ScoreView::single(&[0.8, 0.15, 0.05]));
//! policy.observe(ScoreView::single(&[0.7, 0.10, 0.20]));
//! // Cache over budget => pick a victim (never slot 0, the reserved sink).
//! let victim = policy.select_victim(3);
//! assert!(matches!(victim, Some(1) | Some(2)));
//! ```

// Crate hygiene, enforced by veda-lint (rule crate-hygiene): no unsafe
// code under the determinism pins, no undocumented public surface.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod decayed;
pub mod full;
pub mod h2o;
pub mod manager;
pub mod policy;
pub mod pressure;
pub mod random;
pub mod score;
pub mod sliding;
pub mod stats;
pub mod voting;

pub use decayed::DecayedScorePolicy;
pub use full::FullCachePolicy;
pub use h2o::H2oPolicy;
pub use manager::{CacheSimulator, SimulatedStep};
pub use policy::{EvictionPolicy, ParsePolicyKindError, PolicyKind};
pub use pressure::{BudgetController, PressureConfig};
pub use random::RandomPolicy;
pub use score::{observe_heads, observe_heads_into, ScoreView};
pub use sliding::SlidingWindowPolicy;
pub use stats::EvictionStats;
pub use voting::{VotingConfig, VotingPolicy};

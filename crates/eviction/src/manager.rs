//! Policy-driven cache simulation over attention-score streams.
//!
//! [`CacheSimulator`] tracks *which absolute token positions are resident*
//! under a policy and a cache budget, without storing any actual K/V data.
//! It is the glue used by the quality experiments (drive a policy over an
//! attention trace and ask "what survived?") and by the functional model,
//! which keeps its K/V matrices in lockstep with the simulator's resident
//! set.

use crate::policy::EvictionPolicy;
use crate::stats::EvictionStats;

/// Outcome of one simulated token step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulatedStep {
    /// Absolute index of the token appended this step.
    pub appended: usize,
    /// Absolute index of the token evicted this step, if any.
    pub evicted: Option<usize>,
}

/// Drives an [`EvictionPolicy`] over a stream of attention observations,
/// maintaining the resident set and eviction statistics.
///
/// ```
/// use veda_eviction::{CacheSimulator, SlidingWindowPolicy};
///
/// let mut sim = CacheSimulator::new(Box::new(SlidingWindowPolicy::new(1)), 2);
/// sim.step(0, &[vec![1.0]]);
/// sim.step(1, &[vec![0.5, 0.5]]);
/// let s = sim.step(2, &[vec![0.2, 0.3, 0.5]]);
/// assert!(s.evicted.is_some());
/// assert_eq!(sim.resident().len(), 2);
/// ```
pub struct CacheSimulator {
    policy: Box<dyn EvictionPolicy>,
    budget: usize,
    resident: Vec<usize>,
    next_token: usize,
    stats: EvictionStats,
    /// Reusable flat observation buffer (heads concatenated) so repeated
    /// steps do not reallocate.
    flat_scores: Vec<f32>,
}

impl CacheSimulator {
    /// Creates a simulator with the given policy and cache budget
    /// (maximum number of resident kv vectors).
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(policy: Box<dyn EvictionPolicy>, budget: usize) -> Self {
        assert!(budget > 0, "cache budget must be positive");
        Self {
            policy,
            budget,
            resident: Vec::new(),
            next_token: 0,
            stats: EvictionStats::default(),
            flat_scores: Vec::new(),
        }
    }

    /// The cache budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Changes the budget (e.g. `S = round(r·P)` once the prompt length is
    /// known). Does not evict immediately; the next step enforces it.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn set_budget(&mut self, budget: usize) {
        assert!(budget > 0, "cache budget must be positive");
        self.budget = budget;
    }

    /// Absolute token indices currently resident, oldest first.
    pub fn resident(&self) -> &[usize] {
        &self.resident
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Accumulated eviction statistics.
    pub fn stats(&self) -> &EvictionStats {
        &self.stats
    }

    /// Mutable access to the underlying policy (for diagnostics).
    pub fn policy_mut(&mut self) -> &mut dyn EvictionPolicy {
        self.policy.as_mut()
    }

    /// Processes one token: appends it, feeds the observation (scores over
    /// the *resident* slots, per head), and evicts if over budget.
    ///
    /// `scores[h].len()` must equal `resident().len() + 1` (the new token is
    /// part of the cache when it attends).
    ///
    /// # Panics
    ///
    /// Panics if score lengths disagree with the resident set.
    pub fn step(&mut self, token_idx: usize, scores: &[Vec<f32>]) -> SimulatedStep {
        self.resident.push(token_idx);
        self.policy.on_append();
        for head in scores {
            assert_eq!(
                head.len(),
                self.resident.len(),
                "observation length {} != resident {} (policy {})",
                head.len(),
                self.resident.len(),
                self.policy.name()
            );
        }
        crate::score::observe_heads_into(self.policy.as_mut(), scores, &mut self.flat_scores);
        self.next_token = token_idx + 1;

        let mut evicted = None;
        if self.resident.len() > self.budget {
            if let Some(slot) = self.policy.select_victim(self.resident.len()) {
                let abs = self.resident.remove(slot);
                self.policy.on_evict(slot);
                self.stats.record_eviction(token_idx, abs);
                evicted = Some(abs);
            } else {
                self.stats.record_refusal();
            }
        }
        debug_assert_eq!(self.policy.tracked_len(), self.resident.len(), "policy state desync");
        SimulatedStep { appended: token_idx, evicted }
    }

    /// Convenience for trace-driven simulation: the caller has scores over
    /// *all* absolute positions `0..=token_idx`; this projects them onto the
    /// resident set (plus the new token) and renormalizes each head to sum
    /// to one, modelling softmax over the surviving keys only.
    pub fn step_from_full_scores(&mut self, token_idx: usize, full_scores: &[Vec<f32>]) -> SimulatedStep {
        let mut projected: Vec<Vec<f32>> = Vec::with_capacity(full_scores.len());
        for head in full_scores {
            assert!(head.len() > token_idx, "full score vector shorter than token index");
            let mut proj: Vec<f32> = self.resident.iter().map(|&abs| head[abs]).collect();
            proj.push(head[token_idx]);
            let sum = veda_tensor::stats::sum(&proj);
            if sum > 0.0 {
                for v in &mut proj {
                    *v /= sum;
                }
            }
            projected.push(proj);
        }
        self.step(token_idx, &projected)
    }

    /// Resets policy, resident set and statistics.
    pub fn reset(&mut self) {
        self.policy.reset();
        self.resident.clear();
        self.next_token = 0;
        self.stats = EvictionStats::default();
    }
}

impl std::fmt::Debug for CacheSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSimulator")
            .field("policy", &self.policy.name())
            .field("budget", &self.budget)
            .field("resident_len", &self.resident.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolicyKind;

    fn uniform_scores(len: usize) -> Vec<Vec<f32>> {
        vec![vec![1.0 / len as f32; len]]
    }

    #[test]
    fn respects_budget() {
        let mut sim = CacheSimulator::new(PolicyKind::H2o.build(), 4);
        for t in 0..20 {
            sim.step(t, &uniform_scores(sim.resident().len() + 1));
            assert!(sim.resident().len() <= 4);
        }
        assert_eq!(sim.stats().evictions(), 16);
    }

    #[test]
    fn full_policy_never_evicts_but_grows() {
        let mut sim = CacheSimulator::new(PolicyKind::Full.build(), 2);
        for t in 0..10 {
            let s = sim.step(t, &uniform_scores(sim.resident().len() + 1));
            assert_eq!(s.evicted, None);
        }
        assert_eq!(sim.resident().len(), 10);
        assert_eq!(sim.stats().refusals(), 8);
    }

    #[test]
    fn sliding_window_keeps_sink_and_recent() {
        let mut sim = CacheSimulator::new(Box::new(crate::SlidingWindowPolicy::new(2)), 5);
        for t in 0..30 {
            sim.step(t, &uniform_scores(sim.resident().len() + 1));
        }
        let resident = sim.resident();
        assert_eq!(&resident[..2], &[0, 1], "sink retained");
        assert_eq!(&resident[2..], &[27, 28, 29], "recent window retained");
    }

    #[test]
    fn step_from_full_scores_projects_and_renormalizes() {
        let mut sim = CacheSimulator::new(PolicyKind::H2o.build(), 2);
        // Token 0, 1 resident; token 2 arrives with scores over all three.
        sim.step_from_full_scores(0, &[vec![1.0, 0.0, 0.0]]);
        sim.step_from_full_scores(1, &[vec![0.5, 0.5, 0.0]]);
        let s = sim.step_from_full_scores(2, &[vec![0.2, 0.2, 0.6]]);
        assert!(s.evicted.is_some());
        assert_eq!(sim.resident().len(), 2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut sim = CacheSimulator::new(PolicyKind::Voting.build(), 3);
        for t in 0..8 {
            sim.step(t, &uniform_scores(sim.resident().len() + 1));
        }
        sim.reset();
        assert!(sim.resident().is_empty());
        assert_eq!(sim.stats().evictions(), 0);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        CacheSimulator::new(PolicyKind::Full.build(), 0);
    }

    #[test]
    #[should_panic(expected = "observation length")]
    fn mismatched_scores_panic() {
        let mut sim = CacheSimulator::new(PolicyKind::H2o.build(), 4);
        sim.step(0, &[vec![0.5, 0.5]]);
    }
}

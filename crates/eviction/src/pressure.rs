//! Budget shrink under memory pressure.
//!
//! Eviction policies enforce a *per-session* resident-token cap; this
//! module decides how that cap responds to *global* device-memory
//! pressure. When the KV bytes resident across all sessions approach the
//! HBM capacity, a serving layer can either preempt sessions (swap their
//! KV state to the host) or shrink every session's budget so the policies
//! evict harder — trading a little accuracy for staying on-device. The
//! [`BudgetController`] implements the second response as a pure,
//! deterministic watermark controller so it can be unit-tested and shared
//! by any serving layer.

/// Watermark configuration for [`BudgetController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureConfig {
    /// Occupancy (resident / capacity) above which shrinking engages.
    pub high_watermark: f64,
    /// Occupancy the controller aims for once engaged. Must not exceed
    /// `high_watermark`.
    pub low_watermark: f64,
    /// Per-session floor: shrunk caps never drop below this many resident
    /// tokens (policies also protect their own sinks, e.g. the voting
    /// reserved prefix).
    pub floor_tokens: usize,
}

impl Default for PressureConfig {
    fn default() -> Self {
        Self { high_watermark: 0.9, low_watermark: 0.7, floor_tokens: 8 }
    }
}

impl PressureConfig {
    /// Checks the watermarks are ordered and in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics on watermarks outside (0, 1] or `low > high`.
    pub fn validate(self) {
        assert!(
            self.high_watermark > 0.0 && self.high_watermark <= 1.0,
            "high watermark {} outside (0, 1]",
            self.high_watermark
        );
        assert!(
            self.low_watermark > 0.0 && self.low_watermark <= self.high_watermark,
            "low watermark {} outside (0, high]",
            self.low_watermark
        );
    }
}

/// Deterministic watermark controller mapping global occupancy to a
/// per-session cap shrink factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetController {
    config: PressureConfig,
}

impl Default for BudgetController {
    fn default() -> Self {
        Self::new(PressureConfig::default())
    }
}

impl BudgetController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PressureConfig::validate`]).
    pub fn new(config: PressureConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PressureConfig {
        &self.config
    }

    /// Occupancy ratio `resident / capacity` (0.0 for zero capacity).
    pub fn occupancy(&self, resident_bytes: u64, capacity_bytes: u64) -> f64 {
        if capacity_bytes == 0 {
            0.0
        } else {
            resident_bytes as f64 / capacity_bytes as f64
        }
    }

    /// The factor to multiply resident caps by: `1.0` below the high
    /// watermark; otherwise the ratio that would bring occupancy down to
    /// the low watermark (KV bytes scale linearly with resident tokens).
    pub fn shrink_factor(&self, resident_bytes: u64, capacity_bytes: u64) -> f64 {
        let occupancy = self.occupancy(resident_bytes, capacity_bytes);
        if occupancy <= self.config.high_watermark {
            1.0
        } else {
            (self.config.low_watermark / occupancy).min(1.0)
        }
    }

    /// Applies a shrink factor to one session's resident cap, honoring the
    /// floor. A factor of `1.0` returns the cap unchanged.
    pub fn shrunk_cap(&self, cap: usize, factor: f64) -> usize {
        if factor >= 1.0 {
            return cap;
        }
        ((cap as f64 * factor).floor() as usize).max(self.config.floor_tokens).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_shrink_below_high_watermark() {
        let c = BudgetController::default();
        assert_eq!(c.shrink_factor(0, 1000), 1.0);
        assert_eq!(c.shrink_factor(900, 1000), 1.0, "exactly at the watermark");
        assert_eq!(c.shrunk_cap(64, 1.0), 64);
    }

    #[test]
    fn shrink_targets_low_watermark() {
        let c = BudgetController::default();
        let f = c.shrink_factor(1000, 1000);
        assert!((f - 0.7).abs() < 1e-12, "full occupancy shrinks to the low watermark, got {f}");
        // Over-subscribed: resident exceeds capacity (estimates admitted
        // optimistically); the factor keeps scaling down.
        let over = c.shrink_factor(1400, 1000);
        assert!((over - 0.5).abs() < 1e-12, "got {over}");
        assert_eq!(c.shrunk_cap(64, over), 32);
    }

    #[test]
    fn floor_protects_small_caps() {
        let c = BudgetController::new(PressureConfig {
            high_watermark: 0.5,
            low_watermark: 0.25,
            floor_tokens: 8,
        });
        assert_eq!(c.shrunk_cap(10, 0.1), 8, "floor wins over the scaled cap");
        let no_floor = BudgetController::new(PressureConfig { floor_tokens: 0, ..PressureConfig::default() });
        assert_eq!(no_floor.shrunk_cap(10, 0.01), 1, "caps never reach zero");
    }

    #[test]
    fn zero_capacity_reads_as_idle() {
        let c = BudgetController::default();
        assert_eq!(c.occupancy(500, 0), 0.0);
        assert_eq!(c.shrink_factor(500, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn rejects_inverted_watermarks() {
        BudgetController::new(PressureConfig { high_watermark: 0.5, low_watermark: 0.9, floor_tokens: 0 });
    }

    #[test]
    fn shrinking_is_monotone_in_occupancy() {
        let c = BudgetController::default();
        let mut last = 1.0;
        for resident in (900..3000).step_by(100) {
            let f = c.shrink_factor(resident, 1000);
            assert!(f <= last, "factor must not grow with occupancy");
            last = f;
        }
    }
}

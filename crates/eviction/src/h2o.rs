//! H2O: heavy-hitter-oracle eviction by accumulated attention scores
//! (Zhang et al. \[21\]), the method Fig. 2 (a) of the VEDA paper analyzes.
//!
//! Each cache position accumulates the attention scores it receives across
//! all steps (summed over heads); the position with the *minimum*
//! accumulated score is evicted. The paper identifies three biases of this
//! scheme, all of which this implementation reproduces faithfully:
//!
//! * **item-count bias** — early positions sum over more steps, so recent
//!   positions look unimportant;
//! * **criteria bias** — rows with few items have systematically larger
//!   scores, yet all rows are summed with equal weight;
//! * **outlier bias** — one huge score keeps a position resident forever.

use crate::policy::EvictionPolicy;
use crate::score::ScoreView;

/// Accumulated-attention-score eviction.
///
/// As in the released H2O system, a window of the most recent positions is
/// exempt from eviction ("heavy hitters + recent"): without it, pure
/// accumulation always evicts the newest entry (every older entry has had
/// strictly more steps to accumulate non-negative scores) and the policy
/// degenerates to keep-the-prefix. The three scoring biases the VEDA paper
/// analyzes all remain.
///
/// ```
/// use veda_eviction::{EvictionPolicy, H2oPolicy};
/// let mut p = H2oPolicy::new();
/// for _ in 0..3 { p.on_append(); }
/// p.observe(veda_eviction::ScoreView::single(&[0.7, 0.1, 0.2]));
/// assert_eq!(p.select_victim(3), Some(1)); // lowest accumulated score
/// ```
#[derive(Debug, Clone)]
pub struct H2oPolicy {
    accumulated: Vec<f32>,
    /// `None` = half of the current cache (the H2O release's
    /// "heavy-hitters + recent" split); `Some(w)` = fixed window.
    recent_window: Option<usize>,
}

impl Default for H2oPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl H2oPolicy {
    /// Creates an H2O policy with the system default: the most recent half
    /// of the cache is exempt (the release's heavy/recent split).
    pub fn new() -> Self {
        Self { accumulated: Vec::new(), recent_window: None }
    }

    /// Creates an H2O policy with an explicit recent-window exemption
    /// (0 = pure accumulation, the Fig. 2 (a) strawman).
    pub fn with_recent_window(recent_window: usize) -> Self {
        Self { accumulated: Vec::new(), recent_window: Some(recent_window) }
    }

    /// The recent-window exemption for a given cache length.
    pub fn recent_window(&self, cache_len: usize) -> usize {
        self.recent_window.unwrap_or(cache_len / 2)
    }

    /// The per-slot accumulated attention scores (the "importance vector").
    pub fn importance(&self) -> &[f32] {
        &self.accumulated
    }
}

impl EvictionPolicy for H2oPolicy {
    fn name(&self) -> &'static str {
        "h2o"
    }

    fn on_append(&mut self) {
        self.accumulated.push(0.0);
    }

    fn observe(&mut self, scores: ScoreView<'_>) {
        for head in scores.heads() {
            debug_assert_eq!(head.len(), self.accumulated.len(), "cache/policy desync");
            for (acc, &s) in self.accumulated.iter_mut().zip(head.iter()) {
                *acc += s;
            }
        }
    }

    fn select_victim(&mut self, cache_len: usize) -> Option<usize> {
        debug_assert_eq!(cache_len, self.accumulated.len(), "cache/policy desync");
        let hi = cache_len.saturating_sub(self.recent_window(cache_len));
        if hi == 0 {
            // Everything is inside the protected recent window: fall back
            // to evicting the global minimum so the budget still binds.
            return veda_tensor::stats::argmin(&self.accumulated[..cache_len]);
        }
        veda_tensor::stats::argmin(&self.accumulated[..hi])
    }

    fn on_evict(&mut self, idx: usize) {
        self.accumulated.remove(idx);
    }

    fn reset(&mut self) {
        self.accumulated.clear();
    }

    fn tracked_len(&self) -> usize {
        self.accumulated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_steps_and_heads() {
        let mut p = H2oPolicy::new();
        for _ in 0..2 {
            p.on_append();
        }
        crate::score::observe_heads(&mut p, &[vec![0.6, 0.4], vec![0.2, 0.8]]);
        p.observe(ScoreView::single(&[0.5, 0.5]));
        assert!((p.importance()[0] - 1.3).abs() < 1e-6);
        assert!((p.importance()[1] - 1.7).abs() < 1e-6);
    }

    #[test]
    fn evicts_minimum_importance() {
        let mut p = H2oPolicy::with_recent_window(0);
        for _ in 0..3 {
            p.on_append();
        }
        p.observe(ScoreView::single(&[0.5, 0.1, 0.4]));
        assert_eq!(p.select_victim(3), Some(1));
    }

    #[test]
    fn exhibits_item_count_bias_against_recent_tokens() {
        // The documented failure mode: a recent position with consistently
        // *higher* per-step scores still loses to an old position that
        // accumulated many small scores.
        let mut p = H2oPolicy::with_recent_window(0);
        p.on_append();
        for _ in 0..10 {
            p.observe(ScoreView::single(&[0.1])); // old token trickles up to 1.0
            p.on_append();
            p.on_evict(1); // keep a single-slot cache plus the probe below
        }
        p.on_append(); // fresh recent token
        p.observe(ScoreView::single(&[0.2, 0.8])); // recent token gets 0.8 once
                                                   // Old token: 10*0.1 + 0.2 = 1.2 > recent 0.8 => recent evicted.
        assert_eq!(p.select_victim(2), Some(1));
    }

    #[test]
    fn exhibits_outlier_bias() {
        let mut p = H2oPolicy::with_recent_window(0);
        for _ in 0..2 {
            p.on_append();
        }
        // One huge outlier score on position 0, then consistent preference
        // for position 1 — position 0 is still never the victim.
        p.observe(ScoreView::single(&[5.0, 0.0]));
        for _ in 0..4 {
            p.observe(ScoreView::single(&[0.1, 0.9]));
        }
        assert_eq!(p.select_victim(2), Some(1));
    }

    #[test]
    fn eviction_compacts_importance() {
        let mut p = H2oPolicy::new();
        for _ in 0..3 {
            p.on_append();
        }
        p.observe(ScoreView::single(&[0.2, 0.3, 0.5]));
        p.on_evict(0);
        assert_eq!(p.tracked_len(), 2);
        assert!((p.importance()[0] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_accumulators() {
        let mut p = H2oPolicy::new();
        p.on_append();
        p.observe(ScoreView::single(&[1.0]));
        p.reset();
        assert_eq!(p.tracked_len(), 0);
    }
}

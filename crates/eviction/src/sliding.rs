//! Streaming-LLM style sliding-window eviction (Xiao et al. \[18\]).
//!
//! Retains the earliest `sink_len` positions (the attention sink) and the
//! most recent window; whenever the cache exceeds its budget the *oldest
//! non-sink* position is evicted. Simple and score-free, but it forgets all
//! out-of-window content — the accuracy loss the paper uses it to
//! illustrate.

use crate::policy::EvictionPolicy;
use crate::score::ScoreView;

/// Sink + recent-window eviction.
///
/// ```
/// use veda_eviction::{EvictionPolicy, SlidingWindowPolicy};
/// let mut p = SlidingWindowPolicy::new(2);
/// for _ in 0..5 { p.on_append(); }
/// // Oldest position after the 2-entry sink:
/// assert_eq!(p.select_victim(5), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindowPolicy {
    sink_len: usize,
    len: usize,
}

impl SlidingWindowPolicy {
    /// Creates a policy preserving the first `sink_len` positions.
    pub fn new(sink_len: usize) -> Self {
        Self { sink_len, len: 0 }
    }

    /// The attention-sink length.
    pub fn sink_len(&self) -> usize {
        self.sink_len
    }
}

impl EvictionPolicy for SlidingWindowPolicy {
    fn name(&self) -> &'static str {
        "sliding_window"
    }

    fn on_append(&mut self) {
        self.len += 1;
    }

    fn observe(&mut self, _scores: ScoreView<'_>) {}

    fn select_victim(&mut self, cache_len: usize) -> Option<usize> {
        debug_assert_eq!(cache_len, self.len, "cache/policy desync");
        if cache_len > self.sink_len {
            Some(self.sink_len)
        } else {
            None
        }
    }

    fn on_evict(&mut self, _idx: usize) {
        self.len = self.len.saturating_sub(1);
    }

    fn reset(&mut self) {
        self.len = 0;
    }

    fn tracked_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_outside_sink() {
        let mut p = SlidingWindowPolicy::new(3);
        for _ in 0..10 {
            p.on_append();
        }
        assert_eq!(p.select_victim(10), Some(3));
    }

    #[test]
    fn refuses_when_cache_is_all_sink() {
        let mut p = SlidingWindowPolicy::new(4);
        for _ in 0..3 {
            p.on_append();
        }
        assert_eq!(p.select_victim(3), None);
    }

    #[test]
    fn zero_sink_behaves_as_fifo() {
        let mut p = SlidingWindowPolicy::new(0);
        for _ in 0..2 {
            p.on_append();
        }
        assert_eq!(p.select_victim(2), Some(0));
    }

    #[test]
    fn repeated_evictions_keep_window_semantics() {
        let mut p = SlidingWindowPolicy::new(1);
        for _ in 0..5 {
            p.on_append();
        }
        let v = p.select_victim(5).unwrap();
        p.on_evict(v);
        assert_eq!(p.tracked_len(), 4);
        assert_eq!(p.select_victim(4), Some(1));
    }
}

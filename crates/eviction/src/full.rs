//! The no-eviction oracle baseline.

use crate::policy::EvictionPolicy;
use crate::score::ScoreView;

/// Never evicts. Serves as the accuracy upper bound ("Baseline" in Fig. 8
/// right: VEDA without cache eviction) and as the memory-unbounded oracle in
/// quality comparisons.
///
/// ```
/// use veda_eviction::{EvictionPolicy, FullCachePolicy};
/// let mut p = FullCachePolicy::new();
/// p.on_append();
/// assert_eq!(p.select_victim(1), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FullCachePolicy {
    len: usize,
}

impl FullCachePolicy {
    /// Creates the oracle policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictionPolicy for FullCachePolicy {
    fn name(&self) -> &'static str {
        "full"
    }

    fn on_append(&mut self) {
        self.len += 1;
    }

    fn observe(&mut self, _scores: ScoreView<'_>) {}

    fn select_victim(&mut self, _cache_len: usize) -> Option<usize> {
        None
    }

    fn on_evict(&mut self, _idx: usize) {
        // The owner should never evict under this policy, but stay
        // consistent if it forces one.
        self.len = self.len.saturating_sub(1);
    }

    fn reset(&mut self) {
        self.len = 0;
    }

    fn tracked_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_selects_a_victim() {
        let mut p = FullCachePolicy::new();
        for _ in 0..100 {
            p.on_append();
        }
        p.observe(ScoreView::single(&[0.5; 100]));
        assert_eq!(p.select_victim(100), None);
        assert_eq!(p.tracked_len(), 100);
    }

    #[test]
    fn reset_zeroes_length() {
        let mut p = FullCachePolicy::new();
        p.on_append();
        p.reset();
        assert_eq!(p.tracked_len(), 0);
    }
}

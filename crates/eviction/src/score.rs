//! Flat, borrowed attention-score observations.
//!
//! The functional model produces per-head post-softmax attention scores for
//! every layer of every decode step. Historically these travelled as
//! `Vec<Vec<f32>>` (one allocation per head per layer per token); the
//! decode hot path now keeps all scores of one step in a *single* flat
//! buffer and hands policies a [`ScoreView`] — a borrowed `(n_heads × len)`
//! window into it. Policies consume slices, nothing is copied, and
//! steady-state decode performs no per-observation heap allocation.
//!
//! Layout: head-major, `data[h * len .. (h + 1) * len]` is head `h`'s
//! score vector over the resident cache slots.

/// Borrowed per-head attention scores of one token over one layer's cache:
/// `n_heads` contiguous segments of equal length in a flat slice.
#[derive(Debug, Clone, Copy)]
pub struct ScoreView<'a> {
    data: &'a [f32],
    n_heads: usize,
}

impl<'a> ScoreView<'a> {
    /// Wraps a flat head-major buffer of `n_heads` equal-length segments.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `n_heads`, or if
    /// `n_heads == 0` with non-empty data.
    pub fn new(data: &'a [f32], n_heads: usize) -> Self {
        if n_heads == 0 {
            assert!(data.is_empty(), "ScoreView: 0 heads but {} scores", data.len());
        } else {
            assert_eq!(
                data.len() % n_heads,
                0,
                "ScoreView: {} scores do not split into {} heads",
                data.len(),
                n_heads
            );
        }
        Self { data, n_heads }
    }

    /// A single-head view over one score vector (the hardware voting
    /// engine and several tests observe one head at a time).
    pub fn single(scores: &'a [f32]) -> Self {
        Self { data: scores, n_heads: 1 }
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Scores per head (the resident cache length at observation time).
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.n_heads).unwrap_or(0)
    }

    /// True when there are no scores (`len() == 0`).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Head `h`'s score vector over the cache slots.
    ///
    /// # Panics
    ///
    /// Panics if `h >= n_heads()`.
    pub fn head(&self, h: usize) -> &'a [f32] {
        assert!(h < self.n_heads, "head {h} out of bounds ({} heads)", self.n_heads);
        let len = self.len();
        &self.data[h * len..(h + 1) * len]
    }

    /// Iterator over the per-head score slices. Always yields exactly
    /// [`ScoreView::n_heads`] slices, matching [`ScoreView::head`] — even
    /// when every head is empty.
    pub fn heads(&self) -> impl Iterator<Item = &'a [f32]> {
        let len = self.len();
        let data = self.data;
        (0..self.n_heads).map(move |h| &data[h * len..(h + 1) * len])
    }

    /// The whole flat buffer (head-major).
    pub fn as_flat(&self) -> &'a [f32] {
        self.data
    }

    /// Averages the heads into `out` (reusing its allocation) — the
    /// layer-wise aggregation VEDA's voting engine performs ("all heads
    /// are aggregated and averaged", Section V). Accumulation is
    /// head-major then scaled by `1 / n_heads`, bit-identical to
    /// [`crate::policy::average_heads`] on the nested representation.
    ///
    /// `out` is left empty when the view has no heads.
    pub fn average_into(&self, out: &mut Vec<f32>) {
        out.clear();
        if self.n_heads == 0 {
            return;
        }
        out.resize(self.len(), 0.0);
        for head in self.heads() {
            for (o, &s) in out.iter_mut().zip(head) {
                *o += s;
            }
        }
        let inv = 1.0 / self.n_heads as f32;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }

    /// Allocating convenience form of [`ScoreView::average_into`].
    pub fn average(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.average_into(&mut out);
        out
    }
}

/// Flattens nested per-head score vectors into `buf` (reusing its
/// allocation) and feeds them to a policy — the bridge for callers that
/// still hold `Vec<Vec<f32>>` observations (`CacheSimulator`, the
/// induction LM, trace tooling). Hot paths should build a flat buffer
/// directly and call [`crate::EvictionPolicy::observe`].
///
/// # Panics
///
/// Panics if the head vectors disagree in length.
pub fn observe_heads_into(policy: &mut dyn crate::EvictionPolicy, heads: &[Vec<f32>], buf: &mut Vec<f32>) {
    let len = heads.first().map_or(0, Vec::len);
    buf.clear();
    buf.reserve(len * heads.len());
    for head in heads {
        assert_eq!(head.len(), len, "observe_heads: ragged head scores");
        buf.extend_from_slice(head);
    }
    policy.observe(ScoreView::new(buf, heads.len()));
}

/// Allocating convenience form of [`observe_heads_into`] (tests, one-off
/// diagnostics).
///
/// # Panics
///
/// Panics if the head vectors disagree in length.
pub fn observe_heads(policy: &mut dyn crate::EvictionPolicy, heads: &[Vec<f32>]) {
    observe_heads_into(policy, heads, &mut Vec::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvictionPolicy;

    #[test]
    fn view_splits_flat_buffer_into_heads() {
        let flat = [0.1, 0.2, 0.7, 0.3, 0.3, 0.4];
        let v = ScoreView::new(&flat, 2);
        assert_eq!(v.n_heads(), 2);
        assert_eq!(v.len(), 3);
        assert_eq!(v.head(0), &[0.1, 0.2, 0.7]);
        assert_eq!(v.head(1), &[0.3, 0.3, 0.4]);
        assert_eq!(v.heads().count(), 2);
        assert_eq!(v.as_flat(), &flat);
    }

    #[test]
    fn single_head_view() {
        let v = ScoreView::single(&[0.5, 0.5]);
        assert_eq!(v.n_heads(), 1);
        assert_eq!(v.len(), 2);
        assert_eq!(v.head(0), &[0.5, 0.5]);
    }

    #[test]
    fn empty_views_are_well_formed() {
        let v = ScoreView::new(&[], 0);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.heads().count(), 0);
        assert!(v.average().is_empty());
        // Heads with zero-length segments: the iterator still agrees with
        // `n_heads()`/`head(h)` and yields empty slices.
        let v = ScoreView::new(&[], 4);
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.heads().count(), v.n_heads());
        assert!(v.heads().all(<[f32]>::is_empty));
        assert!(v.head(3).is_empty());
        assert!(v.average().is_empty());
    }

    #[test]
    fn average_matches_nested_average_heads() {
        let nested = vec![vec![1.0, 0.0, 0.5], vec![0.0, 1.0, 0.5]];
        let flat: Vec<f32> = nested.concat();
        let v = ScoreView::new(&flat, 2);
        assert_eq!(v.average(), crate::policy::average_heads(&nested));
    }

    #[test]
    #[should_panic(expected = "do not split")]
    fn ragged_flat_buffer_panics() {
        ScoreView::new(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn observe_heads_flattens_for_policies() {
        let mut p = crate::H2oPolicy::new();
        p.on_append();
        p.on_append();
        observe_heads(&mut p, &[vec![0.6, 0.4], vec![0.2, 0.8]]);
        assert!((p.importance()[0] - 0.8).abs() < 1e-6);
        assert!((p.importance()[1] - 1.2).abs() < 1e-6);
    }
}

//! Eviction statistics collected by [`crate::CacheSimulator`].

/// Counters describing a policy's eviction behaviour over one sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvictionStats {
    evictions: usize,
    refusals: usize,
    /// Sum of (current token − evicted token) ages, for the mean age.
    total_age: u64,
    min_age: Option<usize>,
    max_age: Option<usize>,
}

impl EvictionStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `victim_token` was evicted while generating
    /// `current_token`.
    pub fn record_eviction(&mut self, current_token: usize, victim_token: usize) {
        let age = current_token.saturating_sub(victim_token);
        self.evictions += 1;
        self.total_age += age as u64;
        self.min_age = Some(self.min_age.map_or(age, |m| m.min(age)));
        self.max_age = Some(self.max_age.map_or(age, |m| m.max(age)));
    }

    /// Records that the policy declined to evict while over budget.
    pub fn record_refusal(&mut self) {
        self.refusals += 1;
    }

    /// Number of evictions performed.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Number of times the policy refused to pick a victim.
    pub fn refusals(&self) -> usize {
        self.refusals
    }

    /// Mean age (in tokens) of evicted entries; 0 when none were evicted.
    pub fn mean_age(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.total_age as f64 / self.evictions as f64
        }
    }

    /// Youngest eviction age seen.
    pub fn min_age(&self) -> Option<usize> {
        self.min_age
    }

    /// Oldest eviction age seen.
    pub fn max_age(&self) -> Option<usize> {
        self.max_age
    }
}

impl std::fmt::Display for EvictionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} evictions (mean age {:.1}, min {:?}, max {:?}), {} refusals",
            self.evictions,
            self.mean_age(),
            self.min_age,
            self.max_age,
            self.refusals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_ages() {
        let mut s = EvictionStats::new();
        s.record_eviction(10, 2); // age 8
        s.record_eviction(10, 6); // age 4
        assert_eq!(s.evictions(), 2);
        assert_eq!(s.mean_age(), 6.0);
        assert_eq!(s.min_age(), Some(4));
        assert_eq!(s.max_age(), Some(8));
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = EvictionStats::new();
        assert_eq!(s.mean_age(), 0.0);
        assert_eq!(s.min_age(), None);
    }

    #[test]
    fn display_is_informative() {
        let mut s = EvictionStats::new();
        s.record_eviction(5, 1);
        s.record_refusal();
        let out = s.to_string();
        assert!(out.contains("1 evictions"));
        assert!(out.contains("1 refusals"));
    }
}

//! The [`EvictionPolicy`] trait shared by all KV cache eviction strategies.
//!
//! ## Protocol
//!
//! The cache owner (functional model or accelerator scheduler) drives a
//! policy through a strict sequence per token:
//!
//! 1. [`EvictionPolicy::on_append`] — a new kv vector was appended; the
//!    policy extends its per-position state by one slot.
//! 2. [`EvictionPolicy::observe`] — the post-softmax attention scores of the
//!    current token over *all* cache positions (one `Vec<f32>` per head, all
//!    of length equal to the current cache length).
//! 3. If the cache exceeds its budget: [`EvictionPolicy::select_victim`]
//!    returns the slot to evict, and the owner then calls
//!    [`EvictionPolicy::on_evict`] so the policy compacts its state.
//!
//! Positions are *current cache slots* (0 = oldest resident entry), not
//! absolute token indices: after an eviction every later slot shifts down by
//! one, mirroring how the hardware vote-count buffer is compacted.

use crate::score::ScoreView;

/// Per-head post-softmax attention scores of one token over the cache in
/// the legacy nested representation (hot paths use [`ScoreView`]).
pub type HeadScores = [Vec<f32>];

/// A KV cache eviction strategy.
///
/// See the [module documentation](self) for the calling protocol. Policies
/// must be deterministic: the same observation sequence always yields the
/// same victims. `Send` is a supertrait so per-session policy stacks can
/// move across the engine's decode worker threads.
pub trait EvictionPolicy: Send {
    /// Short stable identifier, e.g. `"voting"` or `"h2o"`.
    fn name(&self) -> &'static str;

    /// Extends per-position state for a newly appended kv vector.
    fn on_append(&mut self);

    /// Feeds the attention scores of the current step as a flat borrowed
    /// view.
    ///
    /// `scores.head(h)[j]` is head `h`'s post-softmax attention from the
    /// current token to cache slot `j`. Every head slice must have length
    /// equal to the number of `on_append` calls minus evictions.
    fn observe(&mut self, scores: ScoreView<'_>);

    /// Picks the slot to evict, given the current cache length.
    ///
    /// Returns `None` when the policy refuses to evict (e.g. the full-cache
    /// oracle, or when every position is protected).
    fn select_victim(&mut self, cache_len: usize) -> Option<usize>;

    /// Compacts per-position state after slot `idx` was removed.
    fn on_evict(&mut self, idx: usize);

    /// Resets all internal state (start of a new sequence).
    fn reset(&mut self);

    /// Number of position slots the policy currently tracks (diagnostic;
    /// the owner asserts this stays in lockstep with the cache).
    fn tracked_len(&self) -> usize;
}

impl<P: EvictionPolicy + ?Sized> EvictionPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_append(&mut self) {
        (**self).on_append();
    }

    fn observe(&mut self, scores: ScoreView<'_>) {
        (**self).observe(scores);
    }

    fn select_victim(&mut self, cache_len: usize) -> Option<usize> {
        (**self).select_victim(cache_len)
    }

    fn on_evict(&mut self, idx: usize) {
        (**self).on_evict(idx);
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn tracked_len(&self) -> usize {
        (**self).tracked_len()
    }
}

/// Enumeration of the built-in policies, used by configuration surfaces and
/// report labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Never evict (oracle accuracy, unbounded memory).
    Full,
    /// Streaming-LLM: attention sink + most recent window.
    SlidingWindow,
    /// H2O accumulated attention scores.
    H2o,
    /// VEDA voting-based eviction.
    Voting,
    /// Exponentially decayed score baseline.
    DecayedScore,
    /// Deterministic pseudo-random victim baseline.
    Random,
}

impl PolicyKind {
    /// All kinds, in presentation order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Full,
        PolicyKind::SlidingWindow,
        PolicyKind::H2o,
        PolicyKind::Voting,
        PolicyKind::DecayedScore,
        PolicyKind::Random,
    ];

    /// Stable identifier matching [`EvictionPolicy::name`].
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyKind::Full => "full",
            PolicyKind::SlidingWindow => "sliding_window",
            PolicyKind::H2o => "h2o",
            PolicyKind::Voting => "voting",
            PolicyKind::DecayedScore => "decayed_score",
            PolicyKind::Random => "random",
        }
    }

    /// Builds the policy with workspace-default parameters.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Full => Box::new(crate::FullCachePolicy::new()),
            PolicyKind::SlidingWindow => Box::new(crate::SlidingWindowPolicy::new(4)),
            PolicyKind::H2o => Box::new(crate::H2oPolicy::new()),
            PolicyKind::Voting => Box::new(crate::VotingPolicy::new(crate::VotingConfig::default())),
            PolicyKind::DecayedScore => Box::new(crate::DecayedScorePolicy::new(0.9)),
            PolicyKind::Random => Box::new(crate::RandomPolicy::new(0xDAC2025)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`PolicyKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyKindError(String);

impl std::fmt::Display for ParsePolicyKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown eviction policy {:?} (expected one of: {})",
            self.0,
            PolicyKind::ALL.map(PolicyKind::as_str).join(", ")
        )
    }
}

impl std::error::Error for ParsePolicyKindError {}

impl std::str::FromStr for PolicyKind {
    type Err = ParsePolicyKindError;

    /// Parses a policy from its stable identifier ([`PolicyKind::as_str`])
    /// or common CLI aliases; matching is case-insensitive and ignores
    /// `-`/`_` differences.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String =
            s.trim().to_ascii_lowercase().chars().filter(|c| !matches!(c, '-' | '_')).collect();
        match normalized.as_str() {
            "full" | "oracle" => Ok(PolicyKind::Full),
            "slidingwindow" | "sliding" | "slide" | "streamingllm" => Ok(PolicyKind::SlidingWindow),
            "h2o" => Ok(PolicyKind::H2o),
            "voting" | "vote" | "veda" => Ok(PolicyKind::Voting),
            "decayedscore" | "decayed" | "decay" => Ok(PolicyKind::DecayedScore),
            "random" => Ok(PolicyKind::Random),
            _ => Err(ParsePolicyKindError(s.to_string())),
        }
    }
}

/// Averages per-head scores into a single layer-wise score vector, the
/// aggregation VEDA's voting engine performs ("all heads are aggregated and
/// averaged", Section V).
///
/// Returns an empty vector when `scores` is empty.
///
/// # Panics
///
/// Panics if head slices disagree in length.
pub fn average_heads(scores: &HeadScores) -> Vec<f32> {
    let Some(first) = scores.first() else {
        return Vec::new();
    };
    let len = first.len();
    let mut out = vec![0.0f32; len];
    for head in scores {
        assert_eq!(head.len(), len, "average_heads: ragged head scores");
        for (o, &s) in out.iter_mut().zip(head) {
            *o += s;
        }
    }
    let inv = 1.0 / scores.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_via_str() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.as_str());
        }
    }

    #[test]
    fn average_heads_mean_of_two() {
        let s = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(average_heads(&s), vec![0.5, 0.5]);
    }

    #[test]
    fn average_heads_empty() {
        let s: Vec<Vec<f32>> = Vec::new();
        assert!(average_heads(&s).is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn average_heads_rejects_ragged() {
        let s = vec![vec![1.0, 0.0], vec![0.5]];
        average_heads(&s);
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(PolicyKind::Voting.to_string(), "voting");
        assert_eq!(PolicyKind::H2o.to_string(), "h2o");
    }

    #[test]
    fn from_str_round_trips_every_kind() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.as_str().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(kind.to_string().parse::<PolicyKind>().unwrap(), kind);
        }
    }

    #[test]
    fn from_str_accepts_aliases_and_rejects_unknown() {
        assert_eq!("VEDA".parse::<PolicyKind>().unwrap(), PolicyKind::Voting);
        assert_eq!("sliding-window".parse::<PolicyKind>().unwrap(), PolicyKind::SlidingWindow);
        assert_eq!("Decayed".parse::<PolicyKind>().unwrap(), PolicyKind::DecayedScore);
        let err = "lru".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("lru"), "{err}");
        assert!(err.to_string().contains("voting"), "{err}");
    }
}

//! Property-based tests over all eviction policies: invariants that must
//! hold for any observation stream.

use proptest::prelude::*;
use rand::Rng;
use veda_eviction::{CacheSimulator, PolicyKind, VotingConfig, VotingPolicy};

/// Random softmax-like score vectors (positive, sum to 1) per head.
fn random_scores(rng: &mut rand::rngs::StdRng, heads: usize, len: usize) -> Vec<Vec<f32>> {
    (0..heads)
        .map(|_| {
            let raw: Vec<f32> = (0..len).map(|_| rng.gen_range(0.01f32..1.0)).collect();
            let sum: f32 = raw.iter().sum();
            raw.into_iter().map(|x| x / sum).collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn cache_never_exceeds_budget(
        kind_idx in 0usize..6,
        budget in 1usize..16,
        tokens in 1usize..64,
        heads in 1usize..4,
        seed in 0u64..500,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut rng = veda_tensor::rng::seeded(seed);
        let mut sim = CacheSimulator::new(kind.build(), budget);
        for t in 0..tokens {
            let len = sim.resident().len() + 1;
            sim.step(t, &random_scores(&mut rng, heads, len));
            match kind {
                // Evicting policies may refuse only when everything is
                // protected (sink/reserved); the cache can then exceed the
                // budget by the protected amount at most.
                PolicyKind::Full => {}
                _ => prop_assert!(
                    sim.resident().len() <= budget.max(33),
                    "{kind}: resident {} budget {}", sim.resident().len(), budget
                ),
            }
        }
    }

    #[test]
    fn resident_set_is_sorted_and_unique(
        kind_idx in 0usize..6,
        budget in 2usize..12,
        tokens in 1usize..48,
        seed in 0u64..200,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let mut rng = veda_tensor::rng::seeded(seed);
        let mut sim = CacheSimulator::new(kind.build(), budget);
        for t in 0..tokens {
            let len = sim.resident().len() + 1;
            sim.step(t, &random_scores(&mut rng, 2, len));
            let r = sim.resident();
            prop_assert!(r.windows(2).all(|w| w[0] < w[1]), "{kind}: resident not sorted: {r:?}");
        }
    }

    #[test]
    fn sliding_window_never_evicts_newest_token(
        sink in 0usize..4,
        extra in 1usize..8,
        tokens in 1usize..48,
        seed in 0u64..200,
    ) {
        // Structural guarantee of the sink+window scheme: as long as the
        // budget exceeds the sink, the victim is always the oldest non-sink
        // slot, never the newest. (Score-driven policies such as H2O can
        // evict the newest token — the item-count bias the paper documents —
        // so no such property is asserted for them.)
        let budget = sink + extra;
        let mut rng = veda_tensor::rng::seeded(seed);
        let mut sim = CacheSimulator::new(
            Box::new(veda_eviction::SlidingWindowPolicy::new(sink)),
            budget,
        );
        for t in 0..tokens {
            let len = sim.resident().len() + 1;
            sim.step(t, &random_scores(&mut rng, 1, len));
            prop_assert_eq!(*sim.resident().last().unwrap(), t);
        }
    }

    #[test]
    fn deterministic_given_same_stream(
        kind_idx in 0usize..6,
        budget in 1usize..10,
        tokens in 1usize..40,
        seed in 0u64..100,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let run = || {
            let mut rng = veda_tensor::rng::seeded(seed);
            let mut sim = CacheSimulator::new(kind.build(), budget);
            for t in 0..tokens {
                let len = sim.resident().len() + 1;
                sim.step(t, &random_scores(&mut rng, 2, len));
            }
            sim.resident().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn voting_threshold_between_extremes(
        xs in proptest::collection::vec(0.0001f32..1.0, 2..64),
        a in 0.5f32..1.5,
        b in 0.0f32..0.5,
    ) {
        // T = a*mean - b*sigma <= a*mean <= a*max
        let cfg = VotingConfig::with_coefficients(a, b);
        let t = cfg.threshold(&xs);
        let max = xs.iter().cloned().fold(f32::MIN, f32::max);
        prop_assert!(t <= a * max + 1e-5);
    }

    #[test]
    fn voting_votes_nonempty_and_in_range(
        xs in proptest::collection::vec(0.0001f32..1.0, 1..64),
    ) {
        let cfg = VotingConfig::default();
        let t = cfg.threshold(&xs);
        let votes = veda_eviction::voting::votes_for(&xs, t);
        prop_assert!(!votes.is_empty());
        prop_assert!(votes.iter().all(|&j| j < xs.len()));
    }

    #[test]
    fn voting_policy_state_tracks_cache(
        tokens in 1usize..64,
        budget in 2usize..16,
        seed in 0u64..100,
    ) {
        let mut rng = veda_tensor::rng::seeded(seed);
        let mut sim = CacheSimulator::new(
            Box::new(VotingPolicy::new(VotingConfig::with_reserved_len(1))),
            budget,
        );
        for t in 0..tokens {
            let len = sim.resident().len() + 1;
            sim.step(t, &random_scores(&mut rng, 2, len));
        }
        prop_assert!(sim.resident().len() <= budget);
    }
}

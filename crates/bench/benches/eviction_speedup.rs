//! Fig. 8 (right) as a benchmark: the eviction-speedup sweep (the figure
//! is printed by the `fig8_right` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_speedup_sweep(c: &mut Criterion) {
    c.bench_function("fig8_right_sweep", |b| b.iter(|| black_box(veda_bench::fig8_right())));
}

criterion_group!(benches, bench_speedup_sweep);
criterion_main!(benches);

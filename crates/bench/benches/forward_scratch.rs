//! Scratch vs allocating forward path: one decode token through the
//! transformer with a warm cache, with and without the reusable
//! [`veda_model::ForwardScratch`] buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use veda_model::{ModelConfig, TransformerModel};

fn bench_forward_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_token");
    for &resident in &[16usize, 64, 128] {
        let cfg = ModelConfig::tiny();
        let model = TransformerModel::new(cfg.clone());
        let token = |i: usize| (i * 11 + 1) % cfg.vocab_size;

        // Warm state reused across iterations: decode-then-evict keeps the
        // cache at `resident`, so every iteration measures the same work.
        let mut state = model.new_state();
        for pos in 0..resident {
            model.forward_in(&mut state, token(pos), pos);
        }
        let mut pos = resident;
        group.bench_with_input(BenchmarkId::new("alloc", resident), &resident, |b, _| {
            b.iter(|| {
                let out = model.forward_in(&mut state, token(pos), pos);
                pos += 1;
                for layer in 0..state.n_layers() {
                    state.evict_many(layer, &[1]);
                }
                black_box(out.logits.len())
            })
        });

        let mut state = model.new_state();
        state.reserve(resident + 2, cfg.d_model);
        let mut scratch = model.new_scratch(resident + 2);
        for pos in 0..resident {
            model.forward_with_scratch(&mut state, token(pos), pos, &mut scratch);
        }
        let mut pos = resident;
        group.bench_with_input(BenchmarkId::new("scratch", resident), &resident, |b, _| {
            b.iter(|| {
                model.forward_with_scratch(&mut state, token(pos), pos, &mut scratch);
                pos += 1;
                for layer in 0..state.n_layers() {
                    state.evict_many(layer, &[1]);
                }
                black_box(scratch.logits().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_paths);
criterion_main!(benches);

//! Fig. 8 (left) as a benchmark: perplexity evaluation throughput of each
//! eviction policy at a representative cache size (the quality numbers are
//! produced by the `fig8_left` binary; this measures the evaluation loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use veda_eviction::PolicyKind;
use veda_model::{Corpus, CorpusConfig, InductionConfig, InductionLm};

fn bench_policy_eval(c: &mut Criterion) {
    let corpus = Corpus::new(CorpusConfig::default());
    let lm = InductionLm::new(InductionConfig::default(), &corpus);
    let sample = corpus.sample(0, 512);
    let mut group = c.benchmark_group("policy_eval_512tok_cache128");
    group.sample_size(10);
    for kind in [PolicyKind::SlidingWindow, PolicyKind::H2o, PolicyKind::Voting] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &k| {
            b.iter(|| {
                let mut p = veda_bench::calibrated_policy(k);
                lm.evaluate_sample(black_box(&sample), 128, p.as_mut(), &corpus).total_nll
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_eval);
criterion_main!(benches);

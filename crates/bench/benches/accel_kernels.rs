//! Functional PE-array kernel benchmarks: inner/outer GEMV on the FP16
//! array model and the element-serial softmax unit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use veda_accel::arch::SfuConfig;
use veda_accel::sfu::SoftmaxUnit;
use veda_accel::{ArrayMode, PeArray};
use veda_tensor::Matrix;

fn bench_pe_array(c: &mut Criterion) {
    let mut rng = veda_tensor::rng::seeded(4);
    let keys = Matrix::from_vec(256, 64, veda_tensor::rng::normal_vec(&mut rng, 256 * 64, 0.5)).unwrap();
    let q = veda_tensor::rng::normal_vec(&mut rng, 64, 0.5);
    let s = veda_tensor::rng::uniform_vec(&mut rng, 256, 0.0, 0.05);

    c.bench_function("pe_array_inner_256x64", |b| {
        let mut arr = PeArray::veda_tile();
        arr.configure(ArrayMode::InnerProduct);
        b.iter(|| arr.inner_gemv(black_box(&q), black_box(&keys)).cycles)
    });
    c.bench_function("pe_array_outer_256x64", |b| {
        let mut arr = PeArray::veda_tile();
        arr.configure(ArrayMode::OuterProduct);
        b.iter(|| arr.outer_gemv(black_box(&s), black_box(&keys)).cycles)
    });
}

fn bench_sfu(c: &mut Criterion) {
    let xs = veda_tensor::rng::normal_vec(&mut veda_tensor::rng::seeded(5), 1024, 1.0);
    c.bench_function("sfu_element_serial_softmax_1024", |b| {
        b.iter(|| {
            let mut sm = SoftmaxUnit::new(SfuConfig::default());
            for &x in &xs {
                sm.push(black_box(x));
            }
            sm.finish()
        })
    });
}

criterion_group!(benches, bench_pe_array, bench_sfu);
criterion_main!(benches);

//! Batched-decode benchmarks: the engine's continuous-batching tick
//! against equivalent one-at-a-time simulations, plus the scheduler's
//! batched cycle model on the paper's Llama-2 7B shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use veda::{Budget, EngineBuilder, Request, SimulationBuilder};
use veda_accel::schedule::DecodeScheduler;
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

fn mixed_requests(n: usize) -> Vec<Request> {
    let policies = [PolicyKind::Voting, PolicyKind::H2o, PolicyKind::SlidingWindow];
    (0..n)
        .map(|i| {
            let prompt: Vec<usize> = (0..16 + 2 * (i % 4)).map(|j| (j * 7 + i * 13) % 60 + 1).collect();
            Request::new(prompt, 8).policy(policies[i % policies.len()]).budget(Budget::Ratio(0.5))
        })
        .collect()
}

fn bench_engine_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_decode_8tok");
    group.sample_size(10);
    for &batch in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &n| {
            b.iter(|| {
                let mut engine = EngineBuilder::new().model(ModelConfig::tiny()).build().unwrap();
                for request in mixed_requests(n) {
                    engine.submit(black_box(request)).unwrap();
                }
                engine.run_to_completion().batched_total_cycles
            })
        });
    }
    // The one-at-a-time equivalent of batch=8 for comparison.
    group.bench_function("sequential_8", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for request in mixed_requests(8) {
                let mut sim = SimulationBuilder::new()
                    .model(ModelConfig::tiny())
                    .policy(request.policy)
                    .budget(request.budget)
                    .build()
                    .unwrap();
                total += sim.run(black_box(&request.prompt), request.max_new_tokens).total_cycles;
            }
            total
        })
    });
    group.finish();
}

fn bench_batched_cycle_model(c: &mut Criterion) {
    let sched = DecodeScheduler::veda_llama7b();
    let mut group = c.benchmark_group("decode_batch_llama7b_l512");
    for &batch in &[1usize, 8, 32] {
        let lens = vec![512usize; batch];
        group.bench_with_input(BenchmarkId::from_parameter(batch), &lens, |b, lens| {
            b.iter(|| sched.decode_batch(black_box(lens)).total_cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_batching, bench_batched_cycle_model);
criterion_main!(benches);

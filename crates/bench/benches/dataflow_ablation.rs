//! Fig. 8 (center) as a benchmark: cycle-model evaluation of the three
//! dataflow variants (the figure itself is printed by the `fig8_center`
//! binary; this tracks the model's own cost and asserts the ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_accel::attention::average_generation_attention_cycles;

fn bench_ablation(c: &mut Criterion) {
    let arch = ArchConfig::veda();
    let mut group = c.benchmark_group("dataflow_ablation");
    for variant in DataflowVariant::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(variant), &variant, |b, &v| {
            b.iter(|| average_generation_attention_cycles(black_box(&arch), v, 512, 1024, None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Microbenchmarks of the tensor kernels that dominate the functional
//! model: the two GEMV interpretations, softmax variants and FP16
//! conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use veda_tensor::{ops, softmax, Matrix, OnlineSoftmax};

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv");
    for &l in &[128usize, 1024] {
        let d = 128;
        let mut rng = veda_tensor::rng::seeded(1);
        let m = Matrix::from_vec(l, d, veda_tensor::rng::normal_vec(&mut rng, l * d, 1.0)).unwrap();
        let q = veda_tensor::rng::normal_vec(&mut rng, d, 1.0);
        let s = veda_tensor::rng::uniform_vec(&mut rng, l, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("inner_qk", l), &l, |b, _| {
            b.iter(|| ops::gemv_inner(black_box(&q), black_box(&m)))
        });
        group.bench_with_input(BenchmarkId::new("outer_sv", l), &l, |b, _| {
            b.iter(|| ops::gemv_outer(black_box(&s), black_box(&m)))
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    let xs = veda_tensor::rng::normal_vec(&mut veda_tensor::rng::seeded(2), 4096, 1.0);
    group.bench_function("two_pass_4096", |b| b.iter(|| softmax::softmax(black_box(&xs))));
    group.bench_function("online_4096", |b| {
        b.iter(|| {
            let mut os = OnlineSoftmax::new();
            for &x in &xs {
                os.push(black_box(x));
            }
            os.exp_sum()
        })
    });
    group.finish();
}

fn bench_fp16(c: &mut Criterion) {
    let xs = veda_tensor::rng::normal_vec(&mut veda_tensor::rng::seeded(3), 4096, 10.0);
    c.bench_function("fp16_quantize_4096", |b| {
        b.iter(|| xs.iter().map(|&x| veda_tensor::fp16::quantize_f32(black_box(x))).sum::<f32>())
    });
}

criterion_group!(benches, bench_gemv, bench_softmax, bench_fp16);
criterion_main!(benches);

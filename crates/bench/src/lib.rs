//! # veda-bench
//!
//! Experiment drivers that regenerate every table and figure of the VEDA
//! paper's evaluation section. Each experiment is a pure function returning
//! structured rows, shared by the report binaries (`fig8_left`,
//! `fig8_center`, `fig8_right`, `table1`, `table2`, `ablation_hparams`) and
//! the Criterion benches.
//!
//! | artifact | function | binary |
//! |---|---|---|
//! | Fig. 8 left (perplexity vs cache size) | [`fig8_left`] | `fig8_left` |
//! | Fig. 8 center (dataflow ablation) | [`fig8_center`] | `fig8_center` |
//! | Fig. 8 right (eviction speedup) | [`fig8_right`] | `fig8_right` |
//! | Table I (area/power breakdown) | [`veda_cost::table1()`] | `table1` |
//! | Table II (accelerator comparison) | [`veda_cost::table2()`] | `table2` |
//! | hyper-parameter ablation (extension) | [`hparam_ablation`] | `ablation_hparams` |

// Crate hygiene, enforced by veda-lint (rule crate-hygiene): no unsafe
// code under the determinism pins, no undocumented public surface.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_accel::attention::{average_generation_attention_cycles, eviction_speedup};
use veda_eviction::PolicyKind;
use veda_model::{Corpus, CorpusConfig, InductionConfig};

/// Scale of a quality experiment (trade fidelity for runtime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityScale {
    /// Number of corpus samples.
    pub samples: u64,
    /// Tokens per sample (the "maximum sequence length").
    pub sample_len: usize,
    /// Cache sizes to sweep.
    pub cache_sizes: &'static [usize],
}

impl QualityScale {
    /// Fast scale for CI / default binary runs: 8 samples × 1536 tokens.
    pub fn quick() -> Self {
        Self { samples: 8, sample_len: 1536, cache_sizes: &[96, 128, 256, 512, 1024] }
    }

    /// Paper scale: 1000 samples × 4096 tokens, cache 128..4096.
    pub fn paper() -> Self {
        Self { samples: 1000, sample_len: 4096, cache_sizes: &[128, 256, 512, 1024, 2048, 4096] }
    }
}

/// One point of Fig. 8 (left).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityPoint {
    /// Eviction policy.
    pub policy: PolicyKind,
    /// Cache budget.
    pub cache_size: usize,
    /// Perplexity on the synthetic corpus.
    pub perplexity: f64,
}

/// Builds a policy with parameters calibrated to the synthetic substrate:
/// the paper sets the voting reserved length to 32 for Llama-2's multi-token
/// attention sink and notes that hyper-parameters are "fine-tuned through
/// model-specific calibration"; the synthetic model has a single-position
/// sink, so the calibrated reserved length is 4 (matching Streaming-LLM's
/// 4-token sink for fairness).
pub fn calibrated_policy(kind: PolicyKind) -> Box<dyn veda_eviction::EvictionPolicy> {
    match kind {
        PolicyKind::Voting => Box::new(veda_eviction::VotingPolicy::new(veda_eviction::VotingConfig {
            b: 1.2,
            reserved_len: 4,
            ..veda_eviction::VotingConfig::default()
        })),
        other => other.build(),
    }
}

/// Fig. 8 (left): language-modeling perplexity of Streaming-LLM, H2O and
/// Voting across cache sizes.
pub fn fig8_left(scale: QualityScale) -> Vec<QualityPoint> {
    let corpus = Corpus::new(CorpusConfig::default());
    let lm = veda_model::InductionLm::new(InductionConfig::default(), &corpus);
    let mut out = Vec::new();
    for &cache in scale.cache_sizes {
        for policy in [PolicyKind::SlidingWindow, PolicyKind::H2o, PolicyKind::Voting] {
            let mut nll = 0.0;
            let mut tokens = 0usize;
            for sample_idx in 0..scale.samples {
                let sample = corpus.sample(sample_idx, scale.sample_len);
                let mut p = calibrated_policy(policy);
                let eval = lm.evaluate_sample(&sample, cache, p.as_mut(), &corpus);
                nll += eval.total_nll;
                tokens += eval.tokens;
            }
            out.push(QualityPoint { policy, cache_size: cache, perplexity: (nll / tokens as f64).exp() });
        }
    }
    out
}

/// One point of Fig. 8 (center).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// Generation length after the 512-token prompt.
    pub gen_len: usize,
    /// Dataflow variant.
    pub variant: DataflowVariant,
    /// Attention latency normalized to the baseline at the same length.
    pub normalized_latency: f64,
}

/// Fig. 8 (center): dataflow ablation — Baseline vs +F vs +F+E, normalized
/// average attention latency, prompt 512, generation 0..1024.
pub fn fig8_center() -> Vec<AblationPoint> {
    let arch = ArchConfig::veda();
    let mut out = Vec::new();
    for gen_len in [0usize, 128, 256, 512, 1024] {
        let base = average_generation_attention_cycles(&arch, DataflowVariant::Baseline, 512, gen_len, None);
        for variant in DataflowVariant::ALL {
            let cycles = average_generation_attention_cycles(&arch, variant, 512, gen_len, None);
            out.push(AblationPoint { gen_len, variant, normalized_latency: cycles / base });
        }
    }
    out
}

/// One point of Fig. 8 (right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Generation length.
    pub gen_len: usize,
    /// KV compression ratio (cache held at `ratio × 512`).
    pub kv_ratio: f64,
    /// Speedup over VEDA without eviction.
    pub speedup: f64,
}

/// Fig. 8 (right): speedup of voting-based cache eviction at KV ratios
/// 0.5/0.4/0.3/0.2 over generation lengths 128..1024 (prompt 512).
pub fn fig8_right() -> Vec<SpeedupPoint> {
    let arch = ArchConfig::veda();
    let mut out = Vec::new();
    for &ratio in &[0.5, 0.4, 0.3, 0.2] {
        for &gen_len in &[128usize, 256, 512, 1024] {
            out.push(SpeedupPoint {
                gen_len,
                kv_ratio: ratio,
                speedup: eviction_speedup(&arch, 512, gen_len, ratio),
            });
        }
    }
    out
}

/// One row of the threshold hyper-parameter ablation (extension beyond the
/// paper: sensitivity of the voting threshold `T = a·mean − b·σ`).
#[derive(Debug, Clone, PartialEq)]
pub struct HparamPoint {
    /// Mean coefficient.
    pub a: f32,
    /// Sigma coefficient.
    pub b: f32,
    /// Perplexity at the probe cache size.
    pub perplexity: f64,
}

/// Sweeps the voting threshold coefficients at a fixed cache size.
pub fn hparam_ablation(cache_size: usize, samples: u64, sample_len: usize) -> Vec<HparamPoint> {
    use veda_eviction::{VotingConfig, VotingPolicy};
    let corpus = Corpus::new(CorpusConfig::default());
    let lm_cfg = InductionConfig::default();
    let lm = veda_model::InductionLm::new(lm_cfg, &corpus);
    let mut out = Vec::new();
    for &a in &[0.5f32, 0.75, 1.0, 1.25] {
        for &b in &[0.0f32, 0.1, 0.2, 0.4] {
            let mut nll = 0.0;
            let mut tokens = 0usize;
            for s in 0..samples {
                let sample = corpus.sample(s, sample_len);
                let mut policy = VotingPolicy::new(VotingConfig { a, b, ..VotingConfig::default() });
                let eval = lm.evaluate_sample(&sample, cache_size, &mut policy, &corpus);
                nll += eval.total_nll;
                tokens += eval.tokens;
            }
            out.push(HparamPoint { a, b, perplexity: (nll / tokens as f64).exp() });
        }
    }
    out
}

/// Renders Fig. 8 (left) rows as an aligned text table.
pub fn render_quality(points: &[QualityPoint]) -> String {
    let mut out = format!("{:<10} {:>12} {:>12} {:>12}\n", "Cache", "Streaming", "H2O", "Voting");
    let mut caches: Vec<usize> = points.iter().map(|p| p.cache_size).collect();
    caches.dedup();
    for cache in caches {
        let get = |k: PolicyKind| {
            points.iter().find(|p| p.cache_size == cache && p.policy == k).map_or(f64::NAN, |p| p.perplexity)
        };
        out.push_str(&format!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3}\n",
            cache,
            get(PolicyKind::SlidingWindow),
            get(PolicyKind::H2o),
            get(PolicyKind::Voting)
        ));
    }
    out
}

/// Renders Fig. 8 (center) rows as an aligned text table.
pub fn render_ablation(points: &[AblationPoint]) -> String {
    let mut out =
        format!("{:<10} {:>10} {:>12} {:>14}\n", "GenLen", "Baseline", "Baseline+F", "Baseline+F+E");
    let mut lens: Vec<usize> = points.iter().map(|p| p.gen_len).collect();
    lens.dedup();
    for len in lens {
        let get = |v: DataflowVariant| {
            points
                .iter()
                .find(|p| p.gen_len == len && p.variant == v)
                .map_or(f64::NAN, |p| p.normalized_latency)
        };
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>12.2} {:>14.2}\n",
            len,
            get(DataflowVariant::Baseline),
            get(DataflowVariant::Flexible),
            get(DataflowVariant::FlexibleElementSerial)
        ));
    }
    out
}

/// Renders Fig. 8 (right) rows as an aligned text table.
pub fn render_speedup(points: &[SpeedupPoint]) -> String {
    let mut out =
        format!("{:<10} {:>10} {:>10} {:>10} {:>10}\n", "GenLen", "0.5KV", "0.4KV", "0.3KV", "0.2KV");
    let mut lens: Vec<usize> = points.iter().map(|p| p.gen_len).collect();
    lens.sort_unstable();
    lens.dedup();
    for len in lens {
        let get = |r: f64| {
            points
                .iter()
                .find(|p| p.gen_len == len && (p.kv_ratio - r).abs() < 1e-9)
                .map_or(f64::NAN, |p| p.speedup)
        };
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
            len,
            get(0.5),
            get(0.4),
            get(0.3),
            get(0.2)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_points_cover_grid() {
        let pts = fig8_center();
        assert_eq!(pts.len(), 5 * 3);
        // Baseline normalizes to 1.0.
        assert!(pts.iter().filter(|p| p.variant == DataflowVariant::Baseline).all(|p| (p
            .normalized_latency
            - 1.0)
            .abs()
            < 1e-12));
    }

    #[test]
    fn center_ordering_holds() {
        for p in fig8_center() {
            match p.variant {
                DataflowVariant::Baseline => {}
                DataflowVariant::Flexible => assert!(p.normalized_latency < 1.0),
                DataflowVariant::FlexibleElementSerial => assert!(p.normalized_latency < 0.75),
            }
        }
    }

    #[test]
    fn right_corners_match_paper() {
        let pts = fig8_right();
        let get = |len: usize, r: f64| {
            pts.iter().find(|p| p.gen_len == len && (p.kv_ratio - r).abs() < 1e-9).unwrap().speedup
        };
        assert!((1.8..2.8).contains(&get(128, 0.5)), "{}", get(128, 0.5));
        assert!((8.0..12.0).contains(&get(1024, 0.2)), "{}", get(1024, 0.2));
    }

    #[test]
    fn renderers_produce_aligned_tables() {
        assert!(render_ablation(&fig8_center()).contains("Baseline+F+E"));
        assert!(render_speedup(&fig8_right()).contains("0.2KV"));
    }
}

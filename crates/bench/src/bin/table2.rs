//! Regenerates Table II: comparison with Sanger/SpAtten (published
//! numbers + technology scaling) and the end-to-end GPU comparison.
fn main() {
    let t = veda_cost::table2(&veda_accel::ArchConfig::veda());
    print!("{}", t.render());
}

//! Diagnostic: shows what each policy keeps resident at the end of a
//! sample (ages and positions), plus its perplexity.
//!
//! Usage: `policy_probe [POLICY ...]` — policies by name (`h2o`,
//! `voting`, `sliding_window`, …); defaults to h2o/voting/sliding_window.
//! `VA`/`VB` set the voting threshold coefficients.
fn main() {
    use veda_model::*;
    let policies: Vec<veda_eviction::PolicyKind> = std::env::args()
        .skip(1)
        .map(|arg| {
            arg.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    let policies = if policies.is_empty() {
        vec![
            veda_eviction::PolicyKind::H2o,
            veda_eviction::PolicyKind::Voting,
            veda_eviction::PolicyKind::SlidingWindow,
        ]
    } else {
        policies
    };
    let corpus = Corpus::new(CorpusConfig::default());
    let lm = InductionLm::new(InductionConfig::default(), &corpus);
    let n = 1200;
    let sample = corpus.sample(0, n);
    let a: f32 = std::env::var("VA").map(|v| v.parse().unwrap()).unwrap_or(1.0);
    let b: f32 = std::env::var("VB").map(|v| v.parse().unwrap()).unwrap_or(0.0);
    for kind in policies {
        let mut p: Box<dyn veda_eviction::EvictionPolicy> = if kind == veda_eviction::PolicyKind::Voting {
            Box::new(veda_eviction::VotingPolicy::new(veda_eviction::VotingConfig {
                a,
                b,
                reserved_len: 4,
                per_head_votes: false,
            }))
        } else {
            veda_bench::calibrated_policy(kind)
        };
        let (eval, residents) = lm.evaluate_sample_with_residents(&sample, 128, p.as_mut(), &corpus);
        let recent = residents.iter().filter(|&&r| r + 200 >= n).count();
        let stale = residents.iter().filter(|&&r| r + 600 < n).count();
        let entities = residents.iter().filter(|&&r| corpus.is_entity(sample[r])).count();
        let cur_topic = corpus.topic_at(n - 1);
        let cur_entities = residents
            .iter()
            .filter(|&&r| corpus.is_entity(sample[r]) && corpus.topic_at(r) == cur_topic)
            .count();
        println!(
            "{kind:>16}: ppl {:>7.1}  recent {recent:>4}  stale {stale:>4}  entity-anchors {entities:>3} (current topic {cur_entities:>3})  sample: {:?}",
            eval.perplexity(),
            residents.iter().step_by(16).collect::<Vec<_>>()
        );
    }
}

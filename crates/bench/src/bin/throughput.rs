//! Wall-clock decode throughput baseline: serial vs session-parallel
//! engine ticks across a batch sweep, plus the allocating vs scratch
//! forward path, written to `BENCH_decode.json` — a chunked-prefill
//! interference sweep (chunk size × prompt length → TTFT p50/p99 and
//! decode tokens/s in *virtual* time), written to `BENCH_prefill.json` —
//! and a cluster-plane sweep (shard count × routing policy over a
//! shared-prefix workload → throughput, latency, rejection rate, prefix
//! hit rate and migration traffic), written to `BENCH_cluster.json` —
//! and a fault-plane sweep (fault scenario × router × load shedding →
//! goodput, p99 end-to-end latency, retries, dead letters, shed count
//! and availability), written to `BENCH_faults.json` — and a
//! prefix-cache churn sweep (cache byte bound × TTL × spill on/off over
//! a pressured shared-prefix run → hit rate, admitted count and
//! spill/fill/expiry traffic), written to `BENCH_prefix.json` — so
//! future PRs have pinned perf references.
//!
//! ```sh
//! cargo run --release -p veda-bench --bin throughput            # full sweep
//! cargo run --release -p veda-bench --bin throughput -- --quick # CI-sized
//! ```

use std::time::Instant;

use veda::{Budget, EngineBuilder, PrefixCacheConfig, PrefixCacheStats, Request, SessionPhase, TokenEvent};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;
use veda_serving::{
    AdmissionConfig, Cluster, ClusterConfig, ClusterReport, FaultConfig, FaultPlan, MigrationConfig,
    RequestMix, RetryPolicy, RouterKind, SchedKind, Server, ServerConfig, ServingRequest, StageSummaries,
    Workload,
};
use veda_telemetry::nearest_rank;

struct Args {
    quick: bool,
    json: String,
    prefill_json: String,
    cluster_json: String,
    faults_json: String,
    prefix_json: String,
    gen_tokens: usize,
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut parsed = Args {
        quick: false,
        json: "BENCH_decode.json".to_string(),
        prefill_json: "BENCH_prefill.json".to_string(),
        cluster_json: "BENCH_cluster.json".to_string(),
        faults_json: "BENCH_faults.json".to_string(),
        prefix_json: "BENCH_prefix.json".to_string(),
        gen_tokens: 32,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = args.next().ok_or("missing value after --json")?,
            "--prefill-json" => {
                parsed.prefill_json = args.next().ok_or("missing value after --prefill-json")?;
            }
            "--cluster-json" => {
                parsed.cluster_json = args.next().ok_or("missing value after --cluster-json")?;
            }
            "--faults-json" => {
                parsed.faults_json = args.next().ok_or("missing value after --faults-json")?;
            }
            "--prefix-json" => {
                parsed.prefix_json = args.next().ok_or("missing value after --prefix-json")?;
            }
            "--gen" => parsed.gen_tokens = args.next().ok_or("missing value after --gen")?.parse()?,
            "--help" | "-h" => {
                println!(
                    "usage: throughput [--quick] [--json PATH] [--prefill-json PATH] \
                     [--cluster-json PATH] [--faults-json PATH] [--prefix-json PATH] [--gen N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)").into()),
        }
    }
    Ok(parsed)
}

/// Seeded request mix: every session voting-evicted at ratio 0.5, prompts
/// long enough that attention over the resident cache is real work.
fn requests(n: usize, prompt_len: usize, gen_tokens: usize, vocab: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let prompt: Vec<usize> =
                (0..prompt_len + (i % 5)).map(|j| (j * 7 + i * 13) % (vocab - 1) + 1).collect();
            Request::new(prompt, gen_tokens).policy(PolicyKind::Voting).budget(Budget::Ratio(0.5))
        })
        .collect()
}

struct EnginePoint {
    batch: usize,
    threads: usize,
    tokens: usize,
    wall_s: f64,
    tokens_per_s: f64,
    ns_per_token: f64,
}

/// One engine measurement: build, prefill (unmeasured), then time the
/// decode loop to completion.
fn measure_engine(model: &ModelConfig, batch: usize, threads: usize, gen_tokens: usize) -> EnginePoint {
    let mut engine =
        EngineBuilder::new().model(model.clone()).decode_threads(threads).build().expect("valid config");
    for request in requests(batch, 48, gen_tokens, model.vocab_size) {
        engine.submit(request).expect("valid request");
    }
    let start = Instant::now();
    while engine.active_sessions() > 0 {
        engine.step();
    }
    let wall_s = start.elapsed().as_secs_f64();
    let report = engine.drain_report();
    let tokens = report.total_tokens;
    EnginePoint {
        batch,
        threads,
        tokens,
        wall_s,
        tokens_per_s: tokens as f64 / wall_s.max(1e-12),
        ns_per_token: wall_s * 1e9 / tokens.max(1) as f64,
    }
}

struct PrefillPoint {
    /// Prompt tokens per prefilling session per tick; 0 = instant
    /// (off-clock) prefill.
    chunk: usize,
    prompt_len: usize,
    ttft_p50_us: f64,
    ttft_p99_us: f64,
    /// Decode throughput (generated tokens per *virtual* second) over the
    /// probe phase — the interference signal: prefill chunks lengthen the
    /// mixed ticks the background decode sessions ride on.
    decode_tokens_per_s: f64,
}

/// Nearest-rank percentile of an unsorted sample set (the same exact
/// percentile the serving reports use, via `veda_telemetry`).
fn percentile_us(samples: &mut [u64], q: f64) -> f64 {
    samples.sort_unstable();
    nearest_rank(samples, q).expect("probe sets are non-empty") as f64
}

/// Chunked-prefill interference, measured in virtual time on the tiny
/// geometry: 4 long-running decode sessions share the engine with a
/// sequence of prefill probes of `prompt_len` tokens each; per probe we
/// record TTFT in engine cycles (converted to µs at the architecture
/// clock), and across the whole probe phase the decode tokens/s the
/// background sessions sustained.
fn measure_prefill(model: &ModelConfig, chunk: usize, prompt_len: usize, probes: usize) -> PrefillPoint {
    let mut builder = EngineBuilder::new().model(model.clone());
    if chunk > 0 {
        builder = builder.prefill_chunk(chunk);
    }
    let mut engine = builder.build().expect("valid config");
    let clock_ghz = engine.arch().clock_ghz;

    // Background decoders, sized to outlive every probe.
    let bg_new = probes * (prompt_len + 20) + 32;
    let background: Vec<_> = (0..4)
        .map(|i| {
            let prompt: Vec<usize> = (0..16).map(|j| (j * 7 + i * 13) % (model.vocab_size - 1) + 1).collect();
            engine
                .submit(Request::new(prompt, bg_new).policy(PolicyKind::Voting).budget(Budget::Ratio(0.5)))
                .expect("valid request")
        })
        .collect();
    while background.iter().any(|&s| engine.session_phase(s) == Some(SessionPhase::Prefilling)) {
        engine.step();
    }

    let mut ttft_us: Vec<u64> = Vec::with_capacity(probes);
    let mut span_cycles = 0u64;
    let mut span_decode_tokens = 0u64;
    for p in 0..probes {
        let prompt: Vec<usize> =
            (0..prompt_len).map(|j| (j * 11 + p * 29) % (model.vocab_size - 1) + 1).collect();
        let probe = engine
            .submit(Request::new(prompt, 4).policy(PolicyKind::Voting).budget(Budget::Ratio(0.5)))
            .expect("valid request");
        let mut probe_cycles = 0u64;
        let mut first_token_at: Option<u64> = None;
        while engine.is_active(probe) {
            let tick = engine.step();
            probe_cycles += tick.batch_cycles;
            span_cycles += tick.batch_cycles;
            span_decode_tokens +=
                tick.events.iter().filter(|e| e.generated_token().is_some() && e.session() != probe).count()
                    as u64;
            if first_token_at.is_none()
                && tick
                    .events
                    .iter()
                    .any(|e| e.session() == probe && matches!(e, TokenEvent::Generated { .. }))
            {
                first_token_at = Some(probe_cycles);
            }
        }
        let cycles = first_token_at.expect("probe generated at least one token");
        ttft_us.push((cycles as f64 / (clock_ghz * 1e3)).round() as u64);
    }
    assert!(
        background.iter().all(|&s| engine.is_active(s)),
        "background sessions must outlive the probe phase"
    );

    let span_seconds = span_cycles as f64 / (clock_ghz * 1e9);
    PrefillPoint {
        chunk,
        prompt_len,
        ttft_p50_us: percentile_us(&mut ttft_us, 0.50),
        ttft_p99_us: percentile_us(&mut ttft_us, 0.99),
        decode_tokens_per_s: span_decode_tokens as f64 / span_seconds.max(1e-12),
    }
}

struct PrefixCachePoint {
    /// Shared prefix length of the workload's prompts.
    prefix_len: usize,
    /// On-clock prefill tokens with the cache disabled / enabled (the
    /// delta is the prefill work the sharing removed).
    prefill_tokens_disabled: usize,
    prefill_tokens_enabled: usize,
    stats: PrefixCacheStats,
}

/// Shared-prefix reuse, measured in virtual time: `waves` waves of 4
/// requests sharing a `prefix_len`-token prefix (plus private suffixes)
/// run through a chunked-prefill engine, once with the prefix cache off
/// and once on. Deterministic — a model property like the interference
/// sweep, not a wall-clock measurement.
fn measure_prefix_cache(model: &ModelConfig, prefix_len: usize, waves: usize) -> PrefixCachePoint {
    let run = |enabled: bool| {
        let mut builder = EngineBuilder::new().model(model.clone()).prefill_chunk(8);
        if enabled {
            builder = builder.prefix_cache(PrefixCacheConfig {
                min_match_tokens: 4,
                max_entries: 32,
                ..PrefixCacheConfig::default()
            });
        }
        let mut engine = builder.build().expect("valid config");
        let mut prefill_tokens = 0;
        for wave in 0..waves {
            for i in 0..4 {
                let mut prompt: Vec<usize> =
                    (0..prefix_len).map(|j| (j * 7 + 3) % (model.vocab_size - 1) + 1).collect();
                prompt.extend((0..6 + i).map(|j| (j * 11 + wave * 5 + i * 17) % (model.vocab_size - 1) + 1));
                engine
                    .submit(Request::new(prompt, 4).policy(PolicyKind::Voting).budget(Budget::Ratio(0.5)))
                    .expect("valid request");
            }
            while engine.active_sessions() > 0 {
                prefill_tokens += engine.step().prefill_tokens;
            }
        }
        (prefill_tokens, engine.prefix_cache_stats())
    };
    let (prefill_tokens_disabled, _) = run(false);
    let (prefill_tokens_enabled, stats) = run(true);
    PrefixCachePoint { prefix_len, prefill_tokens_disabled, prefill_tokens_enabled, stats }
}

struct ClusterPoint {
    shards: usize,
    router: RouterKind,
    completed: usize,
    rejected: usize,
    ttft_p50_ticks: u64,
    ttft_p99_ticks: u64,
    tokens_per_tick: f64,
    prefix_hit_rate: f64,
    migrations: u64,
    migration_bytes: u64,
}

impl ClusterPoint {
    fn of(shards: usize, report: &ClusterReport) -> Self {
        let ttft = report.ttft();
        Self {
            shards,
            router: report.router,
            completed: report.completed(),
            rejected: report.rejected(),
            ttft_p50_ticks: ttft.map_or(0, |t| t.p50),
            ttft_p99_ticks: ttft.map_or(0, |t| t.p99),
            tokens_per_tick: report.generated_tokens() as f64 / (report.ticks.max(1)) as f64,
            prefix_hit_rate: report.prefix_hit_rate(),
            migrations: report.migrations,
            migration_bytes: report.migration_bytes,
        }
    }

    fn json_row(&self, scenario: &str) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"shards\": {}, \"router\": \"{}\", \"completed\": {}, \
             \"rejected\": {}, \"ttft_p50_ticks\": {}, \"ttft_p99_ticks\": {}, \
             \"tokens_per_tick\": {:.3}, \"prefix_hit_rate\": {:.4}, \"migrations\": {}, \
             \"migration_bytes\": {}}}",
            scenario,
            self.shards,
            self.router,
            self.completed,
            self.rejected,
            self.ttft_p50_ticks,
            self.ttft_p99_ticks,
            self.tokens_per_tick,
            self.prefix_hit_rate,
            self.migrations,
            self.migration_bytes,
        )
    }
}

/// Shard × router sweep over shared-prefix Poisson traffic (the
/// `cluster_stack` acceptance workload): 5 prompt groups each with a
/// 24-token shared prefix, prefix-cache engines on every shard, ample
/// per-shard capacity so routing quality — not admission pressure — is
/// the signal. Five groups is deliberately coprime to every swept shard
/// count: groups rotate by arrival index exactly like the round-robin
/// cursor, so a group count that divided the shard count would hand
/// round-robin accidental perfect affinity. Virtual time; deterministic.
fn measure_cluster(shards: usize, router: RouterKind, requests: usize) -> ClusterPoint {
    let mix = RequestMix {
        shared_prefix_len: 24,
        prefix_groups: 5,
        prompt_len: (3, 6),
        max_new_tokens: (4, 8),
        budgets: vec![Budget::Unbounded],
        ..RequestMix::default()
    };
    let engines: Vec<_> = (0..shards)
        .map(|_| {
            EngineBuilder::new()
                .model(ModelConfig::tiny())
                .prefix_cache(PrefixCacheConfig {
                    min_match_tokens: 8,
                    max_entries: 16,
                    ..PrefixCacheConfig::default()
                })
                .build()
                .expect("valid config")
        })
        .collect();
    let workload = Workload::poisson(19, 0.6, requests, mix);
    let config = ClusterConfig {
        shards,
        per_shard_capacity_bytes: 1 << 20,
        max_queue_depth: 64,
        router,
        sched: SchedKind::Fcfs,
        migration: Some(MigrationConfig::default()),
        ..ClusterConfig::default()
    };
    let report = Cluster::new(engines, workload, config).run();
    ClusterPoint::of(shards, &report)
}

/// A pressured single-server run for the stage-waterfall reference:
/// chunked prefill on a tight KV budget with a preemptive scheduler, so
/// the waterfall's stages (queueing, on-clock prefill, decode, swap
/// wait) all carry real ticks. Virtual time; deterministic.
fn measure_server_waterfall(requests: usize) -> Option<StageSummaries> {
    let engine =
        EngineBuilder::new().model(ModelConfig::tiny()).prefill_chunk(4).build().expect("valid config");
    let per_token = engine.kv_bytes_per_token();
    let workload = Workload::poisson(11, 0.8, requests, RequestMix::default());
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: 96 * per_token, max_queue_depth: 64 },
        sched: SchedKind::Priority,
        ..ServerConfig::default()
    };
    Server::new(engine, workload, config).run().stages()
}

/// Renders per-stage p50/p99 rows for a `"stage_waterfall"` JSON array.
fn stage_waterfall_json(stages: Option<&StageSummaries>) -> String {
    let mut out = String::new();
    if let Some(stages) = stages {
        let rows = stages.rows();
        for (i, (name, summary)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"p50_ticks\": {}, \"p99_ticks\": {}}}{}\n",
                name,
                summary.p50,
                summary.p99,
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
    }
    out
}

/// Migration under deliberate imbalance: size-alternating requests all
/// arriving at tick 0, round-robin across 2 tight shards with aggressive
/// thresholds — round-robin piles the large requests onto shard 0, and
/// migration visibly rebalances (nonzero migrations / bytes in the JSON).
fn measure_migration_demo() -> (ClusterPoint, Option<StageSummaries>) {
    let per_token =
        EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config").kv_bytes_per_token();
    let arrivals = (0..6)
        .map(|i| {
            let (prompt_len, max_new) = if i % 2 == 0 { (30, 10) } else { (4, 4) };
            let prompt: Vec<usize> = (0..prompt_len).map(|j| (i + 3 * j) % 50 + 1).collect();
            (0u64, ServingRequest { request: Request::new(prompt, max_new), priority: 0 })
        })
        .collect();
    let engines: Vec<_> = (0..2)
        .map(|_| EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config"))
        .collect();
    let config = ClusterConfig {
        shards: 2,
        per_shard_capacity_bytes: 200 * per_token,
        max_queue_depth: 64,
        router: RouterKind::RoundRobin,
        sched: SchedKind::Fcfs,
        migration: Some(MigrationConfig { hot_fraction: 0.5, cold_fraction: 0.5, max_per_tick: 1 }),
        ..ClusterConfig::default()
    };
    let report = Cluster::new(engines, Workload::trace(arrivals), config).run();
    (ClusterPoint::of(2, &report), report.stages())
}

struct FaultPoint {
    scenario: &'static str,
    router: RouterKind,
    shed_on: bool,
    completed: usize,
    rejected: usize,
    retries: u64,
    timeouts: u64,
    dead_letters: u64,
    shed: u64,
    goodput: f64,
    e2e_p99_ticks: u64,
    availability: f64,
    recovery_p99_ticks: u64,
    swap_link_cycles: u64,
}

impl FaultPoint {
    fn json_row(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"router\": \"{}\", \"shed\": {}, \"completed\": {}, \
             \"rejected\": {}, \"retries\": {}, \"timeouts\": {}, \"dead_letters\": {}, \
             \"shed_count\": {}, \"goodput_per_tick\": {:.4}, \"e2e_p99_ticks\": {}, \
             \"availability\": {:.4}, \"recovery_p99_ticks\": {}, \"swap_link_cycles\": {}}}",
            self.scenario,
            self.router,
            self.shed_on,
            self.completed,
            self.rejected,
            self.retries,
            self.timeouts,
            self.dead_letters,
            self.shed,
            self.goodput,
            self.e2e_p99_ticks,
            self.availability,
            self.recovery_p99_ticks,
            self.swap_link_cycles,
        )
    }
}

/// Fault-plane sweep point: one scenario × router × shedding run over a
/// 2-shard cluster under a pressured Poisson arrival stream. Scenarios
/// reuse the same seed and workload, so every delta against `baseline`
/// is the fault plane's doing. Virtual time; deterministic.
fn measure_faults(scenario: &'static str, router: RouterKind, shed_on: bool, requests: usize) -> FaultPoint {
    let plan = match scenario {
        "baseline" => FaultPlan::default(),
        "crash_recover" => FaultPlan::parse("crash@8:shard=1:recover=48:drain=2").expect("valid spec"),
        "crash_permanent" => FaultPlan::parse("crash@8:shard=1").expect("valid spec"),
        "degraded_link" => FaultPlan::parse("degrade@4-400:shard=0:bw=0.1").expect("valid spec"),
        other => panic!("unknown fault scenario {other:?}"),
    };
    let engines: Vec<_> = (0..2)
        .map(|_| {
            EngineBuilder::new().model(ModelConfig::tiny()).prefill_chunk(4).build().expect("valid config")
        })
        .collect();
    let workload = Workload::poisson(7, 2.5, requests, RequestMix::default());
    let config = ClusterConfig {
        shards: 2,
        per_shard_capacity_bytes: 10 << 10,
        max_queue_depth: 12,
        router,
        // Preemptive tiers + tight KV keep real swap DMA on the host
        // link, so the degraded_link scenario has traffic to slow down.
        sched: SchedKind::Priority,
        faults: Some(FaultConfig {
            plan,
            retry: RetryPolicy::default(),
            ttft_deadline: None,
            e2e_deadline: Some(512),
            shed_watermark: shed_on.then_some(0.6),
        }),
        ..ClusterConfig::default()
    };
    let report = Cluster::new(engines, workload, config).run();
    FaultPoint {
        scenario,
        router,
        shed_on,
        completed: report.completed(),
        rejected: report.rejected(),
        retries: report.retries,
        timeouts: report.timeouts,
        dead_letters: report.dead_letters,
        shed: report.shed,
        goodput: report.goodput(),
        e2e_p99_ticks: report.e2e().map_or(0, |s| s.p99),
        availability: report.availability(),
        recovery_p99_ticks: report.recovery().map_or(0, |s| s.p99),
        swap_link_cycles: report.shards.iter().map(|s| s.swap_cycles).sum(),
    }
}

struct PrefixChurnPoint {
    cache_kb: u64,
    ttl: u64,
    spill: bool,
    admitted: usize,
    completed: usize,
    rejected: usize,
    stats: PrefixCacheStats,
}

impl PrefixChurnPoint {
    fn json_row(&self) -> String {
        format!(
            "    {{\"cache_kb\": {}, \"ttl_ticks\": {}, \"spill\": {}, \"admitted\": {}, \
             \"completed\": {}, \"rejected\": {}, \"hit_rate\": {:.4}, \"hits\": {}, \
             \"misses\": {}, \"evictions\": {}, \"expiries\": {}, \"spills\": {}, \"fills\": {}, \
             \"spill_bytes\": {}, \"fill_bytes\": {}, \"host_entries\": {}}}",
            self.cache_kb,
            self.ttl,
            self.spill,
            self.admitted,
            self.completed,
            self.rejected,
            self.stats.hit_rate(),
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.expiries,
            self.stats.spills,
            self.stats.fills,
            self.stats.spill_bytes,
            self.stats.fill_bytes,
            self.stats.host_entries,
        )
    }
}

/// Prefix-cache churn under admission pressure: a single pressured
/// server (32 KiB HBM, queue depth 6) over Poisson shared-prefix
/// traffic (2 groups, 16-token shared prefix, short private suffixes),
/// with the engine's cache byte-starved so entries actually churn. The
/// swept knobs are the v2 cache's: byte bound × TTL × spill on/off.
/// With spill on, evicted-for-room entries move to the host tier and
/// later arrivals still hit them (paying the fill DMA once), so their
/// shared span skips on-clock prefill and the queue turns over faster —
/// the drop-on-evict configuration re-prefills the whole prompt instead
/// and screen-rejects more arrivals. Virtual time; deterministic.
fn measure_prefix_churn(cache_kb: u64, ttl: u64, spill: bool, requests: usize) -> PrefixChurnPoint {
    let engine = match EngineBuilder::new()
        .model(ModelConfig::tiny())
        .prefill_chunk(4)
        .prefix_cache(PrefixCacheConfig {
            min_match_tokens: 4,
            max_entries: 16,
            max_bytes: cache_kb << 10,
            ttl_ticks: ttl,
            spill,
        })
        .build()
    {
        Ok(engine) => engine,
        Err(err) => panic!("churn-probe engine config is static and valid: {err}"),
    };
    let mix = RequestMix {
        shared_prefix_len: 16,
        prefix_groups: 2,
        prompt_len: (4, 7),
        budgets: vec![Budget::Unbounded],
        ..RequestMix::default()
    };
    let workload = Workload::poisson(29, 0.8, requests, mix);
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: 32 << 10, max_queue_depth: 6 },
        sched: SchedKind::Fcfs,
        ..ServerConfig::default()
    };
    let report = Server::new(engine, workload, config).run();
    PrefixChurnPoint {
        cache_kb,
        ttl,
        spill,
        admitted: report.admitted,
        completed: report.completed,
        rejected: report.rejected(),
        stats: report.engine.prefix,
    }
}

struct ForwardPoint {
    label: &'static str,
    ns_per_token: f64,
}

/// Times the allocating `forward_in` against the scratch path on one
/// sequence with a warm cache of `resident` tokens. Best of three passes
/// per path, to shave scheduler noise off the shared-host numbers.
fn measure_forward(model: &ModelConfig, resident: usize, tokens: usize) -> Vec<ForwardPoint> {
    use veda_model::TransformerModel;
    let m = TransformerModel::new(model.clone());
    let token = |i: usize| (i * 11 + 1) % model.vocab_size;
    let mut out = Vec::new();
    const PASSES: usize = 3;

    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut state = m.new_state();
        for pos in 0..resident {
            m.forward_in(&mut state, token(pos), pos);
        }
        let start = Instant::now();
        for i in 0..tokens {
            std::hint::black_box(m.forward_in(&mut state, token(resident + i), resident + i));
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / tokens as f64);
    }
    out.push(ForwardPoint { label: "forward_alloc", ns_per_token: best });

    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut state = m.new_state();
        state.reserve(resident + tokens + 1, model.d_model);
        let mut scratch = m.new_scratch(resident + tokens + 1);
        for pos in 0..resident {
            m.forward_with_scratch(&mut state, token(pos), pos, &mut scratch);
        }
        let start = Instant::now();
        for i in 0..tokens {
            m.forward_with_scratch(&mut state, token(resident + i), resident + i, &mut scratch);
            std::hint::black_box(scratch.logits());
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / tokens as f64);
    }
    out.push(ForwardPoint { label: "forward_scratch", ns_per_token: best });
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let (model, model_name, batches, threads_list, forward_tokens) = if args.quick {
        (ModelConfig::tiny(), "tiny", vec![1usize, 4, 8], vec![1usize, 2], 64usize)
    } else {
        (ModelConfig::small(), "small", vec![1usize, 4, 8, 16], vec![1usize, 2, 4], 128usize)
    };
    let host_parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    println!("== decode throughput: model {model_name}, {} tokens/request ==", args.gen_tokens);
    println!("   host parallelism: {host_parallelism}\n");

    // Forward-path comparison on both geometries: the tiny model is where
    // per-token allocations are a visible fraction of the work; the sweep
    // model is compute-bound, so its scratch delta is noise-level — the
    // durable guarantee there is the zero-allocation pin
    // (crates/model/tests/zero_alloc.rs), not wall-clock.
    let mut forward_models = vec![(ModelConfig::tiny(), "tiny")];
    if !args.quick {
        forward_models.push((model.clone(), model_name));
    }
    let mut forward_rows: Vec<(String, f64, f64)> = Vec::new();
    for (fwd_model, fwd_name) in &forward_models {
        let forward = measure_forward(fwd_model, 64, forward_tokens);
        for p in &forward {
            println!("   {fwd_name:<6} {:<16} {:>12.0} ns/token", p.label, p.ns_per_token);
        }
        let alloc_ns = forward[0].ns_per_token;
        let scratch_ns = forward[1].ns_per_token;
        println!("   {fwd_name:<6} scratch speedup  {:>12.2}x\n", alloc_ns / scratch_ns);
        forward_rows.push((fwd_name.to_string(), alloc_ns, scratch_ns));
    }

    let mut points: Vec<EnginePoint> = Vec::new();
    println!("   {:>5} {:>8} {:>12} {:>14} {:>12}", "batch", "threads", "tokens/s", "ns/token", "speedup");
    for &batch in &batches {
        let mut serial_tps = 0.0;
        for &threads in &threads_list {
            let p = measure_engine(&model, batch, threads, args.gen_tokens);
            if threads == 1 {
                serial_tps = p.tokens_per_s;
            }
            println!(
                "   {:>5} {:>8} {:>12.1} {:>14.0} {:>11.2}x",
                p.batch,
                p.threads,
                p.tokens_per_s,
                p.ns_per_token,
                p.tokens_per_s / serial_tps.max(1e-12),
            );
            points.push(p);
        }
    }

    // Chunked-prefill interference sweep: chunk size × prompt length →
    // TTFT p50/p99 and background decode tokens/s, in virtual time (the
    // numbers are deterministic — the sweep is a model property, not a
    // wall-clock measurement, so it runs on the tiny geometry in both
    // modes).
    let (chunks, prompt_lens, probes) = if args.quick {
        (vec![0usize, 4, 16], vec![24usize, 64], 4usize)
    } else {
        (vec![0usize, 4, 16, 64], vec![32usize, 128, 256], 8usize)
    };
    let prefill_model = ModelConfig::tiny();
    println!("\n== chunked-prefill interference (virtual time, tiny model; chunk 0 = instant) ==");
    println!(
        "   {:>6} {:>8} {:>12} {:>12} {:>16}",
        "chunk", "prompt", "ttft_p50_us", "ttft_p99_us", "decode tok/s"
    );
    let mut prefill_points: Vec<PrefillPoint> = Vec::new();
    for &chunk in &chunks {
        for &prompt_len in &prompt_lens {
            let p = measure_prefill(&prefill_model, chunk, prompt_len, probes);
            println!(
                "   {:>6} {:>8} {:>12.0} {:>12.0} {:>16.1}",
                p.chunk, p.prompt_len, p.ttft_p50_us, p.ttft_p99_us, p.decode_tokens_per_s
            );
            prefill_points.push(p);
        }
    }
    let mut prefill_json = String::new();
    prefill_json.push_str("{\n");
    prefill_json.push_str("  \"model\": \"tiny\",\n");
    prefill_json.push_str(&format!("  \"probes_per_point\": {probes},\n"));
    prefill_json.push_str(
        "  \"note\": \"chunk 0 = instant (off-clock) prefill; TTFT in virtual microseconds at the \
         architecture clock, decode_tokens_per_s is the 4 background decode sessions' virtual \
         throughput while prefill probes interfere\",\n",
    );
    prefill_json.push_str("  \"sweep\": [\n");
    for (i, p) in prefill_points.iter().enumerate() {
        prefill_json.push_str(&format!(
            "    {{\"chunk\": {}, \"prompt_len\": {}, \"ttft_p50_us\": {:.1}, \
             \"ttft_p99_us\": {:.1}, \"decode_tokens_per_s\": {:.1}}}{}\n",
            p.chunk,
            p.prompt_len,
            p.ttft_p50_us,
            p.ttft_p99_us,
            p.decode_tokens_per_s,
            if i + 1 == prefill_points.len() { "" } else { "," },
        ));
    }
    prefill_json.push_str("  ],\n");

    // Shared-prefix reuse: hit stats and saved on-clock prefill tokens
    // per shared-prefix length (virtual time; deterministic).
    let prefix_lens: &[usize] = if args.quick { &[16, 48] } else { &[16, 48, 96] };
    let waves = if args.quick { 3 } else { 6 };
    println!("\n== shared-prefix cache ({waves} waves of 4 requests per point, chunked prefill) ==");
    println!(
        "   {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "prefix", "hit rate", "prefill off", "prefill on", "saved toks", "entries"
    );
    prefill_json.push_str(
        "  \"prefix_cache_note\": \"waves of 4 requests sharing a prefix, chunked prefill (chunk 8); \
         prefill_tokens_* are on-clock prompt tokens with the cache disabled/enabled, \
         shared_tokens is the prefill work the cache absorbed\",\n",
    );
    prefill_json.push_str("  \"prefix_cache\": [\n");
    for (i, &prefix_len) in prefix_lens.iter().enumerate() {
        let p = measure_prefix_cache(&prefill_model, prefix_len, waves);
        println!(
            "   {:>6} {:>9.0}% {:>12} {:>12} {:>12} {:>10}",
            p.prefix_len,
            100.0 * p.stats.hit_rate(),
            p.prefill_tokens_disabled,
            p.prefill_tokens_enabled,
            p.stats.shared_tokens,
            p.stats.entries
        );
        prefill_json.push_str(&format!(
            "    {{\"prefix_len\": {}, \"hit_rate\": {:.4}, \"hits\": {}, \"lookups\": {}, \
             \"prefill_tokens_disabled\": {}, \"prefill_tokens_enabled\": {}, \
             \"shared_tokens\": {}, \"entries\": {}, \"resident_bytes\": {}}}{}\n",
            p.prefix_len,
            p.stats.hit_rate(),
            p.stats.hits,
            p.stats.hits + p.stats.misses,
            p.prefill_tokens_disabled,
            p.prefill_tokens_enabled,
            p.stats.shared_tokens,
            p.stats.entries,
            p.stats.resident_bytes,
            if i + 1 == prefix_lens.len() { "" } else { "," },
        ));
    }
    prefill_json.push_str("  ],\n");

    // Stage waterfall under pressure: where a pressured request's
    // end-to-end latency actually goes, stage by stage (virtual time;
    // deterministic).
    let waterfall_requests = if args.quick { 24 } else { 48 };
    let server_stages = measure_server_waterfall(waterfall_requests);
    println!("\n== stage waterfall ({waterfall_requests} requests, tight KV, priority scheduler) ==");
    println!("   {:>14} {:>9} {:>9}", "stage", "p50", "p99");
    if let Some(stages) = &server_stages {
        for (name, summary) in stages.rows() {
            println!("   {:>14} {:>9} {:>9}", name, summary.p50, summary.p99);
        }
    }
    prefill_json.push_str(
        "  \"stage_waterfall_note\": \"per-stage latency split (virtual ticks) of a pressured \
         single-server run: chunked prefill (chunk 4), 96-token KV budget, priority scheduler; \
         the five stages sum to each request's end-to-end latency\",\n",
    );
    prefill_json.push_str("  \"stage_waterfall\": [\n");
    prefill_json.push_str(&stage_waterfall_json(server_stages.as_ref()));
    prefill_json.push_str("  ]\n}\n");
    std::fs::write(&args.prefill_json, &prefill_json)?;
    println!("\nwrote {}", args.prefill_json);

    // Cluster-plane sweep: shard count × routing policy over shared-prefix
    // traffic, plus a forced-imbalance migration demo. Virtual time —
    // deterministic, so it runs the same workload in both modes and only
    // scales the request count.
    let cluster_requests = if args.quick { 24 } else { 48 };
    let shard_counts: &[usize] = &[1, 2, 4];
    println!("\n== cluster plane ({cluster_requests} shared-prefix requests, virtual time) ==");
    println!(
        "   {:>6} {:>16} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "shards",
        "router",
        "completed",
        "rejected",
        "ttft_p50",
        "ttft_p99",
        "tok/tick",
        "hit rate",
        "migrations"
    );
    let mut cluster_points: Vec<ClusterPoint> = Vec::new();
    for &shards in shard_counts {
        for router in RouterKind::ALL {
            let p = measure_cluster(shards, router, cluster_requests);
            println!(
                "   {:>6} {:>16} {:>9} {:>8} {:>9} {:>9} {:>9.2} {:>8.0}% {:>10}",
                p.shards,
                p.router.to_string(),
                p.completed,
                p.rejected,
                p.ttft_p50_ticks,
                p.ttft_p99_ticks,
                p.tokens_per_tick,
                100.0 * p.prefix_hit_rate,
                p.migrations
            );
            cluster_points.push(p);
        }
    }
    let (demo, demo_stages) = measure_migration_demo();
    println!(
        "   migration demo: 2 tight shards, round-robin, imbalanced trace → {} migrations, {} bytes",
        demo.migrations, demo.migration_bytes
    );
    let affinity_beats_rr = |shards: usize| {
        let rate = |router: RouterKind| {
            cluster_points
                .iter()
                .find(|p| p.shards == shards && p.router == router)
                .map_or(0.0, |p| p.prefix_hit_rate)
        };
        rate(RouterKind::PrefixAffinity) > rate(RouterKind::RoundRobin)
    };
    assert!(
        affinity_beats_rr(2) && affinity_beats_rr(4),
        "prefix affinity must beat round-robin on shared-prefix traffic (pinned by cluster_stack)"
    );
    assert!(demo.migrations > 0, "the imbalanced demo must trigger migration");

    let mut cluster_json = String::new();
    cluster_json.push_str("{\n");
    cluster_json.push_str(&format!("  \"requests\": {cluster_requests},\n"));
    cluster_json.push_str(
        "  \"note\": \"virtual-time sweep: shard count x router over Poisson shared-prefix traffic \
         (5 prompt groups, 24-token shared prefix, prefix-cache engines, ample capacity); the \
         migration_demo scenario forces imbalance (size-alternating trace, 2 tight shards, \
         hot/cold 0.5) so migration counters are demonstrably nonzero; latencies in virtual \
         ticks\",\n",
    );
    cluster_json.push_str("  \"sweep\": [\n");
    for (i, p) in cluster_points.iter().enumerate() {
        cluster_json.push_str(&p.json_row("shared_prefix"));
        cluster_json.push_str(if i + 1 == cluster_points.len() { "\n" } else { ",\n" });
    }
    cluster_json.push_str("  ],\n");
    cluster_json.push_str("  \"migration_demo\": [\n");
    cluster_json.push_str(&demo.json_row("imbalanced_trace"));
    cluster_json.push_str("\n  ],\n");
    cluster_json.push_str(
        "  \"stage_waterfall_note\": \"per-stage latency split (virtual ticks) of the \
         migration_demo run — migration_wait is the stage cross-shard transfers add\",\n",
    );
    cluster_json.push_str("  \"stage_waterfall\": [\n");
    cluster_json.push_str(&stage_waterfall_json(demo_stages.as_ref()));
    cluster_json.push_str("  ]\n}\n");
    std::fs::write(&args.cluster_json, &cluster_json)?;
    println!("wrote {}", args.cluster_json);

    // Fault-plane sweep: fault scenario × router × load shedding over a
    // pressured 2-shard Poisson run. Virtual time — deterministic, so
    // both modes run the same schedule and only scale the request count.
    let fault_requests = if args.quick { 24 } else { 48 };
    let fault_scenarios: &[&'static str] = &["baseline", "crash_recover", "crash_permanent", "degraded_link"];
    let fault_routers = [RouterKind::RoundRobin, RouterKind::LeastLoaded];
    println!("\n== fault plane ({fault_requests} requests, 2 shards, virtual time) ==");
    println!(
        "   {:>15} {:>12} {:>5} {:>9} {:>8} {:>7} {:>8} {:>12} {:>5} {:>9} {:>8} {:>6}",
        "scenario",
        "router",
        "shed",
        "completed",
        "rejected",
        "retries",
        "timeouts",
        "dead_letters",
        "shed#",
        "e2e_p99",
        "goodput",
        "avail"
    );
    // (swap_link_cycles rides in the JSON only — it is the degraded_link
    // scenario's signal, noise for the rest.)
    let mut fault_points: Vec<FaultPoint> = Vec::new();
    for &scenario in fault_scenarios {
        for router in fault_routers {
            for shed_on in [false, true] {
                let p = measure_faults(scenario, router, shed_on, fault_requests);
                println!(
                    "   {:>15} {:>12} {:>5} {:>9} {:>8} {:>7} {:>8} {:>12} {:>5} {:>9} {:>8.3} {:>6.3}",
                    p.scenario,
                    p.router.to_string(),
                    p.shed_on,
                    p.completed,
                    p.rejected,
                    p.retries,
                    p.timeouts,
                    p.dead_letters,
                    p.shed,
                    p.e2e_p99_ticks,
                    p.goodput,
                    p.availability,
                );
                fault_points.push(p);
            }
        }
    }
    let fault_of = |scenario: &str| {
        fault_points
            .iter()
            .find(|p| p.scenario == scenario && p.router == RouterKind::RoundRobin && !p.shed_on)
            .expect("swept scenario")
    };
    assert!(
        fault_of("baseline").retries == 0 && fault_of("baseline").availability == 1.0,
        "the baseline scenario must be fault-free"
    );
    assert!(
        fault_of("crash_recover").retries > 0 && fault_of("crash_recover").availability < 1.0,
        "the crash scenario must visibly retry and dent availability"
    );
    assert!(
        fault_of("degraded_link").swap_link_cycles > fault_of("baseline").swap_link_cycles,
        "the degraded link must make the same swap DMA cost more cycles"
    );

    let mut faults_json = String::new();
    faults_json.push_str("{\n");
    faults_json.push_str(&format!("  \"requests\": {fault_requests},\n"));
    faults_json.push_str(
        "  \"note\": \"virtual-time fault-plane sweep: scenario x router x shedding over the same \
         pressured 2-shard Poisson run (seed 23, rate 1.2, chunked prefill, tight 14 KiB/shard KV, \
         e2e deadline 512 ticks); baseline has an empty fault plan, crash_recover fail-stops shard 1 \
         at tick 8 and recovers it at 48, crash_permanent never recovers it, degraded_link cuts \
         shard 0's host-link bandwidth to 10% for ticks 4-400 (visible as swap_link_cycles — swap \
         DMA costs more cycles over the slow link); shed=true arms a 0.6 queue watermark; every \
         delta vs baseline is the fault plane's doing; latencies in virtual ticks\",\n",
    );
    faults_json.push_str("  \"sweep\": [\n");
    for (i, p) in fault_points.iter().enumerate() {
        faults_json.push_str(&p.json_row());
        faults_json.push_str(if i + 1 == fault_points.len() { "\n" } else { ",\n" });
    }
    faults_json.push_str("  ]\n}\n");
    std::fs::write(&args.faults_json, &faults_json)?;
    println!("wrote {}", args.faults_json);

    // Prefix-cache churn sweep: cache byte bound × TTL × spill on/off
    // over a pressured shared-prefix run. Virtual time — deterministic,
    // so both modes run the same 40-request workload and quick mode only
    // trims the grid.
    let churn_requests = 40;
    let (churn_cache_kbs, churn_ttls): (&[u64], &[u64]) =
        if args.quick { (&[6], &[64]) } else { (&[6, 12], &[16, 64]) };
    println!(
        "\n== prefix-cache churn ({churn_requests} shared-prefix requests, 32 KiB HBM, virtual time) =="
    );
    println!(
        "   {:>8} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>8}",
        "cache_kb",
        "ttl",
        "spill",
        "admitted",
        "rejected",
        "hit rate",
        "evicted",
        "expired",
        "spills",
        "fills"
    );
    let mut churn_points: Vec<PrefixChurnPoint> = Vec::new();
    for &cache_kb in churn_cache_kbs {
        for &ttl in churn_ttls {
            for spill in [false, true] {
                let p = measure_prefix_churn(cache_kb, ttl, spill, churn_requests);
                println!(
                    "   {:>8} {:>6} {:>6} {:>9} {:>9} {:>8.0}% {:>9} {:>7} {:>6} {:>8}",
                    p.cache_kb,
                    p.ttl,
                    p.spill,
                    p.admitted,
                    p.rejected,
                    100.0 * p.stats.hit_rate(),
                    p.stats.evictions,
                    p.stats.expiries,
                    p.stats.spills,
                    p.stats.fills,
                );
                churn_points.push(p);
            }
        }
    }
    let churn_of = |cache_kb: u64, ttl: u64, spill: bool| {
        churn_points.iter().find(|p| p.cache_kb == cache_kb && p.ttl == ttl && p.spill == spill)
    };
    let (Some(starved_off), Some(starved_on)) = (churn_of(6, 64, false), churn_of(6, 64, true)) else {
        panic!("the churn sweep always covers the 6 KiB / ttl 64 headline pair");
    };
    assert!(
        starved_on.admitted > starved_off.admitted,
        "at equal cache bytes the spill tier must admit strictly more than drop-on-evict \
         under pressure ({} vs {})",
        starved_on.admitted,
        starved_off.admitted,
    );
    assert!(
        starved_on.stats.spills > 0 && starved_on.stats.fills > 0 && starved_on.stats.evictions == 0,
        "the starved spill-on point must actually spill and fill"
    );
    assert!(
        starved_off.stats.evictions > 0 && starved_off.stats.spills == 0,
        "the starved spill-off point must drop entries on eviction"
    );

    let mut prefix_json = String::new();
    prefix_json.push_str("{\n");
    prefix_json.push_str(&format!("  \"requests\": {churn_requests},\n"));
    prefix_json.push_str(
        "  \"note\": \"virtual-time prefix-cache churn sweep: cache byte bound x TTL x spill \
         on/off over the same pressured single-server shared-prefix Poisson run (seed 29, rate \
         0.8, 2 prefix groups, 16-token shared prefix, 32 KiB HBM, queue depth 6); with spill on, \
         byte-pressure evictions move entries to the host tier where later arrivals still hit \
         them (one fill DMA, then the shared span skips on-clock prefill), so the queue turns \
         over faster and strictly more requests are admitted than with drop-on-evict at equal \
         cache bytes — the delta the hard assert pins\",\n",
    );
    prefix_json.push_str("  \"prefix_churn\": [\n");
    for (i, p) in churn_points.iter().enumerate() {
        prefix_json.push_str(&p.json_row());
        prefix_json.push_str(if i + 1 == churn_points.len() { "\n" } else { ",\n" });
    }
    prefix_json.push_str("  ]\n}\n");
    std::fs::write(&args.prefix_json, &prefix_json)?;
    println!("wrote {}", args.prefix_json);

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{model_name}\",\n"));
    json.push_str(&format!("  \"gen_tokens\": {},\n", args.gen_tokens));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    if host_parallelism < 2 {
        json.push_str(
            "  \"note\": \"host exposes a single CPU: speedup_vs_serial measures threading \
             overhead only, not parallel scaling — rerun on a multicore host before comparing \
             decode_threads configurations\",\n",
        );
    }
    json.push_str(
        "  \"forward_path_note\": \"scratch wall-clock wins scale with the allocation share of \
         a token: visible on the tiny geometry, noise-level on compute-bound geometries — the \
         durable scratch guarantee is the zero-allocation pin in \
         crates/model/tests/zero_alloc.rs\",\n",
    );
    json.push_str("  \"forward_path\": [\n");
    for (i, (name, alloc_ns, scratch_ns)) in forward_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{name}\", \"alloc_ns_per_token\": {alloc_ns:.1}, \
             \"scratch_ns_per_token\": {scratch_ns:.1}, \"scratch_speedup\": {:.4}}}{}\n",
            alloc_ns / scratch_ns,
            if i + 1 == forward_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"engine_decode\": [\n");
    for (i, p) in points.iter().enumerate() {
        let serial = points
            .iter()
            .find(|q| q.batch == p.batch && q.threads == 1)
            .map_or(p.tokens_per_s, |q| q.tokens_per_s);
        json.push_str(&format!(
            "    {{\"batch\": {}, \"threads\": {}, \"tokens\": {}, \"wall_s\": {:.6}, \
             \"tokens_per_s\": {:.1}, \"ns_per_token\": {:.1}, \"speedup_vs_serial\": {:.4}}}{}\n",
            p.batch,
            p.threads,
            p.tokens,
            p.wall_s,
            p.tokens_per_s,
            p.ns_per_token,
            p.tokens_per_s / serial.max(1e-12),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json, &json)?;
    println!("\nwrote {}", args.json);
    Ok(())
}

//! Wall-clock decode throughput baseline: serial vs session-parallel
//! engine ticks across a batch sweep, plus the allocating vs scratch
//! forward path, written to `BENCH_decode.json` so future PRs have a
//! pinned perf reference.
//!
//! ```sh
//! cargo run --release -p veda-bench --bin throughput            # full sweep
//! cargo run --release -p veda-bench --bin throughput -- --quick # CI-sized
//! ```

use std::time::Instant;

use veda::{Budget, EngineBuilder, Request};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

struct Args {
    quick: bool,
    json: String,
    gen_tokens: usize,
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut parsed = Args { quick: false, json: "BENCH_decode.json".to_string(), gen_tokens: 32 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = args.next().ok_or("missing value after --json")?,
            "--gen" => parsed.gen_tokens = args.next().ok_or("missing value after --gen")?.parse()?,
            "--help" | "-h" => {
                println!("usage: throughput [--quick] [--json PATH] [--gen N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)").into()),
        }
    }
    Ok(parsed)
}

/// Seeded request mix: every session voting-evicted at ratio 0.5, prompts
/// long enough that attention over the resident cache is real work.
fn requests(n: usize, prompt_len: usize, gen_tokens: usize, vocab: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let prompt: Vec<usize> =
                (0..prompt_len + (i % 5)).map(|j| (j * 7 + i * 13) % (vocab - 1) + 1).collect();
            Request::new(prompt, gen_tokens).policy(PolicyKind::Voting).budget(Budget::Ratio(0.5))
        })
        .collect()
}

struct EnginePoint {
    batch: usize,
    threads: usize,
    tokens: usize,
    wall_s: f64,
    tokens_per_s: f64,
    ns_per_token: f64,
}

/// One engine measurement: build, prefill (unmeasured), then time the
/// decode loop to completion.
fn measure_engine(model: &ModelConfig, batch: usize, threads: usize, gen_tokens: usize) -> EnginePoint {
    let mut engine =
        EngineBuilder::new().model(model.clone()).decode_threads(threads).build().expect("valid config");
    for request in requests(batch, 48, gen_tokens, model.vocab_size) {
        engine.submit(request).expect("valid request");
    }
    let start = Instant::now();
    while engine.active_sessions() > 0 {
        engine.step();
    }
    let wall_s = start.elapsed().as_secs_f64();
    let report = engine.drain_report();
    let tokens = report.total_tokens;
    EnginePoint {
        batch,
        threads,
        tokens,
        wall_s,
        tokens_per_s: tokens as f64 / wall_s.max(1e-12),
        ns_per_token: wall_s * 1e9 / tokens.max(1) as f64,
    }
}

struct ForwardPoint {
    label: &'static str,
    ns_per_token: f64,
}

/// Times the allocating `forward_in` against the scratch path on one
/// sequence with a warm cache of `resident` tokens. Best of three passes
/// per path, to shave scheduler noise off the shared-host numbers.
fn measure_forward(model: &ModelConfig, resident: usize, tokens: usize) -> Vec<ForwardPoint> {
    use veda_model::TransformerModel;
    let m = TransformerModel::new(model.clone());
    let token = |i: usize| (i * 11 + 1) % model.vocab_size;
    let mut out = Vec::new();
    const PASSES: usize = 3;

    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut state = m.new_state();
        for pos in 0..resident {
            m.forward_in(&mut state, token(pos), pos);
        }
        let start = Instant::now();
        for i in 0..tokens {
            std::hint::black_box(m.forward_in(&mut state, token(resident + i), resident + i));
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / tokens as f64);
    }
    out.push(ForwardPoint { label: "forward_alloc", ns_per_token: best });

    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut state = m.new_state();
        state.reserve(resident + tokens + 1, model.d_model);
        let mut scratch = m.new_scratch(resident + tokens + 1);
        for pos in 0..resident {
            m.forward_with_scratch(&mut state, token(pos), pos, &mut scratch);
        }
        let start = Instant::now();
        for i in 0..tokens {
            m.forward_with_scratch(&mut state, token(resident + i), resident + i, &mut scratch);
            std::hint::black_box(scratch.logits());
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / tokens as f64);
    }
    out.push(ForwardPoint { label: "forward_scratch", ns_per_token: best });
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let (model, model_name, batches, threads_list, forward_tokens) = if args.quick {
        (ModelConfig::tiny(), "tiny", vec![1usize, 4, 8], vec![1usize, 2], 64usize)
    } else {
        (ModelConfig::small(), "small", vec![1usize, 4, 8, 16], vec![1usize, 2, 4], 128usize)
    };
    let host_parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);

    println!("== decode throughput: model {model_name}, {} tokens/request ==", args.gen_tokens);
    println!("   host parallelism: {host_parallelism}\n");

    // Forward-path comparison on both geometries: the tiny model is where
    // per-token allocations are a visible fraction of the work; the sweep
    // model is compute-bound, so its scratch delta is noise-level — the
    // durable guarantee there is the zero-allocation pin
    // (crates/model/tests/zero_alloc.rs), not wall-clock.
    let mut forward_models = vec![(ModelConfig::tiny(), "tiny")];
    if !args.quick {
        forward_models.push((model.clone(), model_name));
    }
    let mut forward_rows: Vec<(String, f64, f64)> = Vec::new();
    for (fwd_model, fwd_name) in &forward_models {
        let forward = measure_forward(fwd_model, 64, forward_tokens);
        for p in &forward {
            println!("   {fwd_name:<6} {:<16} {:>12.0} ns/token", p.label, p.ns_per_token);
        }
        let alloc_ns = forward[0].ns_per_token;
        let scratch_ns = forward[1].ns_per_token;
        println!("   {fwd_name:<6} scratch speedup  {:>12.2}x\n", alloc_ns / scratch_ns);
        forward_rows.push((fwd_name.to_string(), alloc_ns, scratch_ns));
    }

    let mut points: Vec<EnginePoint> = Vec::new();
    println!("   {:>5} {:>8} {:>12} {:>14} {:>12}", "batch", "threads", "tokens/s", "ns/token", "speedup");
    for &batch in &batches {
        let mut serial_tps = 0.0;
        for &threads in &threads_list {
            let p = measure_engine(&model, batch, threads, args.gen_tokens);
            if threads == 1 {
                serial_tps = p.tokens_per_s;
            }
            println!(
                "   {:>5} {:>8} {:>12.1} {:>14.0} {:>11.2}x",
                p.batch,
                p.threads,
                p.tokens_per_s,
                p.ns_per_token,
                p.tokens_per_s / serial_tps.max(1e-12),
            );
            points.push(p);
        }
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{model_name}\",\n"));
    json.push_str(&format!("  \"gen_tokens\": {},\n", args.gen_tokens));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    if host_parallelism < 2 {
        json.push_str(
            "  \"note\": \"host exposes a single CPU: speedup_vs_serial measures threading \
             overhead only, not parallel scaling — rerun on a multicore host before comparing \
             decode_threads configurations\",\n",
        );
    }
    json.push_str(
        "  \"forward_path_note\": \"scratch wall-clock wins scale with the allocation share of \
         a token: visible on the tiny geometry, noise-level on compute-bound geometries — the \
         durable scratch guarantee is the zero-allocation pin in \
         crates/model/tests/zero_alloc.rs\",\n",
    );
    json.push_str("  \"forward_path\": [\n");
    for (i, (name, alloc_ns, scratch_ns)) in forward_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{name}\", \"alloc_ns_per_token\": {alloc_ns:.1}, \
             \"scratch_ns_per_token\": {scratch_ns:.1}, \"scratch_speedup\": {:.4}}}{}\n",
            alloc_ns / scratch_ns,
            if i + 1 == forward_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"engine_decode\": [\n");
    for (i, p) in points.iter().enumerate() {
        let serial = points
            .iter()
            .find(|q| q.batch == p.batch && q.threads == 1)
            .map_or(p.tokens_per_s, |q| q.tokens_per_s);
        json.push_str(&format!(
            "    {{\"batch\": {}, \"threads\": {}, \"tokens\": {}, \"wall_s\": {:.6}, \
             \"tokens_per_s\": {:.1}, \"ns_per_token\": {:.1}, \"speedup_vs_serial\": {:.4}}}{}\n",
            p.batch,
            p.threads,
            p.tokens,
            p.wall_s,
            p.tokens_per_s,
            p.ns_per_token,
            p.tokens_per_s / serial.max(1e-12),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json, &json)?;
    println!("\nwrote {}", args.json);
    Ok(())
}

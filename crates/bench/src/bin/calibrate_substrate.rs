//! Calibration sweep for the Fig. 8 (left) substrate: voting threshold `b`
//! × prediction head weights, printed as perplexity per policy.
fn main() {
    use veda_eviction::*;
    use veda_model::*;
    let corpus = Corpus::new(CorpusConfig::default());
    for &a in &[1.0f32, 0.7, 0.5, 0.3] {
        let lm = InductionLm::new(InductionConfig::default(), &corpus);
        for &b in &[0.0f32, 0.05, 0.1, 0.2] {
            let mut row = format!("a {a:.2} b {b:.2} |");
            for cache in [96usize, 256] {
                let mut ppl = Vec::new();
                for (name, mut pol) in [
                    ("slide", Box::new(SlidingWindowPolicy::new(4)) as Box<dyn EvictionPolicy>),
                    ("h2o", Box::new(H2oPolicy::new())),
                    (
                        "vote",
                        Box::new(VotingPolicy::new(VotingConfig {
                            a,
                            b,
                            reserved_len: 4,
                            per_head_votes: false,
                        })),
                    ),
                ] {
                    let mut nll = 0.0;
                    let mut toks = 0;
                    for s in 0..4u64 {
                        let sample = corpus.sample(s, 1280);
                        let e = lm.evaluate_sample(&sample, cache, pol.as_mut(), &corpus);
                        nll += e.total_nll;
                        toks += e.tokens;
                    }
                    ppl.push(format!("{name} {:.2}", (nll / toks as f64).exp()));
                }
                row += &format!("  [{cache}] {}", ppl.join(" "));
            }
            println!("{row}");
        }
    }
}

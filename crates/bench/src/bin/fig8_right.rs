//! Regenerates Fig. 8 (right): speedup of voting-based KV cache eviction
//! at compression ratios 0.5/0.4/0.3/0.2 over generation lengths 128..1024
//! (prompt 512), relative to VEDA without eviction.
fn main() {
    let points = veda_bench::fig8_right();
    print!("{}", veda_bench::render_speedup(&points));
}

//! Extension ablation: sensitivity of the voting threshold
//! `T = a·mean − b·σ` at a fixed cache size.
fn main() {
    let points = veda_bench::hparam_ablation(128, 4, 1024);
    println!("{:<8} {:<8} {:>12}", "a", "b", "perplexity");
    for p in points {
        println!("{:<8} {:<8} {:>12.3}", p.a, p.b, p.perplexity);
    }
}

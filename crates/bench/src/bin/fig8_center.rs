//! Regenerates Fig. 8 (center): the dataflow ablation — Baseline vs
//! Baseline+F (flexible product) vs Baseline+F+E (element-serial
//! scheduling) — as normalized average attention latency over generation
//! lengths 0..1024 after a 512-token prompt.
fn main() {
    let points = veda_bench::fig8_center();
    print!("{}", veda_bench::render_ablation(&points));
}

//! Regenerates Table I: the VEDA hardware area/power breakdown from the
//! calibrated analytic module models.
fn main() {
    let t = veda_cost::table1(&veda_accel::ArchConfig::veda());
    print!("{}", t.render());
    println!(
        "\nSFU area share: {:.2}% (claim: <3%)  Voting engine share: {:.2}% (claim: ~6.5%)",
        t.area_fraction("Special Function Unit").unwrap_or(f64::NAN) * 100.0,
        t.area_fraction("Voting Engine").unwrap_or(f64::NAN) * 100.0,
    );
}

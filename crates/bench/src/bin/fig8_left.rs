//! Regenerates Fig. 8 (left): perplexity vs cache size for Streaming-LLM,
//! H2O and voting-based eviction on the synthetic corpus.
//!
//! Usage: `fig8_left [--paper]` — the default quick scale runs in seconds;
//! `--paper` uses the paper's 1000 × 4096 configuration.

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper { veda_bench::QualityScale::paper() } else { veda_bench::QualityScale::quick() };
    eprintln!(
        "fig8_left: {} samples x {} tokens, cache sizes {:?}",
        scale.samples, scale.sample_len, scale.cache_sizes
    );
    let points = veda_bench::fig8_left(scale);
    print!("{}", veda_bench::render_quality(&points));
}

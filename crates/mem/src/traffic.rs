//! Byte counters per traffic class, feeding the energy model.

/// What kind of data a transfer carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Model weights streamed from HBM.
    Weight,
    /// KV cache reads/writes.
    KvCache,
    /// Layer activations.
    Activation,
    /// Vote-count vector spills (Section V stores vote counts off-chip).
    VoteCount,
}

impl TrafficClass {
    /// All classes, in presentation order.
    pub const ALL: [TrafficClass; 4] =
        [TrafficClass::Weight, TrafficClass::KvCache, TrafficClass::Activation, TrafficClass::VoteCount];

    /// Stable label.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficClass::Weight => "weight",
            TrafficClass::KvCache => "kv_cache",
            TrafficClass::Activation => "activation",
            TrafficClass::VoteCount => "vote_count",
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-class read/write byte counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficCounter {
    reads: [u64; 4],
    writes: [u64; 4],
}

impl TrafficCounter {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(class: TrafficClass) -> usize {
        TrafficClass::ALL.iter().position(|&c| c == class).expect("class in ALL")
    }

    /// Adds `bytes` of reads for `class`.
    pub fn add_read(&mut self, class: TrafficClass, bytes: u64) {
        self.reads[Self::idx(class)] += bytes;
    }

    /// Adds `bytes` of writes for `class`.
    pub fn add_write(&mut self, class: TrafficClass, bytes: u64) {
        self.writes[Self::idx(class)] += bytes;
    }

    /// Read bytes for `class`.
    pub fn reads(&self, class: TrafficClass) -> u64 {
        self.reads[Self::idx(class)]
    }

    /// Write bytes for `class`.
    pub fn writes(&self, class: TrafficClass) -> u64 {
        self.writes[Self::idx(class)]
    }

    /// Total bytes moved across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounter) {
        for i in 0..4 {
            self.reads[i] += other.reads[i];
            self.writes[i] += other.writes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let mut t = TrafficCounter::new();
        t.add_read(TrafficClass::Weight, 100);
        t.add_read(TrafficClass::Weight, 50);
        t.add_write(TrafficClass::KvCache, 30);
        assert_eq!(t.reads(TrafficClass::Weight), 150);
        assert_eq!(t.writes(TrafficClass::KvCache), 30);
        assert_eq!(t.reads(TrafficClass::KvCache), 0);
        assert_eq!(t.total_bytes(), 180);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TrafficCounter::new();
        a.add_read(TrafficClass::Activation, 10);
        let mut b = TrafficCounter::new();
        b.add_read(TrafficClass::Activation, 5);
        b.add_write(TrafficClass::VoteCount, 7);
        a.merge(&b);
        assert_eq!(a.reads(TrafficClass::Activation), 15);
        assert_eq!(a.writes(TrafficClass::VoteCount), 7);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrafficClass::KvCache.to_string(), "kv_cache");
    }
}

//! Depth-bounded FIFO with occupancy statistics.
//!
//! Models the hardware FIFOs of VEDA: the 4096×16-bit s' FIFO of the voting
//! engine and the 32×16-bit tile FIFO of the SFU (Table I). Push on a full
//! FIFO is an error — in hardware this is a stall condition the scheduler
//! must avoid, and the cycle model asserts it never happens.

/// Error returned when pushing to a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError {
    /// The configured depth that was exceeded.
    pub depth: usize,
}

impl std::fmt::Display for FifoFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fifo full at depth {}", self.depth)
    }
}

impl std::error::Error for FifoFullError {}

/// A bounded FIFO tracking high-water occupancy and total throughput.
///
/// ```
/// use veda_mem::Fifo;
/// let mut f: Fifo<u16> = Fifo::new(2);
/// f.push(1)?;
/// f.push(2)?;
/// assert!(f.push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// # Ok::<(), veda_mem::fifo::FifoFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    depth: usize,
    items: std::collections::VecDeque<T>,
    high_water: usize,
    total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "fifo depth must be positive");
        Self {
            depth,
            items: std::collections::VecDeque::with_capacity(depth),
            high_water: 0,
            total_pushed: 0,
        }
    }

    /// Configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.depth
    }

    /// Pushes an item.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] when at capacity.
    pub fn push(&mut self, item: T) -> Result<(), FifoFullError> {
        if self.is_full() {
            return Err(FifoFullError { depth: self.depth });
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Pops the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Maximum occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total number of items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Empties the FIFO, keeping statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_push_is_rejected() {
        let mut f = Fifo::new(1);
        f.push('a').unwrap();
        assert_eq!(f.push('b'), Err(FifoFullError { depth: 1 }));
    }

    #[test]
    fn high_water_and_throughput() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        f.pop();
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.high_water(), 5);
        assert_eq!(f.total_pushed(), 6);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn clear_keeps_stats() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.total_pushed(), 1);
        assert_eq!(f.high_water(), 1);
    }

    #[test]
    fn front_peeks() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.front(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        let _ = Fifo::<u8>::new(0);
    }
}

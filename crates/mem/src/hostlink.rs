//! Host-link (PCIe-style) traffic model for KV cache swap-out/swap-in.
//!
//! When a serving layer preempts a session under HBM capacity pressure, its
//! KV cache moves over the host link to CPU memory and back on resume. The
//! link is an order of magnitude slower than HBM (PCIe 4.0 x16 sustains
//! ~26 GB/s against the paper's 256 GB/s HBM), so swap traffic is the cost
//! that admission control and scheduling policies trade against queueing
//! delay. The model mirrors [`crate::HbmModel`]: a configuration in
//! accelerator-clock units plus a stateful accumulator with per-direction
//! counters.

/// Direction of a host-link transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapDirection {
    /// Device → host (preemption: KV cache leaves HBM).
    Out,
    /// Host → device (resume: KV cache returns to HBM).
    In,
}

impl SwapDirection {
    /// Stable label.
    pub fn as_str(self) -> &'static str {
        match self {
            SwapDirection::Out => "swap_out",
            SwapDirection::In => "swap_in",
        }
    }
}

impl std::fmt::Display for SwapDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a host-link transfer moves KV bytes *for* — preemption swap
/// traffic, cross-shard session migration, or prefix-cache spill/fill
/// churn. The physical link is the same in every case (same cost model,
/// same per-direction accumulators); the kind only tags the accounting,
/// so a cluster-level report can attribute interconnect bytes to
/// scheduling churn vs. load balancing vs. cache-tier management.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Preemption swap: KV state parked on the host and brought back to
    /// the *same* device.
    Swap,
    /// Cross-shard migration: KV state leaves one device and lands on
    /// another (charged on both shards' links, one direction each).
    Migration,
    /// Prefix-cache spill: a cold cached prefix entry left HBM for the
    /// host-memory tier under byte pressure (device → host only).
    PrefixSpill,
    /// Prefix-cache fill: a spilled prefix entry was promoted back to
    /// the device on a hit (host → device only); its latency is
    /// serialized onto the hitting session's clock like a swap-in.
    PrefixFill,
}

impl TransferKind {
    /// Stable label.
    pub fn as_str(self) -> &'static str {
        match self {
            TransferKind::Swap => "swap",
            TransferKind::Migration => "migration",
            TransferKind::PrefixSpill => "prefix_spill",
            TransferKind::PrefixFill => "prefix_fill",
        }
    }
}

impl std::fmt::Display for TransferKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Host-link configuration.
///
/// Defaults model a PCIe 4.0 x16 link against a 1 GHz accelerator clock:
/// 32 GB/s peak (32 B/cycle), 85 % sustained efficiency (protocol and DMA
/// overhead), and a 1 µs per-transfer setup latency (1000 cycles at 1 GHz)
/// covering doorbell, descriptor fetch and completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLinkConfig {
    /// Peak link bandwidth in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Sustained-over-peak efficiency in (0, 1].
    pub efficiency: f64,
    /// Fixed setup cycles charged once per transfer.
    pub setup_cycles: u64,
}

impl Default for HostLinkConfig {
    fn default() -> Self {
        Self { bytes_per_cycle: 32.0, efficiency: 0.85, setup_cycles: 1000 }
    }
}

impl HostLinkConfig {
    /// Config for a given link bandwidth in GB/s at a given accelerator
    /// clock in GHz, other parameters at defaults.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn with_bandwidth(gb_per_s: f64, clock_ghz: f64) -> Self {
        assert!(gb_per_s > 0.0 && clock_ghz > 0.0, "bandwidth and clock must be positive");
        Self { bytes_per_cycle: gb_per_s / clock_ghz, ..Self::default() }
    }
}

/// Stateful host-link model: accumulates traffic per transfer kind and
/// direction.
#[derive(Debug, Clone)]
pub struct HostLink {
    config: HostLinkConfig,
    /// Indexed `[kind][direction]`.
    bytes: [[u64; 2]; 4],
    cycles: [[u64; 2]; 4],
    transfers: [[u64; 2]; 4],
    /// Transient bandwidth multiplier in (0, 1]; `1.0` means healthy.
    degradation: f64,
}

impl HostLink {
    /// Creates a model with the given configuration.
    pub fn new(config: HostLinkConfig) -> Self {
        Self { config, bytes: [[0; 2]; 4], cycles: [[0; 2]; 4], transfers: [[0; 2]; 4], degradation: 1.0 }
    }

    /// The configuration.
    pub fn config(&self) -> &HostLinkConfig {
        &self.config
    }

    /// Sets the transient bandwidth multiplier applied by [`HostLink::cost`]
    /// — the fault plane's link-degradation hook. A fraction of `0.25`
    /// means transfers see a quarter of the configured sustained bandwidth
    /// (setup latency is unaffected); `1.0` restores the healthy link.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn set_degradation(&mut self, fraction: f64) {
        assert!(fraction > 0.0 && fraction <= 1.0, "degradation fraction must be in (0, 1]");
        self.degradation = fraction;
    }

    /// The current bandwidth multiplier (`1.0` when the link is healthy).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    fn idx(direction: SwapDirection) -> usize {
        match direction {
            SwapDirection::Out => 0,
            SwapDirection::In => 1,
        }
    }

    fn kidx(kind: TransferKind) -> usize {
        match kind {
            TransferKind::Swap => 0,
            TransferKind::Migration => 1,
            TransferKind::PrefixSpill => 2,
            TransferKind::PrefixFill => 3,
        }
    }

    /// Pure cost query (no state change): cycles to move `bytes` one way
    /// at the link's current (possibly degraded) sustained bandwidth.
    pub fn cost(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let mut bandwidth = self.config.bytes_per_cycle * self.config.efficiency;
        // Only scale when actually degraded so a healthy link's costs are
        // bit-identical to builds that never touch the fault plane.
        if self.degradation != 1.0 {
            bandwidth *= self.degradation;
        }
        let data = (bytes as f64 / bandwidth).ceil() as u64;
        self.config.setup_cycles + data
    }

    /// Charges one *swap* transfer of `bytes` in `direction`, returning
    /// its cycles. State is accumulated. Shorthand for
    /// [`HostLink::transfer_tagged`] with [`TransferKind::Swap`] — the
    /// only kind that existed before cross-shard migration, so existing
    /// callers keep their accounting unchanged.
    pub fn transfer(&mut self, bytes: u64, direction: SwapDirection) -> u64 {
        self.transfer_tagged(bytes, direction, TransferKind::Swap)
    }

    /// Charges one transfer of `bytes` in `direction`, attributed to
    /// `kind`, returning its cycles. State is accumulated.
    pub fn transfer_tagged(&mut self, bytes: u64, direction: SwapDirection, kind: TransferKind) -> u64 {
        let cycles = self.cost(bytes);
        let k = Self::kidx(kind);
        let i = Self::idx(direction);
        self.bytes[k][i] += bytes;
        self.cycles[k][i] += cycles;
        if bytes > 0 {
            self.transfers[k][i] += 1;
        }
        cycles
    }

    /// Bytes moved in `direction` so far (all kinds).
    pub fn bytes(&self, direction: SwapDirection) -> u64 {
        self.bytes.iter().map(|row| row[Self::idx(direction)]).sum()
    }

    /// Cycles charged in `direction` so far (all kinds).
    pub fn cycles(&self, direction: SwapDirection) -> u64 {
        self.cycles.iter().map(|row| row[Self::idx(direction)]).sum()
    }

    /// Transfers charged in `direction` so far (all kinds).
    pub fn transfers(&self, direction: SwapDirection) -> u64 {
        self.transfers.iter().map(|row| row[Self::idx(direction)]).sum()
    }

    /// Bytes moved so far for `kind` in `direction`.
    pub fn tagged_bytes(&self, kind: TransferKind, direction: SwapDirection) -> u64 {
        self.bytes[Self::kidx(kind)][Self::idx(direction)]
    }

    /// Cycles charged so far for `kind` in `direction`.
    pub fn tagged_cycles(&self, kind: TransferKind, direction: SwapDirection) -> u64 {
        self.cycles[Self::kidx(kind)][Self::idx(direction)]
    }

    /// Transfers charged so far for `kind` in `direction`.
    pub fn tagged_transfers(&self, kind: TransferKind, direction: SwapDirection) -> u64 {
        self.transfers[Self::kidx(kind)][Self::idx(direction)]
    }

    /// Total bytes moved so far for `kind`, both directions.
    pub fn kind_total_bytes(&self, kind: TransferKind) -> u64 {
        self.bytes[Self::kidx(kind)].iter().sum()
    }

    /// Total cycles charged so far for `kind`, both directions.
    pub fn kind_total_cycles(&self, kind: TransferKind) -> u64 {
        self.cycles[Self::kidx(kind)].iter().sum()
    }

    /// Total bytes moved in both directions (all kinds).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Total cycles charged in both directions (all kinds).
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().flatten().sum()
    }

    /// Resets the accumulated counters, keeping the configuration.
    pub fn reset(&mut self) {
        self.bytes = [[0; 2]; 4];
        self.cycles = [[0; 2]; 4];
        self.transfers = [[0; 2]; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_cost_nothing() {
        let link = HostLink::new(HostLinkConfig::default());
        assert_eq!(link.cost(0), 0);
    }

    #[test]
    fn cost_is_setup_plus_bandwidth() {
        let link = HostLink::new(HostLinkConfig::default());
        let c = link.cost(1 << 20);
        let data = ((1u64 << 20) as f64 / (32.0 * 0.85)).ceil() as u64;
        assert_eq!(c, 1000 + data);
    }

    #[test]
    fn directions_accumulate_separately() {
        let mut link = HostLink::new(HostLinkConfig::default());
        let out = link.transfer(4096, SwapDirection::Out);
        let back = link.transfer(4096, SwapDirection::In);
        assert_eq!(out, back, "symmetric link");
        assert_eq!(link.bytes(SwapDirection::Out), 4096);
        assert_eq!(link.bytes(SwapDirection::In), 4096);
        assert_eq!(link.transfers(SwapDirection::Out), 1);
        assert_eq!(link.total_bytes(), 8192);
        assert_eq!(link.total_cycles(), out + back);
        link.reset();
        assert_eq!(link.total_bytes(), 0);
    }

    #[test]
    fn swap_is_much_slower_than_hbm_stream() {
        use crate::{AccessPattern, HbmConfig, HbmModel};
        let link = HostLink::new(HostLinkConfig::default());
        let hbm = HbmModel::new(HbmConfig::default());
        let bytes = 8 << 20;
        assert!(link.cost(bytes as u64) > 5 * hbm.cost(bytes, AccessPattern::Sequential));
    }

    #[test]
    fn with_bandwidth_scales_bytes_per_cycle() {
        let cfg = HostLinkConfig::with_bandwidth(64.0, 2.0);
        assert!((cfg.bytes_per_cycle - 32.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn with_bandwidth_rejects_zero() {
        HostLinkConfig::with_bandwidth(32.0, 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SwapDirection::Out.to_string(), "swap_out");
        assert_eq!(SwapDirection::In.to_string(), "swap_in");
        assert_eq!(TransferKind::Swap.to_string(), "swap");
        assert_eq!(TransferKind::Migration.to_string(), "migration");
        assert_eq!(TransferKind::PrefixSpill.to_string(), "prefix_spill");
        assert_eq!(TransferKind::PrefixFill.to_string(), "prefix_fill");
    }

    #[test]
    fn prefix_kinds_accumulate_separately_from_swap_traffic() {
        let mut link = HostLink::new(HostLinkConfig::default());
        let spill = link.transfer_tagged(2000, SwapDirection::Out, TransferKind::PrefixSpill);
        let fill = link.transfer_tagged(2000, SwapDirection::In, TransferKind::PrefixFill);
        link.transfer(500, SwapDirection::Out);
        assert_eq!(link.tagged_bytes(TransferKind::PrefixSpill, SwapDirection::Out), 2000);
        assert_eq!(link.tagged_bytes(TransferKind::PrefixFill, SwapDirection::In), 2000);
        assert_eq!(link.tagged_bytes(TransferKind::Swap, SwapDirection::Out), 500);
        assert_eq!(link.bytes(SwapDirection::Out), 2500, "per-direction view sums all four kinds");
        assert_eq!(link.kind_total_cycles(TransferKind::PrefixSpill), spill);
        assert_eq!(link.kind_total_cycles(TransferKind::PrefixFill), fill);
        assert_eq!(link.tagged_transfers(TransferKind::PrefixFill, SwapDirection::In), 1);
        link.reset();
        assert_eq!(link.kind_total_bytes(TransferKind::PrefixSpill), 0);
    }

    #[test]
    fn kinds_accumulate_separately_and_sum_per_direction() {
        let mut link = HostLink::new(HostLinkConfig::default());
        let swap = link.transfer(1000, SwapDirection::Out);
        let mig = link.transfer_tagged(3000, SwapDirection::Out, TransferKind::Migration);
        assert_eq!(link.tagged_bytes(TransferKind::Swap, SwapDirection::Out), 1000);
        assert_eq!(link.tagged_bytes(TransferKind::Migration, SwapDirection::Out), 3000);
        assert_eq!(link.tagged_bytes(TransferKind::Migration, SwapDirection::In), 0);
        assert_eq!(link.bytes(SwapDirection::Out), 4000, "per-direction view sums the kinds");
        assert_eq!(link.kind_total_bytes(TransferKind::Migration), 3000);
        assert_eq!(link.kind_total_cycles(TransferKind::Swap), swap);
        assert_eq!(link.tagged_transfers(TransferKind::Migration, SwapDirection::Out), 1);
        assert_eq!(link.total_cycles(), swap + mig);
        link.reset();
        assert_eq!(link.kind_total_bytes(TransferKind::Migration), 0);
    }

    #[test]
    fn degradation_stretches_data_cycles_only() {
        let mut link = HostLink::new(HostLinkConfig::default());
        assert!((link.degradation() - 1.0).abs() < 1e-12);
        let healthy = link.cost(1 << 20);
        link.set_degradation(0.25);
        let degraded = link.cost(1 << 20);
        let data = ((1u64 << 20) as f64 / (32.0 * 0.85 * 0.25)).ceil() as u64;
        assert_eq!(degraded, 1000 + data, "setup cycles are unaffected");
        assert!(degraded > healthy);
        link.set_degradation(1.0);
        assert_eq!(link.cost(1 << 20), healthy, "recovery restores the healthy cost");
    }

    #[test]
    #[should_panic(expected = "degradation fraction")]
    fn degradation_rejects_zero() {
        HostLink::new(HostLinkConfig::default()).set_degradation(0.0);
    }

    #[test]
    fn untagged_transfer_is_swap_traffic() {
        let mut link = HostLink::new(HostLinkConfig::default());
        link.transfer(4096, SwapDirection::In);
        assert_eq!(link.tagged_bytes(TransferKind::Swap, SwapDirection::In), 4096);
        assert_eq!(link.kind_total_bytes(TransferKind::Migration), 0);
    }
}

//! # veda-mem
//!
//! Memory substrates for the VEDA reproduction.
//!
//! The paper evaluates VEDA with a 256 GB/s HBM modelled by Ramulator and
//! on-chip SRAM/FIFO costs from CACTI. This crate provides the equivalent
//! simulation substrates, built from scratch:
//!
//! * [`HbmModel`] — a burst/row-buffer-level off-chip memory model with
//!   per-pattern efficiency (sequential streams hit the open row; strided
//!   "transpose-style" access pays row activation and wasted burst bytes —
//!   the *memory access irregularity* of Section I).
//! * [`Sram`] — an on-chip buffer with capacity accounting and access
//!   counters used by the energy model.
//! * [`Fifo`] — a depth-bounded FIFO with occupancy statistics, modelling
//!   the s' FIFO of the voting engine and the SFU tile FIFO.
//! * [`TrafficCounter`] — byte counters per traffic class (weights, KV
//!   cache, activations, vote counts).
//! * [`HostLink`] — a PCIe-style device↔host link for KV cache
//!   swap-out/swap-in when a serving layer preempts sessions under HBM
//!   capacity pressure ([`HbmConfig::capacity_bytes`]).
//!
//! ## Capacity is the serving constraint
//!
//! At serving scale, decode is bandwidth-bound but *admission* is
//! capacity-bound: [`HbmConfig::capacity_bytes`] decides how many
//! sessions' KV states fit, and everything above it is preemption, swap
//! traffic ([`HostLink`]) or rejection. The resident-byte accounting
//! that serving layers check against this capacity counts a KV row
//! **once, where it is resident**: a session's privately owned rows
//! count against the session, while a shared prompt-prefix span (the
//! engine's prefix cache) counts once, inside the cache entry,
//! regardless of how many sessions reference it. Note the distinction
//! from *traffic*: attention still streams every resident row it
//! attends over — shared or not — so sharing relieves capacity and
//! prefill work, never the per-step KV bandwidth.
//!
//! ## Example
//!
//! ```
//! use veda_mem::{AccessPattern, HbmConfig, HbmModel};
//!
//! let mut hbm = HbmModel::new(HbmConfig::default());
//! // Streaming 1 MiB sequentially is far cheaper than the same bytes strided.
//! let seq = hbm.transfer(1 << 20, AccessPattern::Sequential);
//! let strided = hbm.transfer(1 << 20, AccessPattern::Strided { stride_bytes: 256, elem_bytes: 2 });
//! assert!(strided > seq);
//! ```

// Every public item in the memory substrates is documented; rustdoc
// enforces it so the API surface cannot silently rot.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fifo;
pub mod hbm;
pub mod hostlink;
pub mod sram;
pub mod traffic;

pub use fifo::Fifo;
pub use hbm::{AccessPattern, HbmConfig, HbmModel};
pub use hostlink::{HostLink, HostLinkConfig, SwapDirection, TransferKind};
pub use sram::Sram;
pub use traffic::{TrafficClass, TrafficCounter};

//! On-chip SRAM buffer model with capacity accounting and access counters.
//!
//! VEDA's 256 KB on-chip buffer holds weights (reused across tokens in the
//! prefilling phase) and staged activations. The cycle model only needs
//! capacity checks and access counts; the energy model (in `veda-cost`)
//! converts the counters into pJ.

/// A capacity-limited on-chip buffer.
///
/// ```
/// use veda_mem::Sram;
/// let mut buf = Sram::new(1024, 16);
/// assert!(buf.reserve("weights", 512).is_ok());
/// assert!(buf.reserve("kv", 600).is_err()); // would exceed capacity
/// buf.record_read(256);
/// assert_eq!(buf.reads(), 16); // 256 bytes / 16-byte words
/// ```
#[derive(Debug, Clone)]
pub struct Sram {
    capacity_bytes: usize,
    word_bytes: usize,
    allocations: Vec<(String, usize)>,
    reads: u64,
    writes: u64,
}

/// Error returned when a reservation exceeds the remaining capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// What was being allocated.
    pub label: String,
    /// Bytes requested.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sram allocation '{}' of {} bytes exceeds remaining capacity {} bytes",
            self.label, self.requested, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

impl Sram {
    /// Creates an SRAM of `capacity_bytes` with `word_bytes` access
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `word_bytes == 0`.
    pub fn new(capacity_bytes: usize, word_bytes: usize) -> Self {
        assert!(word_bytes > 0, "word size must be positive");
        Self { capacity_bytes, word_bytes, allocations: Vec::new(), reads: 0, writes: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently reserved.
    pub fn used_bytes(&self) -> usize {
        self.allocations.iter().map(|(_, b)| b).sum()
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> usize {
        self.capacity_bytes - self.used_bytes()
    }

    /// Reserves `bytes` under `label`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] when the reservation does not fit.
    pub fn reserve(&mut self, label: &str, bytes: usize) -> Result<(), CapacityError> {
        if bytes > self.free_bytes() {
            return Err(CapacityError {
                label: label.to_owned(),
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        self.allocations.push((label.to_owned(), bytes));
        Ok(())
    }

    /// Releases the most recent reservation with `label`, returning its
    /// size, or `None` if no such reservation exists.
    pub fn release(&mut self, label: &str) -> Option<usize> {
        let idx = self.allocations.iter().rposition(|(l, _)| l == label)?;
        Some(self.allocations.remove(idx).1)
    }

    /// Records a read of `bytes`, counted in word-granular accesses.
    pub fn record_read(&mut self, bytes: usize) {
        self.reads += bytes.div_ceil(self.word_bytes) as u64;
    }

    /// Records a write of `bytes`, counted in word-granular accesses.
    pub fn record_write(&mut self, bytes: usize) {
        self.writes += bytes.div_ceil(self.word_bytes) as u64;
    }

    /// Word-granular read accesses so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Word-granular write accesses so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Clears counters and reservations.
    pub fn reset(&mut self) {
        self.allocations.clear();
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut s = Sram::new(100, 4);
        s.reserve("a", 60).unwrap();
        assert_eq!(s.free_bytes(), 40);
        assert!(s.reserve("b", 50).is_err());
        assert_eq!(s.release("a"), Some(60));
        assert!(s.reserve("b", 50).is_ok());
    }

    #[test]
    fn release_unknown_label_is_none() {
        let mut s = Sram::new(10, 1);
        assert_eq!(s.release("nope"), None);
    }

    #[test]
    fn access_counters_are_word_granular() {
        let mut s = Sram::new(1024, 16);
        s.record_read(17); // 2 words
        s.record_write(16); // 1 word
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn capacity_error_is_descriptive() {
        let mut s = Sram::new(8, 1);
        let e = s.reserve("kv", 16).unwrap_err();
        assert!(e.to_string().contains("kv"));
        assert_eq!(e.requested, 16);
        assert_eq!(e.available, 8);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Sram::new(64, 4);
        s.reserve("x", 32).unwrap();
        s.record_read(8);
        s.reset();
        assert_eq!(s.used_bytes(), 0);
        assert_eq!(s.reads(), 0);
    }

    #[test]
    #[should_panic(expected = "word size")]
    fn zero_word_size_panics() {
        Sram::new(16, 0);
    }
}

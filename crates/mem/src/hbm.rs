//! Burst/row-buffer-level HBM model (Ramulator substitute).
//!
//! The generation phase of LLM inference is memory-bound: every decode step
//! streams the weights and the KV cache once. What the cycle model needs
//! from the memory substrate is therefore (a) sustained sequential bandwidth
//! and (b) the penalty for irregular access — the reason VEDA stores K and V
//! uniformly in `(l, d)` format instead of transposing.
//!
//! The model charges each transfer in accelerator-clock cycles:
//!
//! * **data cycles** — `ceil(fetched_bytes / (bytes_per_cycle × eff))`,
//!   where strided patterns fetch whole bursts per element and thus inflate
//!   fetched bytes far beyond the useful payload;
//! * **row cycles** — each opened DRAM row costs an activation; activations
//!   across `banks` proceed in parallel, so their contribution is divided by
//!   the bank count. Sequential streams open one row per `row_bytes`;
//!   wide-strided gathers open (up to) one row per element.

/// How a transfer walks the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Dense unit-stride stream (the `(l, d)` KV layout, weight streaming).
    Sequential,
    /// Fixed-stride gather, e.g. reading a column of a row-major matrix
    /// whose rows are `stride_bytes` long (the transpose access the paper
    /// eliminates). Each useful element is `elem_bytes` long.
    Strided {
        /// Distance in bytes between consecutive useful elements.
        stride_bytes: usize,
        /// Size of each useful element in bytes (2 for one FP16 value).
        elem_bytes: usize,
    },
}

/// HBM configuration.
///
/// Defaults model the paper's setup: 256 GB/s peak bandwidth against a
/// 1 GHz accelerator clock, 64-byte bursts, 2 KiB rows, 16 banks, a 90 %
/// sustained-efficiency derating on streams (refresh, bus turnaround),
/// and an 8 GiB stack capacity for serving-side admission accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmConfig {
    /// Peak bandwidth in bytes per accelerator cycle (256 GB/s at 1 GHz =
    /// 256 B/cycle).
    pub bytes_per_cycle: f64,
    /// Burst (minimum transfer) granularity in bytes.
    pub burst_bytes: usize,
    /// DRAM row size in bytes.
    pub row_bytes: usize,
    /// Cycles to activate a new row (tRP + tRCD at the accelerator clock).
    pub row_activate_cycles: u64,
    /// Number of banks whose activations overlap.
    pub banks: u64,
    /// Sustained-over-peak efficiency for streams, in (0, 1].
    pub sequential_efficiency: f64,
    /// Device memory capacity in bytes (one HBM2 stack: 8 GiB). Serving
    /// layers account resident KV bytes against this when deciding whether
    /// to admit, queue, or preempt sessions.
    pub capacity_bytes: u64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        Self {
            bytes_per_cycle: 256.0,
            burst_bytes: 64,
            row_bytes: 2048,
            row_activate_cycles: 28,
            banks: 16,
            sequential_efficiency: 0.9,
            capacity_bytes: 8 << 30,
        }
    }
}

impl HbmConfig {
    /// Config for a given bandwidth in GB/s at a given accelerator clock in
    /// GHz, other parameters at defaults.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn with_bandwidth(gb_per_s: f64, clock_ghz: f64) -> Self {
        assert!(gb_per_s > 0.0 && clock_ghz > 0.0, "bandwidth and clock must be positive");
        Self { bytes_per_cycle: gb_per_s / clock_ghz, ..Self::default() }
    }
}

/// Stateful HBM model: accumulates cycles and bytes across transfers.
#[derive(Debug, Clone)]
pub struct HbmModel {
    config: HbmConfig,
    total_cycles: u64,
    useful_bytes: u64,
    fetched_bytes: u64,
    transfers: u64,
}

impl HbmModel {
    /// Creates a model with the given configuration.
    pub fn new(config: HbmConfig) -> Self {
        Self { config, total_cycles: 0, useful_bytes: 0, fetched_bytes: 0, transfers: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &HbmConfig {
        &self.config
    }

    /// Charges one transfer of `bytes` useful bytes with `pattern`,
    /// returning the cycles it takes. State is accumulated.
    pub fn transfer(&mut self, bytes: usize, pattern: AccessPattern) -> u64 {
        let cycles = self.cost(bytes, pattern);
        self.total_cycles += cycles;
        self.useful_bytes += bytes as u64;
        self.fetched_bytes += self.fetched_bytes_for(bytes, pattern);
        self.transfers += 1;
        cycles
    }

    /// Pure cost query (no state change): cycles for a transfer.
    pub fn cost(&self, bytes: usize, pattern: AccessPattern) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let fetched = self.fetched_bytes_for(bytes, pattern);
        let data_cycles = (fetched as f64 / (self.config.bytes_per_cycle * self.config.sequential_efficiency))
            .ceil() as u64;
        let rows = self.rows_opened(bytes, pattern);
        let row_cycles = (rows * self.config.row_activate_cycles).div_ceil(self.config.banks.max(1));
        data_cycles + row_cycles
    }

    /// Number of DRAM rows a transfer opens.
    pub fn rows_opened(&self, bytes: usize, pattern: AccessPattern) -> u64 {
        if bytes == 0 {
            return 0;
        }
        match pattern {
            AccessPattern::Sequential => (bytes as u64).div_ceil(self.config.row_bytes as u64),
            AccessPattern::Strided { stride_bytes, elem_bytes } => {
                let elements = (bytes as u64).div_ceil(elem_bytes.max(1) as u64);
                if stride_bytes <= self.config.row_bytes {
                    // Several strided elements still land in one row.
                    let elems_per_row = (self.config.row_bytes / stride_bytes.max(1)).max(1) as u64;
                    elements.div_ceil(elems_per_row)
                } else {
                    // Every element opens a new row.
                    elements
                }
            }
        }
    }

    fn fetched_bytes_for(&self, bytes: usize, pattern: AccessPattern) -> u64 {
        let burst = self.config.burst_bytes as u64;
        match pattern {
            AccessPattern::Sequential => (bytes as u64).div_ceil(burst) * burst,
            AccessPattern::Strided { stride_bytes, elem_bytes } => {
                let elem = elem_bytes.max(1) as u64;
                let elements = (bytes as u64).div_ceil(elem);
                if stride_bytes as u64 <= burst {
                    // Dense enough that bursts are mostly useful.
                    (bytes as u64).div_ceil(burst) * burst
                } else {
                    // One whole burst fetched per useful element.
                    elements * elem.div_ceil(burst).max(1) * burst
                }
            }
        }
    }

    /// Total cycles charged so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Useful (requested) bytes moved so far.
    pub fn useful_bytes(&self) -> u64 {
        self.useful_bytes
    }

    /// Bytes actually fetched (≥ useful due to burst waste).
    pub fn fetched_bytes(&self) -> u64 {
        self.fetched_bytes
    }

    /// Number of transfers charged.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Achieved bandwidth utilization: useful bytes per cycle over peak.
    pub fn utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            (self.useful_bytes as f64 / self.total_cycles as f64) / self.config.bytes_per_cycle
        }
    }

    /// Resets the accumulated counters, keeping the configuration.
    pub fn reset(&mut self) {
        self.total_cycles = 0;
        self.useful_bytes = 0;
        self.fetched_bytes = 0;
        self.transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Transpose-style access: one FP16 every `stride` bytes.
    fn fp16_column(stride: usize) -> AccessPattern {
        AccessPattern::Strided { stride_bytes: stride, elem_bytes: 2 }
    }

    #[test]
    fn sequential_cost_tracks_bandwidth() {
        let hbm = HbmModel::new(HbmConfig::default());
        let c = hbm.cost(256 * 1024, AccessPattern::Sequential);
        let data = (256.0_f64 * 1024.0 / (256.0 * 0.9)).ceil() as u64;
        let rows = (256u64 * 1024 / 2048) * 28 / 16;
        assert_eq!(c, data + rows);
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let hbm = HbmModel::new(HbmConfig::default());
        assert_eq!(hbm.cost(0, AccessPattern::Sequential), 0);
        assert_eq!(hbm.rows_opened(0, AccessPattern::Sequential), 0);
    }

    #[test]
    fn strided_wide_stride_is_much_slower() {
        // Reading a (4096, 128)-FP16 matrix column-wise: one 2-byte element
        // per 256-byte row stride => whole burst per element.
        let hbm = HbmModel::new(HbmConfig::default());
        let useful = 4096 * 2;
        let seq = hbm.cost(useful, AccessPattern::Sequential);
        let strided = hbm.cost(useful, fp16_column(256));
        assert!(strided > 10 * seq, "strided {strided} vs seq {seq}");
    }

    #[test]
    fn beyond_row_stride_pays_activation_per_element() {
        let hbm = HbmModel::new(HbmConfig::default());
        let rows = hbm.rows_opened(1024 * 2, fp16_column(8192));
        assert_eq!(rows, 1024);
    }

    #[test]
    fn narrow_stride_close_to_sequential() {
        let hbm = HbmModel::new(HbmConfig::default());
        let seq = hbm.cost(64 * 1024, AccessPattern::Sequential);
        let strided = hbm.cost(64 * 1024, AccessPattern::Strided { stride_bytes: 4, elem_bytes: 2 });
        assert!(strided <= seq * 2, "strided {strided} vs seq {seq}");
    }

    #[test]
    fn state_accumulates() {
        let mut hbm = HbmModel::new(HbmConfig::default());
        let a = hbm.transfer(4096, AccessPattern::Sequential);
        let b = hbm.transfer(4096, AccessPattern::Sequential);
        assert_eq!(hbm.total_cycles(), a + b);
        assert_eq!(hbm.useful_bytes(), 8192);
        assert_eq!(hbm.transfers(), 2);
        hbm.reset();
        assert_eq!(hbm.total_cycles(), 0);
    }

    #[test]
    fn utilization_below_one_and_positive() {
        let mut hbm = HbmModel::new(HbmConfig::default());
        hbm.transfer(1 << 20, AccessPattern::Sequential);
        let u = hbm.utilization();
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn with_bandwidth_scales_bytes_per_cycle() {
        let cfg = HbmConfig::with_bandwidth(512.0, 2.0);
        assert!((cfg.bytes_per_cycle - 256.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn with_bandwidth_rejects_zero() {
        HbmConfig::with_bandwidth(0.0, 1.0);
    }

    #[test]
    fn fetched_at_least_useful() {
        let mut hbm = HbmModel::new(HbmConfig::default());
        hbm.transfer(100, AccessPattern::Sequential);
        hbm.transfer(100, fp16_column(512));
        assert!(hbm.fetched_bytes() >= hbm.useful_bytes());
    }

    #[test]
    fn strided_fetch_inflation_is_burst_per_element() {
        let hbm = HbmModel::new(HbmConfig::default());
        // 100 useful bytes of 2-byte elements at 512-byte stride:
        // 50 elements × 64-byte bursts = 3200 fetched bytes.
        assert_eq!(hbm.fetched_bytes_for(100, fp16_column(512)), 3200);
    }
}

//! Integration + property tests for the fault-injection plane:
//!
//! * **determinism invariant #9** — a cluster configured with the
//!   default (no-op) `FaultConfig` is byte-identical to one with no
//!   fault plane at all: same `ClusterReport`, same rendered bytes, same
//!   Chrome trace. And a crashy scenario is bit-identical at any decode
//!   thread count.
//! * **exactly-once recovery** — a crash-with-recovery run completes
//!   every non-rejected request exactly once: sessions are lost, retries
//!   happen, nothing is double-finished and nothing is dropped.
//! * **chaos conservation** — under randomized fault schedules, routers,
//!   shard counts, deadlines and shedding, every tick satisfies
//!   `submitted = completed + rejected + dead-lettered + shed +
//!   in-flight`, and every run drains.
//! * **rejoin determinism** — a recovered shard re-enters rotation at
//!   its scheduled tick and receives traffic again, identically across
//!   repeated runs.
//! * **ci chaos smoke** — the fixed-seed crash-and-recover scenario the
//!   CI workflow runs: nonzero retries, zero dead letters, balanced
//!   ShardDown/ShardUp events.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use veda::{EngineBuilder, PrefixCacheConfig};
use veda_model::ModelConfig;
use veda_serving::{
    chrome_trace_json, Cluster, ClusterConfig, FaultConfig, FaultPlan, MigrationConfig, RecordingSink,
    RequestMix, RetryPolicy, RouterKind, SchedKind, ServeError, SinkHandle, TraceEvent, TraceEventKind,
    Workload,
};

fn engine(threads: usize) -> veda::Engine {
    EngineBuilder::new()
        .model(ModelConfig::tiny())
        .prefill_chunk(4)
        .decode_threads(threads)
        .build()
        .expect("valid config")
}

fn workload(seed: u64, rate: f64, requests: usize) -> Workload {
    Workload::poisson(seed, rate, requests, RequestMix::default())
}

/// Runs a cluster with the given fault plane, recording its trace.
fn run_faulted(
    seed: u64,
    shards: usize,
    threads: usize,
    faults: Option<FaultConfig>,
    requests: usize,
) -> (veda_serving::ClusterReport, Vec<TraceEvent>) {
    let (handle, recorder): (SinkHandle, Arc<Mutex<RecordingSink>>) = SinkHandle::recording();
    let config = ClusterConfig {
        shards,
        per_shard_capacity_bytes: 14 << 10,
        max_queue_depth: 32,
        router: RouterKind::RoundRobin,
        sched: SchedKind::Fcfs,
        trace: Some(handle),
        faults,
        ..ClusterConfig::default()
    };
    let engines = (0..shards).map(|_| engine(threads)).collect();
    let report = Cluster::new(engines, workload(seed, 0.6, requests), config).run();
    let events = recorder.lock().expect("recorder lock").take_events();
    (report, events)
}

fn crash_and_recover() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan::parse("crash@6:shard=1:recover=30").expect("valid plan"),
        ..FaultConfig::default()
    }
}

#[test]
fn empty_fault_plane_is_byte_identical_to_none() {
    // Determinism invariant #9 (pinned): the no-op fault plane and the
    // absent fault plane are the same run, down to the trace bytes.
    let (without, without_events) = run_faulted(11, 2, 1, None, 14);
    let (with, with_events) = run_faulted(11, 2, 1, Some(FaultConfig::default()), 14);
    assert_eq!(without, with, "reports must be identical");
    assert_eq!(without.to_string(), with.to_string(), "rendered reports must be identical");
    assert_eq!(
        chrome_trace_json(&without_events),
        chrome_trace_json(&with_events),
        "trace bytes must be identical"
    );
}

#[test]
fn faulted_run_bit_identical_across_thread_counts() {
    // Invariant #9's second half: the same seed + the same plan is
    // bit-identical at any decode thread count, crashes and all.
    let faults = FaultConfig {
        plan: FaultPlan::parse("crash@6:shard=1:recover=30:drain=2;degrade@3-40:shard=0:bw=0.25")
            .expect("valid plan"),
        ttft_deadline: Some(64),
        e2e_deadline: Some(256),
        shed_watermark: Some(0.9),
        ..FaultConfig::default()
    };
    let (baseline, baseline_events) = run_faulted(41, 2, 1, Some(faults.clone()), 16);
    let trace = chrome_trace_json(&baseline_events);
    for threads in [2, 8] {
        let (other, other_events) = run_faulted(41, 2, threads, Some(faults.clone()), 16);
        assert_eq!(baseline, other, "report differs at {threads} decode threads");
        assert_eq!(trace, chrome_trace_json(&other_events), "trace differs at {threads} decode threads");
    }
}

#[test]
fn crash_with_recovery_completes_every_request_exactly_once() {
    let (report, events) = run_faulted(7, 2, 1, Some(crash_and_recover()), 14);
    assert!(report.shard_downs == 1 && report.shard_ups == 1, "one crash, one recovery");
    assert!(report.retries > 0, "the crash must displace work into retries");
    assert_eq!(report.dead_letters, 0, "with a healthy peer nothing exhausts its retries");
    assert_eq!(report.shed, 0, "no watermark armed");
    assert_eq!(
        report.completed() + report.rejected(),
        report.submitted(),
        "every request resolves exactly once"
    );
    // Exactly-once at the event level: one terminal event per arrival.
    let mut finished_per_arrival = std::collections::BTreeMap::new();
    for event in &events {
        if matches!(event.kind, TraceEventKind::Finished { .. }) {
            *finished_per_arrival.entry(event.request).or_insert(0u32) += 1;
        }
    }
    assert!(
        finished_per_arrival.values().all(|&n| n == 1),
        "no request finishes twice, even after a lost attempt"
    );
    assert_eq!(finished_per_arrival.len(), report.completed(), "every completion has its event");
    // The lost sessions really were lost and re-prefilled: recovery
    // latency is observable on the surviving records.
    if report.lost_sessions > 0 {
        assert!(report.recovery().is_some(), "lost-then-recovered requests record their recovery wait");
    }
}

/// Engine with a deliberately starved, spill-enabled prefix cache: a
/// tiny byte bound and a short TTL force spill/fill/expiry churn while
/// the fault plane crashes shards and retries displaced work.
fn churny_engine(threads: usize) -> veda::Engine {
    EngineBuilder::new()
        .model(ModelConfig::tiny())
        .prefill_chunk(4)
        .decode_threads(threads)
        .prefix_cache(PrefixCacheConfig {
            min_match_tokens: 4,
            max_entries: 8,
            max_bytes: 13 << 10,
            ttl_ticks: 10,
            spill: true,
        })
        .build()
        .expect("valid config")
}

/// Crash + retry + spill, end to end: a crashed shard discards its
/// sessions (their seed pins release, so their entries become churnable
/// again), the retries re-prefill through a cache that is actively
/// spilling and expiring — and the run must still complete every
/// request exactly once, conserve cache entries on every shard, and be
/// bit-identical across decode thread counts.
#[test]
fn crash_retry_and_spill_churn_is_exactly_once_and_thread_invariant() {
    let run = |threads: usize| {
        let (handle, recorder) = SinkHandle::recording();
        let config = ClusterConfig {
            shards: 2,
            per_shard_capacity_bytes: 40 << 10,
            max_queue_depth: 32,
            router: RouterKind::PrefixAffinity,
            sched: SchedKind::Fcfs,
            trace: Some(handle),
            faults: Some(crash_and_recover()),
            ..ClusterConfig::default()
        };
        let engines = (0..2).map(|_| churny_engine(threads)).collect();
        let mix = RequestMix { shared_prefix_len: 12, prefix_groups: 3, ..RequestMix::default() };
        let report = Cluster::new(engines, Workload::poisson(7, 0.8, 28, mix), config).run();
        let events = recorder.lock().expect("recorder lock").take_events();
        (report, events)
    };
    let (report, events) = run(1);

    // The scenario actually exercises the churn plane.
    let (evictions, expiries, spills, fills) = report.prefix_churn();
    assert!(spills > 0, "the starved cache must spill under this load");
    assert!(fills > 0, "at least one spilled entry must be promoted back (got f{fills})");
    assert!(expiries > 0, "idle entries must hit the TTL (got x{expiries})");
    assert_eq!(evictions, 0, "spill-on caches spill instead of dropping");
    assert!(report.retries > 0, "the crash must displace work into retries");

    // Exactly-once, crash and churn notwithstanding.
    assert_eq!(
        report.completed() + report.rejected() + report.dead_letters as usize + report.shed as usize,
        report.submitted(),
        "terminal states partition the arrivals"
    );
    let mut finished_per_arrival = std::collections::BTreeMap::new();
    for event in &events {
        if matches!(event.kind, TraceEventKind::Finished { .. }) {
            *finished_per_arrival.entry(event.request).or_insert(0u32) += 1;
        }
    }
    assert!(finished_per_arrival.values().all(|&n| n == 1), "no request finishes twice");
    assert_eq!(finished_per_arrival.len(), report.completed(), "every completion has its event");

    // Cache-entry conservation closes on every shard, and spill traffic
    // was billed to the host links.
    for shard in &report.shards {
        assert!(
            shard.engine.prefix.entries_conserved(),
            "shard {}: cache entry conservation broke: {:?}",
            shard.shard_id,
            shard.engine.prefix
        );
        assert_eq!(
            shard.prefix_spill_bytes, shard.engine.prefix.spill_bytes,
            "shard {}: every spilled byte crosses the host link exactly once",
            shard.shard_id
        );
        assert_eq!(
            shard.prefix_fill_bytes, shard.engine.prefix.fill_bytes,
            "shard {}: every filled byte crosses the host link exactly once",
            shard.shard_id
        );
    }

    // Bit-identical across decode thread counts, churn and all.
    let trace = chrome_trace_json(&events);
    for threads in [2, 8] {
        let (other, other_events) = run(threads);
        assert_eq!(report, other, "churny faulted report differs at {threads} decode threads");
        assert_eq!(
            trace,
            chrome_trace_json(&other_events),
            "churny faulted trace differs at {threads} decode threads"
        );
    }
}

#[test]
fn recovered_shard_rejoins_rotation_deterministically() {
    let (first, first_events) = run_faulted(19, 2, 1, Some(crash_and_recover()), 20);
    let (second, _) = run_faulted(19, 2, 1, Some(crash_and_recover()), 20);
    assert_eq!(first, second, "the same seed + plan reproduces the same run bit-for-bit");
    let downs = first_events.iter().filter(|e| matches!(e.kind, TraceEventKind::ShardDown { .. })).count();
    let ups = first_events.iter().filter(|e| matches!(e.kind, TraceEventKind::ShardUp { .. })).count();
    assert_eq!((downs, ups), (1, 1), "one ShardDown matched by one ShardUp");
    // After the recovery tick the shard takes traffic again.
    let rejoined =
        first_events.iter().any(|e| e.shard == 1 && e.tick >= 30 && matches!(e.kind, TraceEventKind::Queued));
    assert!(rejoined, "the recovered shard must receive queued work after tick 30");
    assert!(first.availability() < 1.0, "the outage must dent availability");
    assert!(first.availability() > 0.5, "but only one shard of two was down, briefly");
}

#[test]
fn deadlines_time_out_and_dead_letter() {
    // A 1-tick TTFT deadline with a single attempt: everything that
    // queues for even one tick times out and dead-letters immediately.
    let faults = FaultConfig {
        ttft_deadline: Some(1),
        retry: RetryPolicy { max_attempts: 1, backoff_base: 1 },
        ..FaultConfig::default()
    };
    let (report, events) = run_faulted(13, 2, 1, Some(faults), 14);
    assert!(report.timeouts > 0, "a 1-tick TTFT deadline must fire");
    assert!(report.dead_letters > 0, "a 1-attempt budget must exhaust");
    assert_eq!(
        report.completed() + report.rejected() + report.dead_letters as usize + report.shed as usize,
        report.submitted(),
        "terminal states partition the arrivals"
    );
    assert!(
        events.iter().any(|e| matches!(e.kind, TraceEventKind::TimedOut { deadline: "ttft" })),
        "timeouts are traced with their deadline kind"
    );
}

#[test]
fn watermark_sheds_under_overload() {
    // A tiny queue with a burst of arrivals and a low watermark: the
    // shedder must fire, and shed requests are terminal.
    let (handle, recorder) = SinkHandle::recording();
    let config = ClusterConfig {
        shards: 2,
        per_shard_capacity_bytes: 14 << 10,
        max_queue_depth: 4,
        router: RouterKind::RoundRobin,
        sched: SchedKind::Fcfs,
        trace: Some(handle),
        faults: Some(FaultConfig { shed_watermark: Some(0.5), ..FaultConfig::default() }),
        ..ClusterConfig::default()
    };
    let engines = (0..2).map(|_| engine(1)).collect();
    let report = Cluster::new(engines, workload(3, 8.0, 24), config).run();
    let events = recorder.lock().expect("recorder lock").take_events();
    assert!(report.shed > 0, "a 0.5 watermark over 8 slots must shed under a rate-8 burst");
    assert_eq!(
        report.completed() + report.rejected() + report.dead_letters as usize + report.shed as usize,
        report.submitted(),
        "shed requests are terminal and accounted"
    );
    let shed_events = events.iter().filter(|e| matches!(e.kind, TraceEventKind::Shed)).count();
    assert_eq!(shed_events as u64, report.shed, "every shed is traced once");
}

#[test]
fn try_new_returns_typed_errors() {
    let mk = |n: usize| (0..n).map(|_| engine(1)).collect::<Vec<_>>();
    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
    let err = Cluster::try_new(mk(3), workload(1, 0.5, 4), config.clone()).expect_err("must fail");
    assert_eq!(err, ServeError::EngineCountMismatch { engines: 3, shards: 2 });
    let bad_plan = ClusterConfig {
        shards: 2,
        faults: Some(FaultConfig {
            plan: FaultPlan::parse("crash@5:shard=9").expect("parses"),
            ..FaultConfig::default()
        }),
        ..ClusterConfig::default()
    };
    let err = Cluster::try_new(mk(2), workload(1, 0.5, 4), bad_plan).expect_err("must fail");
    assert!(matches!(err, ServeError::InvalidFaultPlan(_)), "plan validation flows through try_new");
}

#[test]
fn ci_chaos_smoke() {
    // The fixed-seed scenario the CI workflow runs: crash shard 1 mid-load,
    // recover it, and demand a clean ledger afterwards.
    let (report, events) = run_faulted(2024, 2, 1, Some(crash_and_recover()), 18);
    assert!(report.retries > 0, "chaos smoke: the crash must force retries");
    assert_eq!(report.dead_letters, 0, "chaos smoke: zero lost requests after recovery");
    assert_eq!(
        report.completed() + report.rejected(),
        report.submitted(),
        "chaos smoke: every request resolves"
    );
    let downs = events.iter().filter(|e| matches!(e.kind, TraceEventKind::ShardDown { .. })).count();
    let ups = events.iter().filter(|e| matches!(e.kind, TraceEventKind::ShardUp { .. })).count();
    assert_eq!(downs, ups, "chaos smoke: every ShardDown is balanced by a ShardUp");
}

proptest! {
    #[test]
    fn chaos_conservation_holds_every_tick(
        seed in 0u64..10_000,
        shards in 1usize..4,
        router_index in 0usize..3,
        crash_shard_raw in 0usize..4,
        crash_at in 2u64..16,
        recover_delta in 0u64..40,
        drain_raw in 0u64..3,
        ttft_raw in 0u64..64,
        shed_raw in 0u64..100,
        migrate_raw in 0u8..2,
    ) {
        let router = [RouterKind::RoundRobin, RouterKind::LeastLoaded, RouterKind::PrefixAffinity]
            [router_index];
        // Encode the optional knobs in plain ranges (the offline proptest
        // shim has no option strategy): small raw values mean "off".
        let recover = (recover_delta >= 5).then(|| crash_at + recover_delta);
        let ttft_deadline = (ttft_raw >= 8).then_some(ttft_raw);
        let shed_watermark = (shed_raw >= 30).then(|| shed_raw as f64 / 100.0);
        let plan = FaultPlan {
            crashes: vec![veda_serving::ShardCrash {
                shard: crash_shard_raw % shards,
                at: crash_at,
                recover_at: recover,
                drain: drain_raw.min(crash_at),
            }],
            degradations: vec![],
        };
        let label = format!(
            "seed {seed}, {shards} shards, {router}, crash@{crash_at} shard {} recover {recover:?}, \
             ttft {ttft_deadline:?}, shed {shed_watermark:?}, migrate {}",
            crash_shard_raw % shards,
            migrate_raw == 1
        );
        let config = ClusterConfig {
            shards,
            per_shard_capacity_bytes: 14 << 10,
            max_queue_depth: 8,
            router,
            sched: SchedKind::Fcfs,
            migration: (migrate_raw == 1).then(MigrationConfig::default),
            faults: Some(FaultConfig {
                plan,
                ttft_deadline,
                shed_watermark,
                ..FaultConfig::default()
            }),
            ..ClusterConfig::default()
        };
        let engines = (0..shards).map(|_| engine(1)).collect();
        let mut cluster = Cluster::new(engines, workload(seed, 0.7, 10), config);
        let mut ticks = 0u64;
        while !cluster.is_done() {
            cluster.tick();
            ticks += 1;
            prop_assert!(ticks < 20_000, "chaos run must terminate ({label})");
            prop_assert_eq!(
                cluster.submitted(),
                cluster.completed()
                    + cluster.rejected()
                    + cluster.dead_lettered()
                    + cluster.shed()
                    + cluster.in_flight(),
                "conservation broke at tick {} ({})",
                cluster.now(),
                &label
            );
            for shard in cluster.shards() {
                prop_assert!(
                    shard.reserved_bytes() <= shard.capacity_bytes(),
                    "shard {} over-reserved under faults ({})",
                    shard.id(),
                    &label
                );
            }
        }
        prop_assert_eq!(cluster.in_flight(), 0, "drained cluster holds nothing ({})", &label);
        prop_assert_eq!(
            cluster.submitted(),
            cluster.completed() + cluster.rejected() + cluster.dead_lettered() + cluster.shed(),
            "terminal states partition the arrivals ({})",
            &label
        );
    }
}

//! Integration of the cluster plane (Workload → Router → Shard →
//! Engine): the determinism pins (1-shard round-robin cluster ≡
//! standalone server, same-seed runs bit-identical), the RNG-stream
//! discipline (shard count never perturbs what requests *are*),
//! migration's token-stream invariance, and the prefix-affinity payoff
//! over round-robin on shared-prefix traffic.

use std::collections::BTreeMap;

use veda::{EngineBuilder, PrefixCacheConfig, Request};
use veda_model::ModelConfig;
use veda_serving::{
    ArrivalKind, Cluster, ClusterConfig, ClusterReport, MigrationConfig, RequestMix, RouterKind, SchedKind,
    Server, ServerConfig, ServingReport, ServingRequest, Workload,
};

fn engine() -> veda::Engine {
    EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config")
}

fn engines(n: usize) -> Vec<veda::Engine> {
    (0..n).map(|_| engine()).collect()
}

fn workload(kind: ArrivalKind, seed: u64, total: usize) -> Workload {
    let mix = RequestMix::default();
    match kind {
        ArrivalKind::Poisson => Workload::poisson(seed, 0.6, total, mix),
        ArrivalKind::Burst => Workload::bursty(seed, 1.2, 6, 30, total, mix),
        ArrivalKind::Closed => Workload::closed_loop(seed, 3, 8.0, total, mix),
        ArrivalKind::Trace => {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            Workload::trace((0..total).map(|i| (3 * i as u64, mix.sample(&mut rng, i))).collect())
        }
    }
}

fn cluster_config(shards: usize, router: RouterKind, capacity: u64, sched: SchedKind) -> ClusterConfig {
    ClusterConfig {
        shards,
        per_shard_capacity_bytes: capacity,
        max_queue_depth: 64,
        router,
        sched,
        ..ClusterConfig::default()
    }
}

/// Generated token streams keyed by global arrival index, across every
/// shard's records. Sessions that migrated are skipped (their record's
/// session handle points at the admitting engine, not the one that
/// finished them) — [`completed_streams_sorted`] covers those.
fn tokens_by_arrival(shards: &[ServingReport]) -> BTreeMap<usize, Vec<usize>> {
    shards
        .iter()
        .flat_map(|shard| {
            shard.records.iter().filter_map(|record| {
                let session = record.session?;
                let outcome = shard.engine.requests.iter().find(|r| r.session == session)?;
                Some((record.arrival, outcome.report.generated.clone()))
            })
        })
        .collect()
}

/// Every completed request's generated token stream, cluster-wide, as a
/// sorted multiset — robust to migration re-homing sessions.
fn completed_streams_sorted(report: &ClusterReport) -> Vec<Vec<usize>> {
    let mut streams: Vec<Vec<usize>> = report
        .shards
        .iter()
        .flat_map(|s| s.engine.requests.iter().map(|r| r.report.generated.clone()))
        .collect();
    streams.sort();
    streams
}

#[test]
fn one_shard_round_robin_cluster_is_bit_identical_to_server() {
    for kind in [ArrivalKind::Poisson, ArrivalKind::Burst, ArrivalKind::Closed] {
        for sched in [SchedKind::Fcfs, SchedKind::Priority] {
            let capacity = 24 << 10;
            let server_config = ServerConfig {
                admission: veda_serving::AdmissionConfig { capacity_bytes: capacity, max_queue_depth: 64 },
                sched,
                ..ServerConfig::default()
            };
            let standalone = Server::new(engine(), workload(kind, 11, 18), server_config).run();

            let cluster = Cluster::new(
                engines(1),
                workload(kind, 11, 18),
                cluster_config(1, RouterKind::RoundRobin, capacity, sched),
            )
            .run();

            assert_eq!(cluster.shard_count, 1);
            assert_eq!(cluster.routed, vec![18]);
            assert_eq!(
                cluster.shards[0], standalone,
                "{kind}/{sched}: a 1-shard round-robin cluster must be bit-identical to the server"
            );
        }
    }
}

#[test]
fn same_seed_clusters_are_bit_identical() {
    for router in RouterKind::ALL {
        let run = |seed: u64| {
            Cluster::new(
                engines(3),
                workload(ArrivalKind::Poisson, seed, 24),
                cluster_config(3, router, 20 << 10, SchedKind::Fcfs),
            )
            .run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "{router}: same seed must reproduce the full cluster report");
        let c = run(8);
        assert_ne!(
            completed_streams_sorted(&a),
            completed_streams_sorted(&c),
            "{router}: different seeds produce different workloads"
        );
    }
}

#[test]
fn shard_count_never_perturbs_the_request_stream() {
    // The RNG-stream discipline: the workload samples requests centrally
    // in global arrival order, so splitting arrivals across shards must
    // not change what any request *is* — same priorities, and identical
    // token streams for every request completed under both shard counts.
    for kind in [ArrivalKind::Poisson, ArrivalKind::Burst] {
        let run = |shards: usize| {
            Cluster::new(
                engines(shards),
                workload(kind, 13, 24),
                cluster_config(shards, RouterKind::RoundRobin, 24 << 10, SchedKind::Fcfs),
            )
            .run()
        };
        let one = run(1);
        let three = run(3);
        assert_eq!(one.submitted(), 24);
        assert_eq!(three.submitted(), 24);

        let priorities = |report: &ClusterReport| -> BTreeMap<usize, u8> {
            report.shards.iter().flat_map(|s| s.records.iter().map(|r| (r.arrival, r.priority))).collect()
        };
        assert_eq!(priorities(&one), priorities(&three), "{kind}: per-arrival RNG draws must not move");

        let one_tokens = tokens_by_arrival(&one.shards);
        let three_tokens = tokens_by_arrival(&three.shards);
        let mut compared = 0;
        for (arrival, tokens) in &one_tokens {
            if let Some(other) = three_tokens.get(arrival) {
                assert_eq!(other, tokens, "{kind}: arrival {arrival} generated different tokens");
                compared += 1;
            }
        }
        assert!(compared > 0, "{kind}: some requests must complete under both shard counts");
    }
}

#[test]
fn every_router_completes_and_accounts_routing() {
    for router in RouterKind::ALL {
        let report = Cluster::new(
            engines(3),
            workload(ArrivalKind::Poisson, 11, 24),
            cluster_config(3, router, 24 << 10, SchedKind::Fcfs),
        )
        .run();
        assert_eq!(report.router, router);
        assert_eq!(report.submitted(), 24, "{router}");
        assert_eq!(report.routed.iter().sum::<usize>(), 24, "{router}: every arrival is routed once");
        assert_eq!(
            report.completed() + report.rejected(),
            report.submitted(),
            "{router}: every request completes or is rejected"
        );
        assert!(report.completed() > 0, "{router}");
        assert!(report.ttft().is_some() && report.e2e().is_some(), "{router}");
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.shard_id, i, "{router}: shard reports carry their index");
            assert!(shard.kv_reserved_peak_bytes <= shard.capacity_bytes, "{router}/shard {i}");
        }
        assert_eq!(report.kv_reserved_series.len(), 3);
        assert!(report.kv_reserved_series.iter().all(|s| s.len() as u64 <= report.ticks));
        if router == RouterKind::RoundRobin {
            let max = report.routed.iter().max().unwrap();
            let min = report.routed.iter().min().unwrap();
            assert!(max - min <= 1, "round-robin splits arrivals evenly: {:?}", report.routed);
        }
    }
}

/// Trace with size-alternating requests: even arrivals are large, odd
/// arrivals small, all at tick 0 — under round-robin across 2 shards this
/// loads shard 0 far above shard 1.
fn imbalanced_trace(total: usize) -> Workload {
    let arrivals = (0..total)
        .map(|i| {
            let (prompt_len, max_new) = if i % 2 == 0 { (30, 10) } else { (4, 4) };
            let prompt: Vec<usize> = (0..prompt_len).map(|j| (i + 3 * j) % 50 + 1).collect();
            (0u64, ServingRequest { request: Request::new(prompt, max_new), priority: 0 })
        })
        .collect();
    Workload::trace(arrivals)
}

fn migration_cluster(migration: Option<MigrationConfig>) -> ClusterReport {
    let per_token = engine().kv_bytes_per_token();
    let config = ClusterConfig {
        migration,
        ..cluster_config(2, RouterKind::RoundRobin, 200 * per_token, SchedKind::Fcfs)
    };
    Cluster::new(engines(2), imbalanced_trace(6), config).run()
}

#[test]
fn migration_rebalances_hot_shards_without_changing_token_streams() {
    let migration = MigrationConfig { hot_fraction: 0.5, cold_fraction: 0.5, max_per_tick: 1 };
    let off = migration_cluster(None);
    let on = migration_cluster(Some(migration));

    assert_eq!(off.migrations, 0);
    assert_eq!(off.migration_bytes, 0);
    assert!(on.migrations > 0, "the imbalanced trace must trigger migration");
    assert!(on.migration_bytes > 0, "migrated KV state is costed by the byte");
    assert!(on.migration_cycles > 0, "both host links charge cycles");
    assert_eq!(on.completed(), on.submitted(), "migration delays, never kills");

    // The acceptance invariant: migration changes *where* a session runs,
    // never *which* tokens it generates.
    assert_eq!(
        completed_streams_sorted(&on),
        completed_streams_sorted(&off),
        "migration must not change any generated token sequence"
    );

    // Migration is not preemption: it is accounted separately, as
    // migration-tagged host-link traffic, not swap counters.
    assert_eq!(on.shards.iter().map(|s| s.preemptions).sum::<u64>(), 0);

    // Same-seed migration runs are bit-identical too.
    assert_eq!(on, migration_cluster(Some(migration)));
}

#[test]
fn prefix_affinity_beats_round_robin_on_shared_prefix_traffic() {
    // Four prompt groups over three shards: round-robin scatters each
    // group across every shard (each shard pays its own cold miss per
    // group), while prefix-affinity pins each group to the shard that
    // already holds its prefix — fewer cold misses, higher cluster-wide
    // hit rate. This is the acceptance criterion BENCH_cluster.json
    // records.
    use veda::Budget;
    let mix = RequestMix {
        shared_prefix_len: 24,
        prefix_groups: 4,
        prompt_len: (3, 6),
        max_new_tokens: (4, 8),
        budgets: vec![Budget::Unbounded],
        ..RequestMix::default()
    };
    let run = |router: RouterKind| {
        let engines: Vec<veda::Engine> = (0..3)
            .map(|_| {
                EngineBuilder::new()
                    .model(ModelConfig::tiny())
                    .prefix_cache(PrefixCacheConfig {
                        min_match_tokens: 8,
                        max_entries: 16,
                        ..PrefixCacheConfig::default()
                    })
                    .build()
                    .expect("valid config")
            })
            .collect();
        let workload = Workload::poisson(19, 0.6, 40, mix.clone());
        Cluster::new(engines, workload, cluster_config(3, router, 1 << 20, SchedKind::Fcfs)).run()
    };
    let rr = run(RouterKind::RoundRobin);
    let affinity = run(RouterKind::PrefixAffinity);
    assert_eq!(rr.completed(), 40, "ample capacity: everything completes");
    assert_eq!(affinity.completed(), 40);
    assert!(affinity.prefix_hits() > 0);
    assert!(
        affinity.prefix_hit_rate() > rr.prefix_hit_rate(),
        "prefix affinity must beat round-robin on shared-prefix traffic: {:.2} vs {:.2}",
        affinity.prefix_hit_rate(),
        rr.prefix_hit_rate()
    );

    // Routing never changes what a request generates, only where.
    assert_eq!(completed_streams_sorted(&affinity), completed_streams_sorted(&rr));
}

#[test]
fn cluster_report_display_shows_the_cluster_plane() {
    let text = Cluster::new(
        engines(2),
        workload(ArrivalKind::Poisson, 3, 16),
        cluster_config(2, RouterKind::LeastLoaded, 20 << 10, SchedKind::Srb),
    )
    .run()
    .to_string();
    for needle in [
        "cluster report",
        "2 shards",
        "least_loaded",
        "routed",
        "migrations",
        "shard 0",
        "shard 1",
        "ttft",
        "p99",
    ] {
        assert!(text.contains(needle), "cluster report must mention {needle:?}:\n{text}");
    }
}

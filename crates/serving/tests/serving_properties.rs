//! Property tests for the serving invariants, over randomized seeds,
//! arrival rates, schedulers and capacities:
//!
//! * conservation — at every tick, `submitted = completed + rejected +
//!   in-flight`;
//! * capacity — admission-reserved bytes never exceed the configured HBM
//!   capacity, and the KV bytes actually resident never exceed the
//!   reservation (so resident ≤ capacity transitively);
//! * termination — every run drains within the tick budget.

use proptest::prelude::*;
use veda::EngineBuilder;
use veda_model::ModelConfig;
use veda_serving::{AdmissionConfig, RequestMix, SchedKind, Server, ServerConfig, Workload};

fn check_invariants_all_ticks(seed: u64, rate: f64, sched: SchedKind, capacity_bytes: u64) {
    let engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    let total = 10;
    let workload = Workload::poisson(seed, rate, total, RequestMix::default());
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes, max_queue_depth: 8 },
        sched,
        ..ServerConfig::default()
    };
    let mut server = Server::new(engine, workload, config);

    let mut ticks = 0u64;
    while !server.is_done() {
        server.tick();
        ticks += 1;
        assert!(ticks < 10_000, "run must terminate (seed {seed}, rate {rate}, {sched})");

        prop_assert_eq!(
            server.submitted(),
            server.completed() + server.rejected() + server.in_flight(),
            "conservation broke at tick {} (seed {}, rate {}, {})",
            server.now(),
            seed,
            rate,
            sched
        );
        prop_assert!(
            server.reserved_bytes() <= server.capacity_bytes(),
            "reserved {} exceeds capacity {} at tick {} (seed {}, {})",
            server.reserved_bytes(),
            server.capacity_bytes(),
            server.now(),
            seed,
            sched
        );
        prop_assert!(
            server.engine().kv_bytes_active() <= server.reserved_bytes(),
            "resident {} exceeds reservation {} at tick {} (seed {}, {})",
            server.engine().kv_bytes_active(),
            server.reserved_bytes(),
            server.now(),
            seed,
            sched
        );
    }
    prop_assert_eq!(server.submitted(), total, "workload must deliver every request");
    prop_assert_eq!(server.in_flight(), 0, "drained server holds nothing");
}

proptest! {
    #[test]
    fn serving_invariants_hold_every_tick(
        seed in 0u64..10_000,
        rate in 0.1f64..2.0,
        sched_index in 0usize..4,
        capacity_kb in 13u64..40,
    ) {
        let sched = SchedKind::ALL[sched_index];
        check_invariants_all_ticks(seed, rate, sched, capacity_kb << 10);
    }
}

//! Property tests for the serving invariants, over randomized seeds,
//! arrival rates, schedulers and capacities:
//!
//! * conservation — at every tick, `submitted = completed + rejected +
//!   in-flight`;
//! * capacity — admission-reserved bytes never exceed the configured HBM
//!   capacity, and the KV bytes actually resident never exceed the
//!   reservation (so resident ≤ capacity transitively);
//! * termination — every run drains within the tick budget.
//!
//! A second property re-checks the same invariants under *adversarial
//! prefix-cache churn* — a byte-starved cache with a short TTL, spill on
//! or off — where the shared-prefix admission discount is only sound if
//! the pin plumbing works: evicting/expiring/spilling an entry out from
//! under a discounted reservation would let resident KV bytes exceed
//! what admission reserved.

use proptest::prelude::*;
use veda::{EngineBuilder, PrefixCacheConfig};
use veda_model::ModelConfig;
use veda_serving::{AdmissionConfig, RequestMix, SchedKind, Server, ServerConfig, Workload};

fn check_invariants_all_ticks(seed: u64, rate: f64, sched: SchedKind, capacity_bytes: u64) {
    let engine = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config");
    let total = 10;
    let workload = Workload::poisson(seed, rate, total, RequestMix::default());
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes, max_queue_depth: 8 },
        sched,
        ..ServerConfig::default()
    };
    let mut server = Server::new(engine, workload, config);

    let mut ticks = 0u64;
    while !server.is_done() {
        server.tick();
        ticks += 1;
        assert!(ticks < 10_000, "run must terminate (seed {seed}, rate {rate}, {sched})");

        prop_assert_eq!(
            server.submitted(),
            server.completed() + server.rejected() + server.in_flight(),
            "conservation broke at tick {} (seed {}, rate {}, {})",
            server.now(),
            seed,
            rate,
            sched
        );
        prop_assert!(
            server.reserved_bytes() <= server.capacity_bytes(),
            "reserved {} exceeds capacity {} at tick {} (seed {}, {})",
            server.reserved_bytes(),
            server.capacity_bytes(),
            server.now(),
            seed,
            sched
        );
        prop_assert!(
            server.engine().kv_bytes_active() <= server.reserved_bytes(),
            "resident {} exceeds reservation {} at tick {} (seed {}, {})",
            server.engine().kv_bytes_active(),
            server.reserved_bytes(),
            server.now(),
            seed,
            sched
        );
    }
    prop_assert_eq!(server.submitted(), total, "workload must deliver every request");
    prop_assert_eq!(server.in_flight(), 0, "drained server holds nothing");
}

/// The churn-soundness property: drive a server whose engine runs a
/// deliberately starved prefix cache (tiny byte bound, short TTL,
/// optional spill) under a shared-prefix workload, and assert on every
/// tick that the discounted admission accounting still closes.
fn check_churn_soundness(seed: u64, rate: f64, capacity_bytes: u64, max_kb: u64, ttl: u64, spill: bool) {
    let engine = EngineBuilder::new()
        .model(ModelConfig::tiny())
        .prefix_cache(PrefixCacheConfig {
            min_match_tokens: 4,
            max_entries: 8,
            max_bytes: max_kb << 10,
            ttl_ticks: ttl,
            spill,
        })
        .build()
        .expect("valid config");
    let total = 12;
    let mix = RequestMix { shared_prefix_len: 12, ..RequestMix::default() };
    let workload = Workload::poisson(seed, rate, total, mix);
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes, max_queue_depth: 8 },
        ..ServerConfig::default()
    };
    let mut server = Server::new(engine, workload, config);

    let mut ticks = 0u64;
    while !server.is_done() {
        server.tick();
        ticks += 1;
        assert!(ticks < 20_000, "churny run must terminate (seed {seed})");

        prop_assert_eq!(
            server.submitted(),
            server.completed() + server.rejected() + server.in_flight(),
            "conservation broke at tick {} (seed {})",
            server.now(),
            seed
        );
        prop_assert!(
            server.reserved_bytes() <= server.capacity_bytes(),
            "reserved {} exceeds capacity {} at tick {} (seed {})",
            server.reserved_bytes(),
            server.capacity_bytes(),
            server.now(),
            seed
        );
        // The discount-soundness observable: a never-evicts request
        // reserved only its unshared bytes; if churn could shrink the
        // match between accept and submit, the session would privately
        // own more than admission reserved and this would trip.
        prop_assert!(
            server.engine().kv_bytes_active() <= server.reserved_bytes(),
            "resident {} exceeds reservation {} at tick {} (seed {}, ttl {}, spill {})",
            server.engine().kv_bytes_active(),
            server.reserved_bytes(),
            server.now(),
            seed,
            ttl,
            spill
        );
        // Entry conservation: insertions = resident (either tier) +
        // evictions + expiries; spills/fills are tier moves, net zero.
        let stats = server.engine().prefix_cache_stats();
        prop_assert!(
            stats.entries_conserved(),
            "cache entry conservation broke at tick {}: {:?} (seed {})",
            server.now(),
            stats,
            seed
        );
        if !spill {
            prop_assert_eq!(
                (stats.host_entries, stats.spills, stats.fills),
                (0, 0, 0),
                "spill-off cache grew a host tier at tick {} (seed {})",
                server.now(),
                seed
            );
        }
    }
    prop_assert_eq!(server.submitted(), total, "workload must deliver every request");
    prop_assert_eq!(server.in_flight(), 0, "drained server holds nothing");

    // Lookup conservation: every admission performs exactly one cache
    // lookup, and expiry/spill churn must not mint or lose lookups.
    let stats = server.engine().prefix_cache_stats();
    let report = server.run();
    prop_assert_eq!(
        stats.hits + stats.misses,
        report.admitted as u64,
        "hits + misses must equal admissions (seed {seed})"
    );
    prop_assert!(stats.hit_rate().is_finite(), "hit rate is total, even with zero lookups");
}

proptest! {
    #[test]
    fn serving_invariants_hold_every_tick(
        seed in 0u64..10_000,
        rate in 0.1f64..2.0,
        sched_index in 0usize..4,
        capacity_kb in 13u64..40,
    ) {
        let sched = SchedKind::ALL[sched_index];
        check_invariants_all_ticks(seed, rate, sched, capacity_kb << 10);
    }

    /// Adversarial-churn soundness: tiny cache byte bounds and short
    /// TTLs force eviction/expiry/spill traffic while discounted
    /// admissions are in flight; every accounting invariant must still
    /// hold on every tick.
    #[test]
    fn churny_prefix_cache_never_breaks_admission_soundness(
        seed in 0u64..5_000,
        rate in 0.2f64..2.0,
        capacity_kb in 13u64..40,
        max_kb in 1u64..8,
        ttl in 2u64..40,
        spill_sel in 0usize..2,
    ) {
        check_churn_soundness(seed, rate, capacity_kb << 10, max_kb, ttl, spill_sel == 1);
    }
}

//! Integration + property tests for the observability plane:
//!
//! * **sink neutrality** — installing a trace sink never changes the run:
//!   the `ServingReport` (and its rendered bytes) are identical with and
//!   without a sink, over randomized seeds/schedulers/capacities;
//! * **determinism invariant #8** — same seed ⇒ byte-identical Chrome
//!   trace, regardless of decode thread count (events are emitted
//!   coordinator-side only, never from the decode fan-out), pinned by
//!   `trace_bytes_identical_across_thread_counts`; a 1-shard round-robin
//!   cluster's trace is byte-identical to the standalone server's;
//! * **event conservation** — every submitted request produces exactly
//!   one `Submitted` event and exactly one terminal event (`Finished` or
//!   `Rejected`), and each completed request's waterfall stages sum
//!   exactly to its end-to-end latency;
//! * **export validity** — the Chrome-trace-event JSON parses under the
//!   strict validator, carries one process track per shard, and one
//!   `finished` instant per completed request.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use veda::EngineBuilder;
use veda_model::ModelConfig;
use veda_serving::{
    chrome_trace_json, AdmissionConfig, Cluster, ClusterConfig, MigrationConfig, RecordingSink, RequestMix,
    RouterKind, SchedKind, Server, ServerConfig, ServingReport, SinkHandle, TraceEvent, TraceEventKind,
    Workload,
};

fn engine(threads: usize) -> veda::Engine {
    EngineBuilder::new()
        .model(ModelConfig::tiny())
        .prefill_chunk(4)
        .decode_threads(threads)
        .build()
        .expect("valid config")
}

fn workload(seed: u64, rate: f64, requests: usize) -> Workload {
    Workload::poisson(seed, rate, requests, RequestMix::default())
}

/// Runs a standalone server, optionally recording its trace.
fn run_server(
    seed: u64,
    rate: f64,
    requests: usize,
    capacity_kb: u64,
    sched: SchedKind,
    threads: usize,
    record: bool,
) -> (ServingReport, Vec<TraceEvent>) {
    let (trace, recorder): (Option<SinkHandle>, Option<Arc<Mutex<RecordingSink>>>) = if record {
        let (handle, recorder) = SinkHandle::recording();
        (Some(handle), Some(recorder))
    } else {
        (None, None)
    };
    let config = ServerConfig {
        admission: AdmissionConfig { capacity_bytes: capacity_kb << 10, max_queue_depth: 16 },
        sched,
        trace,
        ..ServerConfig::default()
    };
    let report = Server::new(engine(threads), workload(seed, rate, requests), config).run();
    let events = recorder.map(|r| r.lock().expect("recorder lock").take_events()).unwrap_or_default();
    (report, events)
}

/// Runs a cluster, always recording its trace.
fn run_cluster_trace(
    seed: u64,
    shards: usize,
    capacity_kb: u64,
    threads: usize,
    migrate: bool,
) -> (veda_serving::ClusterReport, Vec<TraceEvent>) {
    let (handle, recorder) = SinkHandle::recording();
    let config = ClusterConfig {
        shards,
        per_shard_capacity_bytes: capacity_kb << 10,
        max_queue_depth: 16,
        router: RouterKind::RoundRobin,
        sched: SchedKind::Fcfs,
        migration: migrate.then(MigrationConfig::default),
        trace: Some(handle),
        ..ClusterConfig::default()
    };
    let engines = (0..shards).map(|_| engine(threads)).collect();
    let report = Cluster::new(engines, workload(seed, 0.6, 12), config).run();
    let events = recorder.lock().expect("recorder lock").take_events();
    (report, events)
}

#[test]
fn trace_bytes_identical_across_thread_counts() {
    // Determinism invariant #8 (pinned): the trace's bytes depend on the
    // seed and configuration, never on the decode thread count.
    let baseline = run_server(41, 0.7, 16, 14, SchedKind::Priority, 1, true);
    let trace = chrome_trace_json(&baseline.1);
    for threads in [2, 8] {
        let other = run_server(41, 0.7, 16, 14, SchedKind::Priority, threads, true);
        assert_eq!(baseline.0, other.0, "report differs at {threads} decode threads");
        assert_eq!(trace, chrome_trace_json(&other.1), "trace differs at {threads} decode threads");
    }
}

#[test]
fn one_shard_cluster_trace_matches_server() {
    // The cluster plane is a strict generalization of the server: on one
    // shard under round-robin the whole event stream is byte-identical.
    let (server_report, server_events) = run_server(23, 0.6, 12, 14, SchedKind::Fcfs, 1, true);
    let (cluster_report, cluster_events) = run_cluster_trace(23, 1, 14, 1, false);
    assert_eq!(server_report, cluster_report.shards[0]);
    assert_eq!(chrome_trace_json(&server_events), chrome_trace_json(&cluster_events));
}

#[test]
fn cluster_trace_bytes_identical_across_thread_counts() {
    let (_, baseline) = run_cluster_trace(77, 2, 13, 1, true);
    let trace = chrome_trace_json(&baseline);
    for threads in [2, 8] {
        let (_, other) = run_cluster_trace(77, 2, 13, threads, true);
        assert_eq!(trace, chrome_trace_json(&other), "cluster trace differs at {threads} threads");
    }
}

#[test]
fn chrome_export_is_valid_and_complete() {
    let (report, events) = run_cluster_trace(19, 2, 14, 1, true);
    let json = chrome_trace_json(&events);
    veda_telemetry::json::validate(&json).expect("chrome trace must be valid JSON");
    let tracks = json.matches("\"process_name\"").count();
    assert_eq!(tracks, 2, "one process-name metadata record per shard");
    let finished = events.iter().filter(|e| matches!(e.kind, TraceEventKind::Finished { .. })).count();
    assert_eq!(finished, report.completed(), "one finished event per completed request");
}

#[test]
fn zero_completion_run_exports_cleanly() {
    // Capacity so small nothing ever fits: every request is rejected,
    // no waterfall exists, and the exporter still writes valid JSON.
    let (report, events) = run_server(5, 0.5, 6, 0, SchedKind::Fcfs, 1, true);
    assert_eq!(report.completed, 0);
    assert!(report.stages().is_none(), "no stages on a zero-completion run");
    veda_telemetry::json::validate(&chrome_trace_json(&events)).expect("valid JSON");
    let submitted = events.iter().filter(|e| matches!(e.kind, TraceEventKind::Submitted { .. })).count();
    assert_eq!(submitted, report.submitted);
}

proptest! {
    /// Installing a sink is observation-only: the report — and its
    /// rendered bytes — never change.
    #[test]
    fn sink_never_changes_the_report(
        seed in 0u64..10_000,
        rate in 0.1f64..1.5,
        sched_index in 0usize..4,
        capacity_kb in 13u64..40,
    ) {
        let sched = SchedKind::ALL[sched_index];
        let (without, _) = run_server(seed, rate, 10, capacity_kb, sched, 1, false);
        let (with, events) = run_server(seed, rate, 10, capacity_kb, sched, 1, true);
        prop_assert_eq!(&without, &with, "sink changed the report");
        prop_assert_eq!(without.to_string(), with.to_string(), "sink changed the rendered bytes");
        prop_assert!(!events.is_empty(), "a non-empty run emits events");
    }

    /// Every submitted request produces exactly one `Submitted` and
    /// exactly one terminal event, and every completed request's
    /// waterfall stages sum exactly to its end-to-end latency.
    #[test]
    fn events_conserve_and_waterfalls_sum(
        seed in 0u64..10_000,
        rate in 0.1f64..1.5,
        sched_index in 0usize..4,
        capacity_kb in 13u64..40,
        shards in 1usize..4,
    ) {
        let sched = SchedKind::ALL[sched_index];
        let (report, events) = {
            let (handle, recorder) = SinkHandle::recording();
            let config = ClusterConfig {
                shards,
                per_shard_capacity_bytes: capacity_kb << 10,
                max_queue_depth: 16,
                router: RouterKind::RoundRobin,
                sched,
                migration: (shards > 1).then(MigrationConfig::default),
                trace: Some(handle),
                ..ClusterConfig::default()
            };
            let engines = (0..shards).map(|_| engine(1)).collect();
            let report = Cluster::new(engines, workload(seed, rate, 10), config).run();
            let events = recorder.lock().expect("recorder lock").take_events();
            (report, events)
        };

        let mut submitted: BTreeMap<u64, usize> = BTreeMap::new();
        let mut terminal: BTreeMap<u64, usize> = BTreeMap::new();
        for event in &events {
            if matches!(event.kind, TraceEventKind::Submitted { .. }) {
                *submitted.entry(event.request).or_default() += 1;
            }
            if event.kind.is_terminal() {
                *terminal.entry(event.request).or_default() += 1;
            }
        }
        prop_assert_eq!(submitted.len(), report.submitted(), "one Submitted per request");
        prop_assert!(submitted.values().all(|&n| n == 1), "Submitted emitted exactly once");
        prop_assert_eq!(
            terminal.len(),
            report.completed() + report.rejected(),
            "one terminal event per resolved request"
        );
        prop_assert!(terminal.values().all(|&n| n == 1), "terminal emitted exactly once");

        for shard in &report.shards {
            for record in &shard.records {
                if let (Some(w), Some(e2e)) = (record.waterfall(), record.e2e()) {
                    prop_assert_eq!(
                        w.e2e(), e2e,
                        "stage durations must sum to end-to-end latency"
                    );
                }
            }
        }
    }
}

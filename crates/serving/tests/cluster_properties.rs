//! Property tests for the cluster-plane invariants, over randomized
//! seeds, shard counts, routers, schedulers and migration on/off:
//!
//! * conservation — at every tick, cluster-wide `submitted =
//!   Σ per-shard (completed + rejected) + in-flight` (records and
//!   sessions may live on different shards after a migration; the sums
//!   still balance because outboxes drain within the tick);
//! * capacity — every shard's admission-reserved bytes stay within its
//!   configured capacity, and its engine's resident KV bytes stay within
//!   the reservation;
//! * termination — every run drains within the tick budget.

use proptest::prelude::*;
use veda::EngineBuilder;
use veda_model::ModelConfig;
use veda_serving::{Cluster, ClusterConfig, MigrationConfig, RequestMix, RouterKind, SchedKind, Workload};

fn check_invariants_all_ticks(
    seed: u64,
    rate: f64,
    shards: usize,
    router: RouterKind,
    sched: SchedKind,
    capacity_bytes: u64,
    migration: Option<MigrationConfig>,
) {
    let engines = (0..shards)
        .map(|_| EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config"))
        .collect();
    let total = 10;
    let workload = Workload::poisson(seed, rate, total, RequestMix::default());
    let config = ClusterConfig {
        shards,
        per_shard_capacity_bytes: capacity_bytes,
        max_queue_depth: 8,
        router,
        sched,
        migration,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(engines, workload, config);
    let label = format!("seed {seed}, rate {rate}, {shards} shards, {router}, {sched}");

    let mut ticks = 0u64;
    while !cluster.is_done() {
        cluster.tick();
        ticks += 1;
        assert!(ticks < 20_000, "run must terminate ({label})");

        prop_assert_eq!(
            cluster.submitted(),
            cluster.completed() + cluster.rejected() + cluster.in_flight(),
            "conservation broke at tick {} ({})",
            cluster.now(),
            &label
        );
        for shard in cluster.shards() {
            prop_assert!(
                shard.reserved_bytes() <= shard.capacity_bytes(),
                "shard {} reserved {} exceeds capacity {} at tick {} ({})",
                shard.id(),
                shard.reserved_bytes(),
                shard.capacity_bytes(),
                cluster.now(),
                &label
            );
            prop_assert!(
                shard.engine().kv_bytes_active() <= shard.reserved_bytes(),
                "shard {} resident {} exceeds reservation {} at tick {} ({})",
                shard.id(),
                shard.engine().kv_bytes_active(),
                shard.reserved_bytes(),
                cluster.now(),
                &label
            );
        }
    }
    prop_assert_eq!(cluster.submitted(), total, "workload must deliver every request");
    prop_assert_eq!(cluster.in_flight(), 0, "drained cluster holds nothing");
}

proptest! {
    #[test]
    fn cluster_invariants_hold_every_tick(
        seed in 0u64..10_000,
        rate in 0.1f64..2.0,
        shards in 1usize..4,
        router_index in 0usize..3,
        sched_index in 0usize..4,
        capacity_kb in 13u64..40,
        migrate_index in 0usize..2,
    ) {
        let router = RouterKind::ALL[router_index];
        let sched = SchedKind::ALL[sched_index];
        // Default thresholds (hot 0.85 / cold 0.6): migration only fires
        // under genuine imbalance, but the invariants must hold either way.
        let migration =
            if migrate_index == 1 && shards > 1 { Some(MigrationConfig::default()) } else { None };
        check_invariants_all_ticks(seed, rate, shards, router, sched, capacity_kb << 10, migration);
    }
}

//! Timed request arrival generation: open-loop Poisson and bursty on-off
//! processes, a closed-loop N-users think-time model, and deterministic
//! trace replay — all seeded and reproducible.
//!
//! A [`Workload`] produces [`ServingRequest`]s stamped with virtual-clock
//! arrival ticks. Open-loop processes precompute their whole arrival
//! sequence at construction (arrivals do not depend on service times);
//! the closed-loop process schedules each user's next request only when a
//! previous one completes ([`Workload::notify_completion`]), modeling
//! interactive users with exponential think times.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veda::{Budget, Request};
use veda_eviction::PolicyKind;

/// One request as the serving layer sees it: the engine [`Request`] plus
/// scheduling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRequest {
    /// The engine request (prompt, limits, policy, budget).
    pub request: Request,
    /// Priority tier, higher is more important (used by the priority
    /// scheduler; ignored by the others).
    pub priority: u8,
}

/// The arrival process families a [`Workload`] can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Open-loop Poisson arrivals at a constant rate.
    Poisson,
    /// Open-loop on-off (bursty) arrivals: Poisson bursts separated by
    /// silent gaps.
    Burst,
    /// Closed-loop: N users alternate between waiting for their request
    /// and thinking for an exponential time.
    Closed,
    /// Deterministic replay of an explicit arrival trace.
    Trace,
}

impl ArrivalKind {
    /// All kinds, in presentation order.
    pub const ALL: [ArrivalKind; 4] =
        [ArrivalKind::Poisson, ArrivalKind::Burst, ArrivalKind::Closed, ArrivalKind::Trace];

    /// Stable identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Burst => "burst",
            ArrivalKind::Closed => "closed",
            ArrivalKind::Trace => "trace",
        }
    }
}

impl std::fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing an [`ArrivalKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArrivalKindError(String);

impl std::fmt::Display for ParseArrivalKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown arrival process {:?} (expected one of: poisson, burst, closed, trace)", self.0)
    }
}

impl std::error::Error for ParseArrivalKindError {}

impl std::str::FromStr for ArrivalKind {
    type Err = ParseArrivalKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "poisson" | "open" => Ok(ArrivalKind::Poisson),
            "burst" | "bursty" | "onoff" | "on-off" => Ok(ArrivalKind::Burst),
            "closed" | "closed-loop" | "closedloop" | "users" => Ok(ArrivalKind::Closed),
            "trace" | "replay" => Ok(ArrivalKind::Trace),
            _ => Err(ParseArrivalKindError(s.to_string())),
        }
    }
}

/// Population the request generator samples from: policies and budgets
/// rotate deterministically per request; prompt lengths, generation
/// limits and priorities are drawn from the seeded RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMix {
    /// Eviction policies, assigned round-robin by arrival index.
    pub policies: Vec<PolicyKind>,
    /// Cache budgets, assigned round-robin by arrival index.
    pub budgets: Vec<Budget>,
    /// Inclusive prompt-length bounds. With shared prefixes enabled these
    /// bound the private *suffix* — the shared prefix is prepended on top.
    pub prompt_len: (usize, usize),
    /// Inclusive generated-token bounds (min must be ≥ 1 so every request
    /// produces a first token).
    pub max_new_tokens: (usize, usize),
    /// Number of priority tiers; priorities are drawn from `0..tiers`.
    pub priority_tiers: u8,
    /// Vocabulary size prompts are drawn from (tokens in `1..vocab`).
    pub vocab_size: usize,
    /// Shared-prefix length in tokens; `0` (the default) disables shared
    /// prefixes entirely. When positive, each request's prompt is its
    /// group's deterministic prefix of this length followed by a random
    /// private suffix drawn from the `prompt_len` bounds — the workload
    /// shape that exercises the engine's prefix cache (common system
    /// prompts / few-shot templates shared across sessions).
    pub shared_prefix_len: usize,
    /// Number of distinct prefix groups; requests rotate through them by
    /// arrival index. Ignored (treated as 1) unless `shared_prefix_len`
    /// is positive.
    pub prefix_groups: usize,
}

impl Default for RequestMix {
    /// The mixed population the serving example ships: all four
    /// policy/budget pairings over short prompts sized for
    /// [`veda_model::ModelConfig::tiny`].
    fn default() -> Self {
        Self {
            policies: vec![PolicyKind::Voting, PolicyKind::H2o, PolicyKind::SlidingWindow, PolicyKind::Full],
            budgets: vec![Budget::Ratio(0.5), Budget::Fixed(12), Budget::Ratio(0.25), Budget::Unbounded],
            prompt_len: (12, 32),
            max_new_tokens: (6, 16),
            priority_tiers: 3,
            vocab_size: veda_model::ModelConfig::tiny().vocab_size,
            shared_prefix_len: 0,
            prefix_groups: 0,
        }
    }
}

impl RequestMix {
    /// The deterministic shared prefix of `group` (independent of the
    /// workload RNG, so every arrival process generates the identical
    /// prefix for a group — the property that makes prompts actually
    /// shareable).
    pub fn group_prefix(&self, group: usize) -> Vec<usize> {
        (0..self.shared_prefix_len).map(|j| (group * 31 + j * 7 + 1) % (self.vocab_size - 1) + 1).collect()
    }

    /// Samples the `index`-th request of a workload. With
    /// [`RequestMix::shared_prefix_len`] set, the prompt is the arrival's
    /// group prefix ([`RequestMix::group_prefix`], groups rotating by
    /// index) followed by a random private suffix; otherwise the whole
    /// prompt is random. The disabled path draws exactly the RNG stream
    /// it always did, so existing seeded workloads are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted, a bound is zero, or the mix has
    /// no policies/budgets.
    pub fn sample(&self, rng: &mut StdRng, index: usize) -> ServingRequest {
        assert!(!self.policies.is_empty() && !self.budgets.is_empty(), "empty policy/budget mix");
        assert!(self.vocab_size > 1, "vocabulary too small to sample prompts");
        let (p_lo, p_hi) = self.prompt_len;
        let (g_lo, g_hi) = self.max_new_tokens;
        assert!(0 < p_lo && p_lo <= p_hi, "invalid prompt length bounds");
        assert!(0 < g_lo && g_lo <= g_hi, "invalid generation bounds");

        let suffix_len = rng.gen_range(p_lo..=p_hi);
        let mut prompt = if self.shared_prefix_len > 0 {
            self.group_prefix(index % self.prefix_groups.max(1))
        } else {
            Vec::new()
        };
        prompt.extend((0..suffix_len).map(|_| rng.gen_range(1..self.vocab_size)));
        let max_new = rng.gen_range(g_lo..=g_hi);
        let priority = if self.priority_tiers <= 1 { 0 } else { rng.gen_range(0..self.priority_tiers) };
        let request = Request::new(prompt, max_new)
            .policy(self.policies[index % self.policies.len()])
            .budget(self.budgets[index % self.budgets.len()]);
        ServingRequest { request, priority }
    }
}

/// Draws an exponential holding time with the given mean, in whole ticks.
fn exp_ticks(rng: &mut StdRng, mean: f64) -> u64 {
    let u: f64 = rng.gen();
    // 1 - u ∈ (0, 1], so ln is finite and the draw non-negative.
    (-(1.0 - u).ln() * mean).round() as u64
}

/// A seeded, reproducible source of timed request arrivals (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct Workload {
    kind: ArrivalKind,
    /// Future arrivals, sorted by tick.
    scheduled: VecDeque<(u64, ServingRequest)>,
    /// Closed-loop: requests not yet scheduled because their user is
    /// still waiting or thinking.
    unspawned: usize,
    /// Closed-loop mean think time in ticks.
    think_ticks: f64,
    rng: StdRng,
    mix: RequestMix,
    emitted: usize,
}

impl Workload {
    /// Open-loop Poisson arrivals: `total` requests at `rate` requests
    /// per tick (exponential inter-arrival times with mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn poisson(seed: u64, rate: f64, total: usize, mix: RequestMix) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scheduled = VecDeque::with_capacity(total);
        let mut tick = 0u64;
        for i in 0..total {
            tick += exp_ticks(&mut rng, 1.0 / rate);
            let request = mix.sample(&mut rng, i);
            scheduled.push_back((tick, request));
        }
        Self { kind: ArrivalKind::Poisson, scheduled, unspawned: 0, think_ticks: 0.0, rng, mix, emitted: 0 }
    }

    /// Open-loop bursty arrivals: Poisson at `rate` during `on_ticks`-long
    /// bursts, silent for `off_ticks` between bursts.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive or `on_ticks` is zero.
    pub fn bursty(
        seed: u64,
        rate: f64,
        on_ticks: u64,
        off_ticks: u64,
        total: usize,
        mix: RequestMix,
    ) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        assert!(on_ticks > 0, "burst length must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scheduled = VecDeque::with_capacity(total);
        // Arrivals are Poisson on the concatenated ON-time axis; mapping
        // ON-time τ to wall time inserts the OFF gaps.
        let mut on_time = 0u64;
        for i in 0..total {
            on_time += exp_ticks(&mut rng, 1.0 / rate);
            let wall = (on_time / on_ticks) * (on_ticks + off_ticks) + on_time % on_ticks;
            let request = mix.sample(&mut rng, i);
            scheduled.push_back((wall, request));
        }
        Self { kind: ArrivalKind::Burst, scheduled, unspawned: 0, think_ticks: 0.0, rng, mix, emitted: 0 }
    }

    /// Closed-loop think-time model: `users` concurrent users issue
    /// `total` requests between them. Each user submits, waits for the
    /// request to complete, thinks for an exponential time with mean
    /// `think_ticks`, then submits again. The server must call
    /// [`Workload::notify_completion`] for follow-up arrivals to appear.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero or `think_ticks` is negative.
    pub fn closed_loop(seed: u64, users: usize, think_ticks: f64, total: usize, mix: RequestMix) -> Self {
        assert!(users > 0, "closed loop needs at least one user");
        assert!(think_ticks >= 0.0, "think time must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let initial = users.min(total);
        let mut scheduled = VecDeque::with_capacity(initial);
        let mut tick = 0u64;
        for i in 0..initial {
            // Users ramp in over their think time rather than stampeding
            // tick zero.
            let request = mix.sample(&mut rng, i);
            scheduled.push_back((tick, request));
            tick += exp_ticks(&mut rng, think_ticks / users.max(1) as f64);
        }
        Self {
            kind: ArrivalKind::Closed,
            scheduled,
            unspawned: total - initial,
            think_ticks,
            rng,
            mix,
            emitted: 0,
        }
    }

    /// Deterministic replay of an explicit `(tick, request)` trace.
    /// Arrivals are sorted by tick; the trace's own order breaks ties.
    pub fn trace(arrivals: Vec<(u64, ServingRequest)>) -> Self {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|(tick, _)| *tick);
        Self {
            kind: ArrivalKind::Trace,
            scheduled: arrivals.into(),
            unspawned: 0,
            think_ticks: 0.0,
            rng: StdRng::seed_from_u64(0),
            mix: RequestMix::default(),
            emitted: 0,
        }
    }

    /// The arrival process family.
    pub fn kind(&self) -> ArrivalKind {
        self.kind
    }

    /// Requests arriving at or before `now`, in arrival order. Each is
    /// returned exactly once.
    pub fn take_arrivals(&mut self, now: u64) -> Vec<ServingRequest> {
        let mut out = Vec::new();
        while self.scheduled.front().is_some_and(|(tick, _)| *tick <= now) {
            out.push(self.scheduled.pop_front().expect("checked non-empty").1);
        }
        self.emitted += out.len();
        out
    }

    /// Tells a closed-loop workload that one request was *disposed of*
    /// at `now` — finished, rejected, dead-lettered, or shed (every
    /// terminal state counts, or a closed-loop run could never drain):
    /// the freed user thinks, then submits the next request. A no-op for
    /// open-loop and trace workloads.
    pub fn notify_completion(&mut self, now: u64) {
        if self.kind != ArrivalKind::Closed || self.unspawned == 0 {
            return;
        }
        self.unspawned -= 1;
        let tick = now + 1 + exp_ticks(&mut self.rng, self.think_ticks);
        let index = self.emitted + self.scheduled.len();
        let request = self.mix.sample(&mut self.rng, index);
        // Completions arrive in nondecreasing `now` order but think times
        // vary, so keep the schedule sorted by insertion.
        let at = self.scheduled.partition_point(|(t, _)| *t <= tick);
        self.scheduled.insert(at, (tick, request));
    }

    /// Whether every request this workload will ever produce has been
    /// taken.
    pub fn exhausted(&self) -> bool {
        self.scheduled.is_empty() && self.unspawned == 0
    }

    /// The tick of the next scheduled arrival, if any (used to
    /// fast-forward idle servers).
    pub fn next_arrival_tick(&self) -> Option<u64> {
        self.scheduled.front().map(|(tick, _)| *tick)
    }

    /// Requests produced so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_and_label() {
        for kind in ArrivalKind::ALL {
            assert_eq!(kind.as_str().parse::<ArrivalKind>().unwrap(), kind);
        }
        assert!("warp".parse::<ArrivalKind>().is_err());
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut w = Workload::poisson(seed, 0.5, 20, RequestMix::default());
            let mut out = Vec::new();
            for now in 0..10_000 {
                for r in w.take_arrivals(now) {
                    out.push((now, r));
                }
                if w.exhausted() {
                    break;
                }
            }
            out
        };
        let a = collect(7);
        let b = collect(7);
        let c = collect(8);
        assert_eq!(a, b, "same seed, same arrivals");
        assert_ne!(a, c, "different seed, different arrivals");
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn poisson_rate_shapes_spacing() {
        let span = |rate: f64| {
            let w = Workload::poisson(3, rate, 50, RequestMix::default());
            w.scheduled.back().expect("non-empty").0
        };
        assert!(span(2.0) < span(0.1), "higher rate packs arrivals tighter");
    }

    #[test]
    fn bursts_leave_silent_gaps() {
        let mut w = Workload::bursty(11, 1.0, 10, 90, 40, RequestMix::default());
        // Every arrival lands inside an ON window ([0, 10) mod 100).
        for now in 0..100_000 {
            for _ in w.take_arrivals(now) {
                assert!(now % 100 < 10, "arrival at {now} falls in an OFF gap");
            }
            if w.exhausted() {
                break;
            }
        }
        assert!(w.exhausted());
    }

    #[test]
    fn closed_loop_waits_for_completions() {
        let mut w = Workload::closed_loop(5, 2, 4.0, 6, RequestMix::default());
        let initial: usize = (0..1000).map(|now| w.take_arrivals(now).len()).sum();
        assert_eq!(initial, 2, "only the initial user wave arrives without completions");
        assert!(!w.exhausted(), "four requests still unspawned");

        w.notify_completion(1000);
        let mut follow_up = 0;
        for now in 1000..10_000 {
            follow_up += w.take_arrivals(now).len();
        }
        assert_eq!(follow_up, 1, "one completion frees exactly one user");
    }

    #[test]
    fn trace_replays_in_order() {
        let mix = RequestMix::default();
        let mut rng = StdRng::seed_from_u64(1);
        let r0 = mix.sample(&mut rng, 0);
        let r1 = mix.sample(&mut rng, 1);
        let mut w = Workload::trace(vec![(9, r1.clone()), (2, r0.clone())]);
        assert_eq!(w.next_arrival_tick(), Some(2));
        assert_eq!(w.take_arrivals(5), vec![r0]);
        assert_eq!(w.take_arrivals(9), vec![r1]);
        assert!(w.exhausted());
        assert_eq!(w.emitted(), 2);
    }

    #[test]
    fn shared_prefix_mix_prepends_group_prefixes() {
        let mix = RequestMix { shared_prefix_len: 10, prefix_groups: 2, ..RequestMix::default() };
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..16 {
            let r = mix.sample(&mut rng, i);
            let prefix = mix.group_prefix(i % 2);
            assert_eq!(prefix.len(), 10);
            assert!(r.request.prompt.starts_with(&prefix), "request {i} must start with its group prefix");
            let suffix_len = r.request.prompt.len() - 10;
            assert!((mix.prompt_len.0..=mix.prompt_len.1).contains(&suffix_len));
            assert!(r.request.prompt.iter().all(|&t| t >= 1 && t < mix.vocab_size));
        }
        assert_ne!(mix.group_prefix(0), mix.group_prefix(1), "groups have distinct prefixes");
    }

    #[test]
    fn disabled_shared_prefix_preserves_the_rng_stream() {
        // Adding the shared-prefix feature must not perturb existing
        // seeded workloads: with the feature off, the sampled requests
        // are exactly what the pre-feature sampler drew.
        let mix = RequestMix::default();
        let mut rng = StdRng::seed_from_u64(4);
        let r = mix.sample(&mut rng, 0);
        let mut reference_rng = StdRng::seed_from_u64(4);
        let len = reference_rng.gen_range(mix.prompt_len.0..=mix.prompt_len.1);
        let prompt: Vec<usize> = (0..len).map(|_| reference_rng.gen_range(1..mix.vocab_size)).collect();
        assert_eq!(r.request.prompt, prompt);
    }

    #[test]
    fn mix_respects_bounds_and_rotation() {
        let mix = RequestMix::default();
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..64 {
            let r = mix.sample(&mut rng, i);
            let len = r.request.prompt.len();
            assert!((mix.prompt_len.0..=mix.prompt_len.1).contains(&len));
            assert!((mix.max_new_tokens.0..=mix.max_new_tokens.1).contains(&r.request.max_new_tokens));
            assert!(r.request.prompt.iter().all(|&t| t >= 1 && t < mix.vocab_size));
            assert!(r.priority < mix.priority_tiers);
            assert_eq!(r.request.policy, mix.policies[i % mix.policies.len()]);
        }
    }
}

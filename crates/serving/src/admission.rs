//! Admission control: KV byte accounting against HBM capacity.
//!
//! Every admitted session reserves a conservative *peak* KV footprint —
//! `(prompt_len + max_new_tokens) × kv_bytes_per_token` — against the
//! device capacity ([`veda_mem::HbmConfig::capacity_bytes`]). The peak
//! bound deliberately ignores the request's cache budget: eviction
//! policies may refuse to evict below their protected prefix (the voting
//! policy never evicts inside its reserved length), so the budget is not
//! a guaranteed ceiling, while `prompt + generated` is. Reserving peaks
//! makes the core serving invariant — admitted KV bytes never exceed
//! capacity — hold unconditionally, at the cost of admitting slightly
//! fewer sessions than a tighter estimate would.
//!
//! ## Shared-prefix discount
//!
//! When the engine's prefix cache is enabled, a request whose prompt
//! matches a cached prefix references the shared span instead of owning
//! it — those bytes are resident **once**, in the cache entry — so the
//! server reserves only the *unshared* peak
//! ([`AdmissionController::estimate_unshared_bytes`]). Two conditions
//! make the discount sound under the v2 churn-capable cache:
//!
//! 1. **The match cannot shrink.** Under LRU eviction, TTL expiry and
//!    host spill, a probed match could vanish between arrival and
//!    submit — so the shard does not probe, it **pins**: accepting a
//!    discounted request takes a [`veda::Engine::pin_prefix`] pin on
//!    the matched entry and holds it across the queue. A pinned entry
//!    is ineligible for every churn path, so the discount's basis is
//!    still resident at submit time; the pin is released only after
//!    the submit has taken its own per-session seed pin (held until
//!    the session retires), so the entry is covered for the request's
//!    whole lifetime. Every queue-exit path — rejection, shed,
//!    timeout, crash — releases the pin too.
//! 2. **The span cannot be privatized.** An eviction *inside* a shared
//!    span deep-copies it (the session then owns those bytes), which
//!    would push the session past a discounted reservation — so the
//!    discount is applied only to requests that provably never evict
//!    ([`Request::never_evicts`]: budget cap ≥ peak), and only when
//!    budget shrinking (`ServerConfig::shrink`, which can force any
//!    session to evict) is off. Every other request reserves its full
//!    peak, exactly as without the cache.
//!
//! The cache's own resident bytes are charged too: the server subtracts
//! [`veda::Engine::prefix_cache_bytes`] from the headroom admissions
//! and swap-ins fit into, so cached prefixes are never free capacity.
//! A request whose matched entry was spilled to the host tier also
//! charges its fill cost ([`veda::Engine::prefix_fill_bytes`]) against
//! headroom — promotion copies the entry back into device memory, and
//! an admission that ignored those bytes could be bankrupted by its own
//! fill traffic. With churn enabled,
//! [`veda::PrefixCacheConfig::max_bytes`] bounds the cache's device
//! overhead by construction (cold entries are evicted or spilled); with
//! the unbounded default, entries are effectively insert-only and
//! deployments should size `max_bytes` well below `capacity_bytes`
//! minus the largest single-request peak — otherwise the monotone cache
//! overhead can crowd out admissions for good. This is what lets a
//! shared-prefix workload admit strictly more sessions under the same
//! capacity — pinned by the serving-stack tests — without moving bytes
//! off the books.

use veda::Request;

/// Why a request was turned away rather than queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The request's peak KV footprint exceeds the device capacity even
    /// with an empty machine; it can never be admitted.
    NeverFits,
    /// The wait queue is at its configured depth limit.
    QueueFull,
    /// The request itself is malformed (empty or out-of-vocabulary
    /// prompt, zero-token generation limit, unusable budget) — possible
    /// only through hand-built trace workloads.
    Invalid,
}

impl RejectReason {
    /// Stable label.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::NeverFits => "never_fits",
            RejectReason::QueueFull => "queue_full",
            RejectReason::Invalid => "invalid",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Admission configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Device KV capacity in bytes. Model weights are accounted
    /// separately (they are resident regardless of load), so this is the
    /// budget available to session KV state.
    pub capacity_bytes: u64,
    /// Maximum number of requests waiting for admission; arrivals beyond
    /// this are rejected with [`RejectReason::QueueFull`].
    pub max_queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { capacity_bytes: veda_mem::HbmConfig::default().capacity_bytes, max_queue_depth: 64 }
    }
}

/// Byte-accounting admission controller (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    reserved: u64,
}

impl AdmissionController {
    /// Creates a controller with nothing admitted.
    pub fn new(config: AdmissionConfig) -> Self {
        Self { config, reserved: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Bytes currently reserved by admitted sessions.
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved
    }

    /// Unreserved capacity.
    pub fn headroom_bytes(&self) -> u64 {
        self.config.capacity_bytes.saturating_sub(self.reserved)
    }

    /// Conservative peak resident-token count of a request — delegates to
    /// [`Request::peak_resident_tokens`], the single source of the
    /// reservation math shared with the engine's submit-time KV
    /// pre-allocation, so the two accountings cannot drift (see the
    /// [module docs](self) for why the cache budget is ignored).
    pub fn peak_resident_tokens(request: &Request) -> usize {
        request.peak_resident_tokens()
    }

    /// Peak KV bytes of a request given the engine's per-token KV cost
    /// ([`veda::Engine::kv_bytes_per_token`]).
    pub fn estimate_bytes(request: &Request, kv_bytes_per_token: u64) -> u64 {
        Self::peak_resident_tokens(request) as u64 * kv_bytes_per_token
    }

    /// Peak KV bytes a request will *privately own*, given that
    /// `shared_tokens` of its prompt are served from the engine's prefix
    /// cache ([`veda::Engine::prefix_match_len`]) and therefore stay
    /// resident in the cache entry, not the session (see the
    /// [module docs](self)). With `shared_tokens = 0` this is exactly
    /// [`AdmissionController::estimate_bytes`].
    pub fn estimate_unshared_bytes(request: &Request, shared_tokens: usize, kv_bytes_per_token: u64) -> u64 {
        Self::peak_resident_tokens(request).saturating_sub(shared_tokens) as u64 * kv_bytes_per_token
    }

    /// Screens an arrival: `Err` rejects it outright, `Ok` means it may
    /// wait in the queue (whether it is admitted *now* is the scheduler's
    /// call via [`AdmissionController::would_fit`]).
    pub fn screen(&self, est_bytes: u64, queue_depth: usize) -> Result<(), RejectReason> {
        if est_bytes > self.config.capacity_bytes {
            Err(RejectReason::NeverFits)
        } else if queue_depth >= self.config.max_queue_depth {
            Err(RejectReason::QueueFull)
        } else {
            Ok(())
        }
    }

    /// Whether reserving `est_bytes` more would stay within capacity.
    pub fn would_fit(&self, est_bytes: u64) -> bool {
        self.reserved + est_bytes <= self.config.capacity_bytes
    }

    /// Reserves an admitted session's peak bytes.
    pub fn reserve(&mut self, est_bytes: u64) {
        self.reserved += est_bytes;
        debug_assert!(self.reserved <= self.config.capacity_bytes, "over-reserved device memory");
    }

    /// Releases a finished (or swapped-out) session's reservation.
    pub fn release(&mut self, est_bytes: u64) {
        debug_assert!(est_bytes <= self.reserved, "releasing more than reserved");
        self.reserved = self.reserved.saturating_sub(est_bytes);
    }

    /// Drops every reservation at once — the fail-stop path: a crashed
    /// shard's sessions are discarded wholesale, so its admission state
    /// resets with them.
    pub fn reset(&mut self) {
        self.reserved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda::Request;

    fn request(prompt_len: usize, max_new: usize) -> Request {
        Request::new(vec![1; prompt_len], max_new)
    }

    #[test]
    fn peak_covers_prompt_and_generation() {
        assert_eq!(AdmissionController::peak_resident_tokens(&request(16, 8)), 24);
        assert_eq!(AdmissionController::estimate_bytes(&request(16, 8), 256), 24 * 256);
    }

    #[test]
    fn shared_prefix_discount_reduces_the_estimate() {
        let r = request(16, 8);
        assert_eq!(AdmissionController::estimate_unshared_bytes(&r, 0, 256), 24 * 256);
        assert_eq!(AdmissionController::estimate_unshared_bytes(&r, 10, 256), 14 * 256);
        // The discount never underflows, even for a (theoretical) full
        // overlap.
        assert_eq!(AdmissionController::estimate_unshared_bytes(&r, 99, 256), 0);
    }

    #[test]
    fn reserve_release_cycle() {
        let mut ac = AdmissionController::new(AdmissionConfig { capacity_bytes: 1000, max_queue_depth: 4 });
        assert!(ac.would_fit(1000));
        ac.reserve(600);
        assert_eq!(ac.reserved_bytes(), 600);
        assert_eq!(ac.headroom_bytes(), 400);
        assert!(ac.would_fit(400));
        assert!(!ac.would_fit(401));
        ac.release(600);
        assert_eq!(ac.reserved_bytes(), 0);
        ac.reserve(300);
        ac.reset();
        assert_eq!(ac.reserved_bytes(), 0, "reset drops every reservation");
    }

    #[test]
    fn screen_rejects_giants_and_full_queues() {
        let ac = AdmissionController::new(AdmissionConfig { capacity_bytes: 1000, max_queue_depth: 2 });
        assert_eq!(ac.screen(1001, 0), Err(RejectReason::NeverFits));
        assert_eq!(ac.screen(500, 2), Err(RejectReason::QueueFull));
        assert_eq!(ac.screen(500, 1), Ok(()));
        // A fitting-but-not-now request queues rather than rejects.
        assert_eq!(ac.screen(1000, 0), Ok(()));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RejectReason::NeverFits.to_string(), "never_fits");
        assert_eq!(RejectReason::QueueFull.to_string(), "queue_full");
    }
}

//! Per-request timing records and aggregate serving metrics.

use veda::{EngineReport, Session};
use veda_telemetry::{summarize, MetricsRegistry, StageWaterfall};

use crate::admission::RejectReason;
use crate::scheduler::SchedKind;
use crate::workload::ArrivalKind;

/// Lifecycle timestamps (virtual-clock ticks) and counters of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Global arrival index (submission order).
    pub arrival: usize,
    /// Engine session handle, once admitted.
    pub session: Option<Session>,
    /// Priority tier.
    pub priority: u8,
    /// Tick the request arrived at the server.
    pub submitted: u64,
    /// Tick the request was admitted into the engine (prefill ran).
    pub admitted: Option<u64>,
    /// Tick the first generated token was emitted.
    pub first_token: Option<u64>,
    /// Tick the last token was emitted.
    pub finished: Option<u64>,
    /// Tokens actually generated.
    pub generated_tokens: usize,
    /// Times the session was preempted (paused + swapped out).
    pub preemptions: u32,
    /// Ticks spent swapped out to the host across all preemptions
    /// (each wait counted from the pause to the rejoin tick).
    pub swap_wait_ticks: u64,
    /// Ticks spent in flight between shards across all migrations.
    pub migration_wait_ticks: u64,
    /// Of all off-device wait ticks, those that elapsed before the first
    /// generated token (used to split waits out of the prefill vs decode
    /// stages in [`RequestRecord::waterfall`]).
    pub wait_before_first_ticks: u64,
    /// Why the request was rejected, if it was.
    pub rejected: Option<RejectReason>,
    /// Retries consumed so far (shard-crash losses and deadline
    /// teardowns both count against [`crate::RetryPolicy::max_attempts`]).
    pub retries: u32,
    /// Deadline violations observed across all attempts.
    pub timeouts: u32,
    /// Tick the request was shed by the load-shedder (terminal).
    pub shed: Option<u64>,
    /// Tick the request was dead-lettered after exhausting its retry
    /// budget (terminal).
    pub dead_letter: Option<u64>,
    /// Tick the current loss began (shard crash or deadline teardown);
    /// cleared when the retried request is re-admitted.
    pub lost_at: Option<u64>,
    /// Cumulative ticks spent between losses and the re-admissions that
    /// recovered them (the recovery-latency metric).
    pub recovery_wait_ticks: u64,
}

impl RequestRecord {
    /// Resets the run-state of a lost attempt so the record is ready for
    /// a retry: placement, admission, token progress and wait accounting
    /// all restart from scratch (a retry re-prefills from the prompt),
    /// while the identity fields, the original `submitted` tick, and the
    /// cumulative fault counters survive. Prior attempts therefore fold
    /// into the queueing stage of the eventual waterfall — exactly where
    /// time waiting to be served belongs.
    pub(crate) fn reset_attempt(&mut self, now: u64) {
        self.session = None;
        self.admitted = None;
        self.first_token = None;
        self.generated_tokens = 0;
        self.swap_wait_ticks = 0;
        self.migration_wait_ticks = 0;
        self.wait_before_first_ticks = 0;
        self.lost_at = Some(now);
    }

    /// Whether the request reached a terminal state: finished, rejected,
    /// shed, or dead-lettered.
    pub fn is_terminal(&self) -> bool {
        self.finished.is_some()
            || self.rejected.is_some()
            || self.shed.is_some()
            || self.dead_letter.is_some()
    }

    /// Time to first token in ticks (`first_token − submitted`).
    pub fn ttft(&self) -> Option<u64> {
        Some(self.first_token? - self.submitted)
    }

    /// End-to-end latency in ticks (`finished − submitted`).
    pub fn e2e(&self) -> Option<u64> {
        Some(self.finished? - self.submitted)
    }

    /// Mean time per output token after the first, in ticks.
    pub fn tpot(&self) -> Option<f64> {
        let span = self.finished? - self.first_token?;
        if self.generated_tokens > 1 {
            Some(span as f64 / (self.generated_tokens - 1) as f64)
        } else {
            None
        }
    }

    /// The completed request's latency waterfall: five disjoint stages
    /// that sum exactly to [`RequestRecord::e2e`]. `None` until the
    /// request finishes. Off-device waits are subtracted from whichever
    /// of prefill / decode they interrupted ("prefill" and "decode" are
    /// on-device time), using the before/after-first-token split the
    /// shard accounted at each rejoin.
    pub fn waterfall(&self) -> Option<StageWaterfall> {
        let admitted = self.admitted?;
        let first = self.first_token?;
        let finished = self.finished?;
        let before = self.wait_before_first_ticks;
        let after = (self.swap_wait_ticks + self.migration_wait_ticks).saturating_sub(before);
        let w = StageWaterfall {
            queueing: admitted - self.submitted,
            prefill: (first - admitted).saturating_sub(before),
            decode: (finished - first).saturating_sub(after),
            swap_wait: self.swap_wait_ticks,
            migration_wait: self.migration_wait_ticks,
        };
        debug_assert_eq!(
            w.e2e(),
            finished - self.submitted,
            "stage durations must sum to e2e (arrival {})",
            self.arrival
        );
        Some(w)
    }
}

/// Latency summary of one metric: p50/p95/p99/max over completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Median in ticks.
    pub p50: u64,
    /// 95th percentile in ticks.
    pub p95: u64,
    /// 99th percentile in ticks.
    pub p99: u64,
    /// Maximum in ticks.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a set of latencies; `None` when the set is empty.
    /// Routes through [`veda_telemetry::summarize`] — the workspace's
    /// single nearest-rank percentile implementation, total by
    /// construction (no caller can panic on a zero-completion run).
    pub fn of(values: Vec<u64>) -> Option<Self> {
        let s = summarize(values)?;
        Some(Self { p50: s.p50, p95: s.p95, p99: s.p99, max: s.max })
    }
}

/// Per-stage latency summaries over all completed requests' waterfalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummaries {
    /// Queueing stage (submission → admission).
    pub queueing: LatencySummary,
    /// On-device prefill stage (admission → first token, waits removed).
    pub prefill: LatencySummary,
    /// On-device decode stage (first token → finish, waits removed).
    pub decode: LatencySummary,
    /// Swap-wait stage (ticks off-device across preemptions).
    pub swap_wait: LatencySummary,
    /// Migration-wait stage (ticks in flight between shards).
    pub migration_wait: LatencySummary,
}

impl StageSummaries {
    /// Summarizes each stage column of `waterfalls`; `None` when empty.
    pub fn of(waterfalls: &[StageWaterfall]) -> Option<Self> {
        if waterfalls.is_empty() {
            return None;
        }
        let col = |pick: fn(&StageWaterfall) -> u64| {
            LatencySummary::of(waterfalls.iter().map(pick).collect()).expect("non-empty")
        };
        Some(Self {
            queueing: col(|w| w.queueing),
            prefill: col(|w| w.prefill),
            decode: col(|w| w.decode),
            swap_wait: col(|w| w.swap_wait),
            migration_wait: col(|w| w.migration_wait),
        })
    }

    /// `(stage name, summary)` rows in waterfall order.
    pub fn rows(&self) -> [(&'static str, LatencySummary); 5] {
        [
            ("queueing", self.queueing),
            ("prefill", self.prefill),
            ("decode", self.decode),
            ("swap_wait", self.swap_wait),
            ("migration_wait", self.migration_wait),
        ]
    }
}

/// Aggregate result of one [`crate::Server`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Which shard produced this report: `0` for a standalone
    /// [`crate::Server`], the shard's index within a [`crate::Cluster`]
    /// otherwise — so multi-shard output (queue-depth series, per-shard
    /// latency lines) stays attributable after reports are collected.
    pub shard_id: usize,
    /// The arrival process that drove the run.
    pub arrival: ArrivalKind,
    /// The scheduling policy.
    pub sched: SchedKind,
    /// Virtual-clock ticks the run spanned (including idle fast-forwards).
    pub ticks: u64,
    /// Decode ticks the engine executed.
    pub decode_ticks: u64,
    /// Requests that arrived.
    pub submitted: usize,
    /// Requests admitted into the engine.
    pub admitted: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Requests rejected because they can never fit.
    pub rejected_never_fits: usize,
    /// Requests rejected because the queue was full.
    pub rejected_queue_full: usize,
    /// Requests rejected as malformed (trace workloads only).
    pub rejected_invalid: usize,
    /// Preemptions performed (KV swapped out over the host link).
    pub preemptions: u64,
    /// Paused sessions resumed (KV swapped back in).
    pub resumes: u64,
    /// Bytes swapped device → host.
    pub swap_out_bytes: u64,
    /// Bytes swapped host → device.
    pub swap_in_bytes: u64,
    /// Host-link cycles spent on swap traffic.
    pub swap_cycles: u64,
    /// Bytes the prefix cache spilled device → host under byte pressure
    /// (zero unless [`veda::PrefixCacheConfig::spill`] is on).
    pub prefix_spill_bytes: u64,
    /// Bytes promoted host → device when spilled prefix entries were hit
    /// again; each fill's latency was serialized onto the hitting
    /// session's clock like a swap-in.
    pub prefix_fill_bytes: u64,
    /// Host-link cycles spent on prefix spill + fill traffic.
    pub prefix_transfer_cycles: u64,
    /// Ticks sessions spent waiting for an in-flight swap-in transfer to
    /// complete (swap latency serialized into the clock): each tick, each
    /// session parked in the swap-in phase contributes one.
    pub swap_wait_ticks: u64,
    /// Budget-shrink interventions (sessions whose caps were tightened).
    pub budget_shrinks: u64,
    /// Queue depth sampled after each executed tick.
    pub queue_depth: Vec<usize>,
    /// Peak KV bytes resident in device memory.
    pub kv_resident_peak_bytes: u64,
    /// Peak KV bytes reserved by admission control.
    pub kv_reserved_peak_bytes: u64,
    /// Configured device KV capacity.
    pub capacity_bytes: u64,
    /// Per-request lifecycle records, in arrival order.
    pub records: Vec<RequestRecord>,
    /// The engine's batched-decode report for the run.
    pub engine: EngineReport,
}

impl ServingReport {
    /// Requests rejected for any reason.
    pub fn rejected(&self) -> usize {
        self.rejected_never_fits + self.rejected_queue_full + self.rejected_invalid
    }

    /// Requests homed here that were dead-lettered (retry budget
    /// exhausted).
    pub fn dead_lettered(&self) -> usize {
        self.records.iter().filter(|r| r.dead_letter.is_some()).count()
    }

    /// Requests homed here that the load-shedder dropped.
    pub fn shed(&self) -> usize {
        self.records.iter().filter(|r| r.shed.is_some()).count()
    }

    /// Retries consumed by requests homed here.
    pub fn retries(&self) -> u64 {
        self.records.iter().map(|r| r.retries as u64).sum()
    }

    /// Deadline violations observed by requests homed here.
    pub fn timeouts(&self) -> u64 {
        self.records.iter().map(|r| r.timeouts as u64).sum()
    }

    /// Recovery-latency summary (ticks between a loss and the retry's
    /// re-admission) over requests homed here that recovered at least
    /// once; `None` when nothing was ever lost and re-admitted.
    pub fn recovery(&self) -> Option<LatencySummary> {
        LatencySummary::of(
            self.records
                .iter()
                .filter(|r| r.recovery_wait_ticks > 0)
                .map(|r| r.recovery_wait_ticks)
                .collect(),
        )
    }

    /// TTFT summary over completed requests.
    pub fn ttft(&self) -> Option<LatencySummary> {
        LatencySummary::of(self.records.iter().filter_map(RequestRecord::ttft).collect())
    }

    /// End-to-end latency summary over completed requests.
    pub fn e2e(&self) -> Option<LatencySummary> {
        LatencySummary::of(self.records.iter().filter_map(RequestRecord::e2e).collect())
    }

    /// Queueing delay (admitted − submitted) summary.
    pub fn queueing_delay(&self) -> Option<LatencySummary> {
        LatencySummary::of(self.records.iter().filter_map(|r| Some(r.admitted? - r.submitted)).collect())
    }

    /// Mean time per output token across completed requests, in ticks.
    pub fn tpot_mean(&self) -> Option<f64> {
        let tpots: Vec<f64> = self.records.iter().filter_map(RequestRecord::tpot).collect();
        if tpots.is_empty() {
            None
        } else {
            // lint:allow(float-reduction): f64 report aggregate in arrival-order record sequence, off the decode path
            Some(tpots.iter().sum::<f64>() / tpots.len() as f64)
        }
    }

    /// Prefix-cache hit rate over all submitted prompts, in `[0, 1]`
    /// (0 when the engine's prefix cache is disabled). A hit means the
    /// prompt shared a cached prefix: its session skipped that span's
    /// prefill and reserved only unshared KV bytes at admission.
    pub fn prefix_hit_rate(&self) -> f64 {
        self.engine.prefix.hit_rate()
    }

    /// Prompt tokens served from the engine's prefix cache across the run
    /// — prefill forward passes (and, under chunked prefill, on-clock
    /// prefill tokens) the shared-prefix reuse saved.
    pub fn prefix_saved_tokens(&self) -> u64 {
        self.engine.prefix.shared_tokens
    }

    /// Largest sampled queue depth.
    pub fn queue_depth_max(&self) -> usize {
        self.queue_depth.iter().copied().max().unwrap_or(0)
    }

    /// Mean sampled queue depth.
    pub fn queue_depth_mean(&self) -> f64 {
        if self.queue_depth.is_empty() {
            0.0
        } else {
            self.queue_depth.iter().sum::<usize>() as f64 / self.queue_depth.len() as f64
        }
    }

    /// Latency waterfalls of all completed requests, in arrival order.
    pub fn waterfalls(&self) -> Vec<StageWaterfall> {
        self.records.iter().filter_map(RequestRecord::waterfall).collect()
    }

    /// Per-stage latency summaries over completed requests; `None` on a
    /// zero-completion run.
    pub fn stages(&self) -> Option<StageSummaries> {
        StageSummaries::of(&self.waterfalls())
    }

    /// Folds the run into a [`MetricsRegistry`]: lifecycle counters,
    /// pressure gauges, and log2-bucket latency histograms (overall and
    /// per waterfall stage). Deterministic: same report, same registry,
    /// same [`MetricsRegistry::to_json`] bytes.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.counter_add("requests_submitted", self.submitted as u64);
        m.counter_add("requests_admitted", self.admitted as u64);
        m.counter_add("requests_completed", self.completed as u64);
        m.counter_add("rejected_never_fits", self.rejected_never_fits as u64);
        m.counter_add("rejected_queue_full", self.rejected_queue_full as u64);
        m.counter_add("rejected_invalid", self.rejected_invalid as u64);
        m.counter_add("preemptions", self.preemptions);
        m.counter_add("resumes", self.resumes);
        m.counter_add("swap_out_bytes", self.swap_out_bytes);
        m.counter_add("swap_in_bytes", self.swap_in_bytes);
        m.counter_add("swap_link_cycles", self.swap_cycles);
        m.counter_add("swap_wait_ticks", self.swap_wait_ticks);
        m.counter_add("budget_shrinks", self.budget_shrinks);
        m.counter_add("requests_dead_lettered", self.dead_lettered() as u64);
        m.counter_add("requests_shed", self.shed() as u64);
        m.counter_add("request_retries", self.retries());
        m.counter_add("request_timeouts", self.timeouts());
        m.counter_add("ticks", self.ticks);
        m.counter_add("decode_ticks", self.decode_ticks);
        m.counter_add("generated_tokens", self.engine.total_tokens as u64);
        m.counter_add("prefill_tokens", self.engine.prefill_tokens as u64);
        m.counter_add("prefix_cache_hits", self.engine.prefix.hits);
        m.counter_add("prefix_saved_tokens", self.prefix_saved_tokens());
        m.counter_add("prefix_evictions", self.engine.prefix.evictions);
        m.counter_add("prefix_expiries", self.engine.prefix.expiries);
        m.counter_add("prefix_spills", self.engine.prefix.spills);
        m.counter_add("prefix_fills", self.engine.prefix.fills);
        m.counter_add("prefix_spill_bytes", self.prefix_spill_bytes);
        m.counter_add("prefix_fill_bytes", self.prefix_fill_bytes);
        m.counter_add("prefix_transfer_cycles", self.prefix_transfer_cycles);
        m.counter_add("kv_resident_peak_bytes", self.kv_resident_peak_bytes);
        m.counter_add("kv_reserved_peak_bytes", self.kv_reserved_peak_bytes);
        m.counter_add("capacity_bytes", self.capacity_bytes);
        m.set_gauge("queue_depth_mean", self.queue_depth_mean());
        m.set_gauge("prefix_hit_rate", self.prefix_hit_rate());
        if let Some(tpot) = self.tpot_mean() {
            m.set_gauge("tpot_mean_ticks", tpot);
        }
        for r in &self.records {
            if let Some(v) = r.ttft() {
                m.observe("ttft_ticks", v);
            }
            if let Some(v) = r.e2e() {
                m.observe("e2e_ticks", v);
            }
            if let Some(w) = r.waterfall() {
                m.observe("stage_queueing_ticks", w.queueing);
                m.observe("stage_prefill_ticks", w.prefill);
                m.observe("stage_decode_ticks", w.decode);
                m.observe("stage_swap_wait_ticks", w.swap_wait);
                m.observe("stage_migration_wait_ticks", w.migration_wait);
            }
        }
        m
    }
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serving report [shard {}]: {} submitted over {} ticks ({} decode), {} arrivals, {} scheduler",
            self.shard_id, self.submitted, self.ticks, self.decode_ticks, self.arrival, self.sched
        )?;
        writeln!(
            f,
            "  admitted / completed   : {} / {} (rejected {}: never_fits {}, queue_full {}, invalid {})",
            self.admitted,
            self.completed,
            self.rejected(),
            self.rejected_never_fits,
            self.rejected_queue_full,
            self.rejected_invalid
        )?;
        writeln!(
            f,
            "  preemptions / resumes  : {} / {} ({} budget shrinks)",
            self.preemptions, self.resumes, self.budget_shrinks
        )?;
        writeln!(
            f,
            "  swap traffic           : {} B out, {} B in, {} link cycles, {} wait ticks",
            self.swap_out_bytes, self.swap_in_bytes, self.swap_cycles, self.swap_wait_ticks
        )?;
        if self.retries() + self.timeouts() > 0 || self.dead_lettered() + self.shed() > 0 {
            writeln!(
                f,
                "  faults                 : {} retries, {} timeouts, {} dead-lettered, {} shed",
                self.retries(),
                self.timeouts(),
                self.dead_lettered(),
                self.shed()
            )?;
        }
        writeln!(
            f,
            "  queue depth            : max {}, mean {:.2}",
            self.queue_depth_max(),
            self.queue_depth_mean()
        )?;
        writeln!(
            f,
            "  kv resident peak       : {} B of {} B capacity ({:.1}%), {} B reserved peak",
            self.kv_resident_peak_bytes,
            self.capacity_bytes,
            100.0 * self.kv_resident_peak_bytes as f64 / self.capacity_bytes.max(1) as f64,
            self.kv_reserved_peak_bytes
        )?;
        if self.engine.prefix.hits + self.engine.prefix.misses > 0 {
            writeln!(
                f,
                "  prefix cache           : {} hits / {} lookups ({:.0}% hit rate), {} prompt tokens saved, {} entries ({} B resident once)",
                self.engine.prefix.hits,
                self.engine.prefix.hits + self.engine.prefix.misses,
                100.0 * self.prefix_hit_rate(),
                self.prefix_saved_tokens(),
                self.engine.prefix.entries,
                self.engine.prefix.resident_bytes,
            )?;
        }
        let p = &self.engine.prefix;
        if p.evictions + p.expiries + p.spills + p.fills > 0 {
            writeln!(
                f,
                "  prefix churn           : {} evicted, {} expired, {} spilled ({} B), {} filled ({} B), {} link cycles, {} host entries ({} B)",
                p.evictions,
                p.expiries,
                p.spills,
                self.prefix_spill_bytes,
                p.fills,
                self.prefix_fill_bytes,
                self.prefix_transfer_cycles,
                p.host_entries,
                p.host_bytes,
            )?;
        }
        writeln!(f, "  latency (ticks)        : {:>8} {:>8} {:>8} {:>8}", "p50", "p95", "p99", "max")?;
        let mut row = |name: &str, summary: Option<LatencySummary>| match summary {
            Some(s) => writeln!(f, "    {:<21}: {:>8} {:>8} {:>8} {:>8}", name, s.p50, s.p95, s.p99, s.max),
            None => writeln!(f, "    {name:<21}: (no completed requests)"),
        };
        row("ttft", self.ttft())?;
        row("queueing delay", self.queueing_delay())?;
        row("e2e", self.e2e())?;
        if let Some(stages) = self.stages() {
            row("wf queueing", Some(stages.queueing))?;
            row("wf prefill", Some(stages.prefill))?;
            row("wf decode", Some(stages.decode))?;
            row("wf swap wait", Some(stages.swap_wait))?;
            row("wf migration wait", Some(stages.migration_wait))?;
        }
        match self.tpot_mean() {
            Some(tpot) => writeln!(f, "  time per output token  : {tpot:.2} ticks")?,
            None => writeln!(f, "  time per output token  : n/a")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        // LatencySummary routes through veda_telemetry::summarize; the
        // values must stay exactly nearest-rank (no log2 approximation).
        let s = LatencySummary::of((1..=100).collect()).unwrap();
        assert_eq!((s.p50, s.p95, s.p99, s.max), (50, 95, 99, 100));
        let one = LatencySummary::of(vec![7]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99, one.max), (7, 7, 7, 7));
    }

    #[test]
    fn latency_summary_of_empty_is_none() {
        assert!(LatencySummary::of(vec![]).is_none());
        let s = LatencySummary::of(vec![3, 1, 2]).unwrap();
        assert_eq!((s.p50, s.max), (2, 3));
    }

    #[test]
    fn record_derives_metrics() {
        let r = RequestRecord {
            arrival: 0,
            session: None,
            priority: 0,
            submitted: 10,
            admitted: Some(12),
            first_token: Some(15),
            finished: Some(23),
            generated_tokens: 5,
            preemptions: 1,
            swap_wait_ticks: 0,
            migration_wait_ticks: 0,
            wait_before_first_ticks: 0,
            rejected: None,
            retries: 0,
            timeouts: 0,
            shed: None,
            dead_letter: None,
            lost_at: None,
            recovery_wait_ticks: 0,
        };
        assert_eq!(r.ttft(), Some(5));
        assert_eq!(r.e2e(), Some(13));
        assert_eq!(r.tpot(), Some(2.0));
        let w = r.waterfall().unwrap();
        assert_eq!((w.queueing, w.prefill, w.decode), (2, 3, 8));
        assert_eq!(w.e2e(), 13);
    }

    #[test]
    fn waterfall_splits_waits_around_first_token() {
        // 4 wait ticks before the first token (during prefill), 6 after
        // (during decode): the on-device stages shrink by exactly those
        // amounts and the five stages still sum to e2e.
        let r = RequestRecord {
            arrival: 1,
            session: None,
            priority: 0,
            submitted: 0,
            admitted: Some(2),
            first_token: Some(10),
            finished: Some(30),
            generated_tokens: 8,
            preemptions: 2,
            swap_wait_ticks: 7,
            migration_wait_ticks: 3,
            wait_before_first_ticks: 4,
            rejected: None,
            retries: 0,
            timeouts: 0,
            shed: None,
            dead_letter: None,
            lost_at: None,
            recovery_wait_ticks: 0,
        };
        let w = r.waterfall().unwrap();
        assert_eq!(w.queueing, 2);
        assert_eq!(w.prefill, 8 - 4);
        assert_eq!(w.decode, 20 - 6);
        assert_eq!(w.swap_wait, 7);
        assert_eq!(w.migration_wait, 3);
        assert_eq!(w.e2e(), 30);
        let stages = StageSummaries::of(&[w]).unwrap();
        assert_eq!(stages.prefill.p50, 4);
        assert!(StageSummaries::of(&[]).is_none());
    }

    #[test]
    fn unfinished_record_has_no_waterfall() {
        let r = RequestRecord {
            arrival: 2,
            session: None,
            priority: 0,
            submitted: 0,
            admitted: Some(1),
            first_token: Some(2),
            finished: None,
            generated_tokens: 1,
            preemptions: 0,
            swap_wait_ticks: 0,
            migration_wait_ticks: 0,
            wait_before_first_ticks: 0,
            rejected: None,
            retries: 0,
            timeouts: 0,
            shed: None,
            dead_letter: None,
            lost_at: None,
            recovery_wait_ticks: 0,
        };
        assert!(r.waterfall().is_none());
    }
}

//! Per-request timing records and aggregate serving metrics.

use veda::{EngineReport, Session};

use crate::admission::RejectReason;
use crate::scheduler::SchedKind;
use crate::workload::ArrivalKind;

/// Lifecycle timestamps (virtual-clock ticks) and counters of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Global arrival index (submission order).
    pub arrival: usize,
    /// Engine session handle, once admitted.
    pub session: Option<Session>,
    /// Priority tier.
    pub priority: u8,
    /// Tick the request arrived at the server.
    pub submitted: u64,
    /// Tick the request was admitted into the engine (prefill ran).
    pub admitted: Option<u64>,
    /// Tick the first generated token was emitted.
    pub first_token: Option<u64>,
    /// Tick the last token was emitted.
    pub finished: Option<u64>,
    /// Tokens actually generated.
    pub generated_tokens: usize,
    /// Times the session was preempted (paused + swapped out).
    pub preemptions: u32,
    /// Why the request was rejected, if it was.
    pub rejected: Option<RejectReason>,
}

impl RequestRecord {
    /// Time to first token in ticks (`first_token − submitted`).
    pub fn ttft(&self) -> Option<u64> {
        Some(self.first_token? - self.submitted)
    }

    /// End-to-end latency in ticks (`finished − submitted`).
    pub fn e2e(&self) -> Option<u64> {
        Some(self.finished? - self.submitted)
    }

    /// Mean time per output token after the first, in ticks.
    pub fn tpot(&self) -> Option<f64> {
        let span = self.finished? - self.first_token?;
        if self.generated_tokens > 1 {
            Some(span as f64 / (self.generated_tokens - 1) as f64)
        } else {
            None
        }
    }
}

/// Nearest-rank percentile of a sorted slice. `q` in [0, 1].
fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty set");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Latency summary of one metric: p50/p95/p99/max over completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Median in ticks.
    pub p50: u64,
    /// 95th percentile in ticks.
    pub p95: u64,
    /// 99th percentile in ticks.
    pub p99: u64,
    /// Maximum in ticks.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a set of latencies; `None` when the set is empty.
    pub fn of(mut values: Vec<u64>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        Some(Self {
            p50: percentile(&values, 0.50),
            p95: percentile(&values, 0.95),
            p99: percentile(&values, 0.99),
            max: *values.last().expect("non-empty"),
        })
    }
}

/// Aggregate result of one [`crate::Server`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Which shard produced this report: `0` for a standalone
    /// [`crate::Server`], the shard's index within a [`crate::Cluster`]
    /// otherwise — so multi-shard output (queue-depth series, per-shard
    /// latency lines) stays attributable after reports are collected.
    pub shard_id: usize,
    /// The arrival process that drove the run.
    pub arrival: ArrivalKind,
    /// The scheduling policy.
    pub sched: SchedKind,
    /// Virtual-clock ticks the run spanned (including idle fast-forwards).
    pub ticks: u64,
    /// Decode ticks the engine executed.
    pub decode_ticks: u64,
    /// Requests that arrived.
    pub submitted: usize,
    /// Requests admitted into the engine.
    pub admitted: usize,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Requests rejected because they can never fit.
    pub rejected_never_fits: usize,
    /// Requests rejected because the queue was full.
    pub rejected_queue_full: usize,
    /// Requests rejected as malformed (trace workloads only).
    pub rejected_invalid: usize,
    /// Preemptions performed (KV swapped out over the host link).
    pub preemptions: u64,
    /// Paused sessions resumed (KV swapped back in).
    pub resumes: u64,
    /// Bytes swapped device → host.
    pub swap_out_bytes: u64,
    /// Bytes swapped host → device.
    pub swap_in_bytes: u64,
    /// Host-link cycles spent on swap traffic.
    pub swap_cycles: u64,
    /// Ticks sessions spent waiting for an in-flight swap-in transfer to
    /// complete (swap latency serialized into the clock): each tick, each
    /// session parked in the swap-in phase contributes one.
    pub swap_wait_ticks: u64,
    /// Budget-shrink interventions (sessions whose caps were tightened).
    pub budget_shrinks: u64,
    /// Queue depth sampled after each executed tick.
    pub queue_depth: Vec<usize>,
    /// Peak KV bytes resident in device memory.
    pub kv_resident_peak_bytes: u64,
    /// Peak KV bytes reserved by admission control.
    pub kv_reserved_peak_bytes: u64,
    /// Configured device KV capacity.
    pub capacity_bytes: u64,
    /// Per-request lifecycle records, in arrival order.
    pub records: Vec<RequestRecord>,
    /// The engine's batched-decode report for the run.
    pub engine: EngineReport,
}

impl ServingReport {
    /// Requests rejected for any reason.
    pub fn rejected(&self) -> usize {
        self.rejected_never_fits + self.rejected_queue_full + self.rejected_invalid
    }

    /// TTFT summary over completed requests.
    pub fn ttft(&self) -> Option<LatencySummary> {
        LatencySummary::of(self.records.iter().filter_map(RequestRecord::ttft).collect())
    }

    /// End-to-end latency summary over completed requests.
    pub fn e2e(&self) -> Option<LatencySummary> {
        LatencySummary::of(self.records.iter().filter_map(RequestRecord::e2e).collect())
    }

    /// Queueing delay (admitted − submitted) summary.
    pub fn queueing_delay(&self) -> Option<LatencySummary> {
        LatencySummary::of(self.records.iter().filter_map(|r| Some(r.admitted? - r.submitted)).collect())
    }

    /// Mean time per output token across completed requests, in ticks.
    pub fn tpot_mean(&self) -> Option<f64> {
        let tpots: Vec<f64> = self.records.iter().filter_map(RequestRecord::tpot).collect();
        if tpots.is_empty() {
            None
        } else {
            Some(tpots.iter().sum::<f64>() / tpots.len() as f64)
        }
    }

    /// Prefix-cache hit rate over all submitted prompts, in `[0, 1]`
    /// (0 when the engine's prefix cache is disabled). A hit means the
    /// prompt shared a cached prefix: its session skipped that span's
    /// prefill and reserved only unshared KV bytes at admission.
    pub fn prefix_hit_rate(&self) -> f64 {
        self.engine.prefix.hit_rate()
    }

    /// Prompt tokens served from the engine's prefix cache across the run
    /// — prefill forward passes (and, under chunked prefill, on-clock
    /// prefill tokens) the shared-prefix reuse saved.
    pub fn prefix_saved_tokens(&self) -> u64 {
        self.engine.prefix.shared_tokens
    }

    /// Largest sampled queue depth.
    pub fn queue_depth_max(&self) -> usize {
        self.queue_depth.iter().copied().max().unwrap_or(0)
    }

    /// Mean sampled queue depth.
    pub fn queue_depth_mean(&self) -> f64 {
        if self.queue_depth.is_empty() {
            0.0
        } else {
            self.queue_depth.iter().sum::<usize>() as f64 / self.queue_depth.len() as f64
        }
    }
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serving report [shard {}]: {} submitted over {} ticks ({} decode), {} arrivals, {} scheduler",
            self.shard_id, self.submitted, self.ticks, self.decode_ticks, self.arrival, self.sched
        )?;
        writeln!(
            f,
            "  admitted / completed   : {} / {} (rejected {}: never_fits {}, queue_full {}, invalid {})",
            self.admitted,
            self.completed,
            self.rejected(),
            self.rejected_never_fits,
            self.rejected_queue_full,
            self.rejected_invalid
        )?;
        writeln!(
            f,
            "  preemptions / resumes  : {} / {} ({} budget shrinks)",
            self.preemptions, self.resumes, self.budget_shrinks
        )?;
        writeln!(
            f,
            "  swap traffic           : {} B out, {} B in, {} link cycles, {} wait ticks",
            self.swap_out_bytes, self.swap_in_bytes, self.swap_cycles, self.swap_wait_ticks
        )?;
        writeln!(
            f,
            "  queue depth            : max {}, mean {:.2}",
            self.queue_depth_max(),
            self.queue_depth_mean()
        )?;
        writeln!(
            f,
            "  kv resident peak       : {} B of {} B capacity ({:.1}%), {} B reserved peak",
            self.kv_resident_peak_bytes,
            self.capacity_bytes,
            100.0 * self.kv_resident_peak_bytes as f64 / self.capacity_bytes.max(1) as f64,
            self.kv_reserved_peak_bytes
        )?;
        if self.engine.prefix.hits + self.engine.prefix.misses > 0 {
            writeln!(
                f,
                "  prefix cache           : {} hits / {} lookups ({:.0}% hit rate), {} prompt tokens saved, {} entries ({} B resident once)",
                self.engine.prefix.hits,
                self.engine.prefix.hits + self.engine.prefix.misses,
                100.0 * self.prefix_hit_rate(),
                self.prefix_saved_tokens(),
                self.engine.prefix.entries,
                self.engine.prefix.resident_bytes,
            )?;
        }
        writeln!(f, "  latency (ticks)        : {:>8} {:>8} {:>8} {:>8}", "p50", "p95", "p99", "max")?;
        let mut row = |name: &str, summary: Option<LatencySummary>| match summary {
            Some(s) => writeln!(f, "    {:<21}: {:>8} {:>8} {:>8} {:>8}", name, s.p50, s.p95, s.p99, s.max),
            None => writeln!(f, "    {name:<21}: (no completed requests)"),
        };
        row("ttft", self.ttft())?;
        row("queueing delay", self.queueing_delay())?;
        row("e2e", self.e2e())?;
        match self.tpot_mean() {
            Some(tpot) => writeln!(f, "  time per output token  : {tpot:.2} ticks")?,
            None => writeln!(f, "  time per output token  : n/a")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn latency_summary_of_empty_is_none() {
        assert!(LatencySummary::of(vec![]).is_none());
        let s = LatencySummary::of(vec![3, 1, 2]).unwrap();
        assert_eq!((s.p50, s.max), (2, 3));
    }

    #[test]
    fn record_derives_metrics() {
        let r = RequestRecord {
            arrival: 0,
            session: None,
            priority: 0,
            submitted: 10,
            admitted: Some(12),
            first_token: Some(15),
            finished: Some(23),
            generated_tokens: 5,
            preemptions: 1,
            rejected: None,
        };
        assert_eq!(r.ttft(), Some(5));
        assert_eq!(r.e2e(), Some(13));
        assert_eq!(r.tpot(), Some(2.0));
    }
}

//! The cluster plane: N serving shards behind one admission/routing
//! front door, stepped on one virtual clock.
//!
//! A [`Cluster`] is the multi-engine deployment of the serving stack:
//! each [`Shard`] is a full engine + admission controller + queue (the
//! exact machinery a standalone [`crate::Server`] runs), and the cluster
//! adds the things that only exist *between* engines — routing,
//! migration, and the fault plane. One [`Cluster::tick`] is one
//! virtual-clock step:
//!
//! 0. **Fault transitions** (no-ops without a [`FaultConfig`]): scheduled
//!    crashes fail their shard (in-flight work displaced into the retry
//!    queue), recoveries return it to rotation, link-degradation windows
//!    scale host-link bandwidth; then parked retries whose backoff has
//!    elapsed re-route through the healthy shards.
//! 1. **Route + screen**: each arrival due this tick is routed by the
//!    [`RouterPolicy`] (which sees per-shard load, health, and
//!    prefix-affinity snapshots, never the RNG) and screened by the
//!    chosen shard's admission control. The [`crate::Workload`] samples
//!    requests centrally, in global arrival order, so the routing
//!    decision can never perturb what a request *is* — only where it
//!    runs. That is the cluster's RNG-stream discipline, pinned by the
//!    `cluster_stack` tests. When *no* shard is routable the arrival is
//!    registered on a deterministic home shard and parked as a retry.
//!    Then the overload watermark (if armed) sheds the lowest-priority
//!    newest queued requests until the cluster is back under it.
//! 2. **Pre-step**, per shard in index order: swap-in completions,
//!    swap-in starts, scheduler-driven admission.
//! 3. **Migration** (opt-in, [`MigrationConfig`]): if a shard is running
//!    hot, its largest running session is paused, its KV state extracted
//!    (privatizing any shared-prefix span) and costed through *both*
//!    host links ([`veda_mem::TransferKind::Migration`] traffic —
//!    device→host on the source, host→device on the target), and the
//!    session lands in the target's swap-in set: it re-enters the batch
//!    only after the transfer's cycles elapse, exactly like a preempted
//!    session swapping back in. Migration never changes a session's
//!    token stream (pinned), and the request's record stays on the shard
//!    that accepted it.
//! 4. **Step**, per shard in index order: one batched engine tick each,
//!    all against the same virtual tick.
//! 5. **Outbox drain**: record updates for migrated-in sessions are
//!    applied to their home shards, in shard order — cross-shard state
//!    flows through one deterministic channel, never mid-step.
//! 6. **Deadline enforcement** (only with deadlines configured): every
//!    attempt past its TTFT or e2e deadline is torn down and retried or
//!    dead-lettered under the [`crate::RetryPolicy`].
//!
//! Determinism: same seed, same shard count, same policies ⇒
//! bit-identical [`ClusterReport`]. A 1-shard cluster under round-robin
//! routing is bit-identical to [`crate::Server`] on the same seed — the
//! cluster plane is a strict generalization, not a fork. And a cluster
//! whose [`ClusterConfig::faults`] is `None` is byte-identical to one
//! configured with the default (no-op) [`FaultConfig`] — determinism
//! invariant #9, by construction: the fault runtime is always present
//! and every fault step no-ops identically on an empty plan.

use veda::Engine;
use veda_eviction::BudgetController;
use veda_mem::{HostLinkConfig, SwapDirection, TransferKind};
use veda_telemetry::{MetricsRegistry, SinkHandle, StageWaterfall, TraceEvent, TraceEventKind};

use crate::admission::AdmissionConfig;
use crate::error::ServeError;
use crate::faults::{FaultConfig, FaultRuntime, LostWork, RetryEntry, ShardHealth};
use crate::report::{LatencySummary, ServingReport, StageSummaries};
use crate::router::{RouterKind, RouterPolicy};
use crate::scheduler::SchedKind;
use crate::shard::{RecordRef, SessionEntry, Shard, SwapInEntry, WaitKind};
use crate::workload::{ServingRequest, Workload};

/// Opt-in cross-shard migration thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// A shard is migration-eligible (as a source) when its reserved
    /// bytes exceed this fraction of capacity.
    pub hot_fraction: f64,
    /// A shard may receive a migrated session only if the landing
    /// reservation keeps it at or below this fraction of capacity —
    /// the hysteresis gap to `hot_fraction` prevents sessions
    /// ping-ponging between two warm shards.
    pub cold_fraction: f64,
    /// At most this many migrations per virtual tick, cluster-wide.
    pub max_per_tick: usize,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self { hot_fraction: 0.85, cold_fraction: 0.6, max_per_tick: 1 }
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards (must match the engines handed to
    /// [`Cluster::new`]).
    pub shards: usize,
    /// Device KV capacity of each shard's admission control.
    pub per_shard_capacity_bytes: u64,
    /// Per-shard admission queue depth limit.
    pub max_queue_depth: usize,
    /// Routing policy.
    pub router: RouterKind,
    /// Scheduling policy (every shard runs the same one).
    pub sched: SchedKind,
    /// Host-link model (each shard gets its own link).
    pub host_link: HostLinkConfig,
    /// Optional budget-shrink pressure response, per shard (see
    /// [`crate::ServerConfig::shrink`]).
    pub shrink: Option<BudgetController>,
    /// Cross-shard migration; `None` (the default) disables it, leaving
    /// routing as the only load-balancing mechanism.
    pub migration: Option<MigrationConfig>,
    /// Safety valve: the run stops after this many virtual ticks even if
    /// work remains.
    pub max_ticks: u64,
    /// Observation-only trace sink, shared by every shard (the exporter
    /// demuxes shards into separate tracks). `None` (the default) keeps
    /// the run byte-identical to a build without the telemetry plane —
    /// see determinism invariant #8.
    pub trace: Option<SinkHandle>,
    /// The fault plane: scheduled crashes and link degradations, deadline
    /// timeouts, retry policy, and the load-shedding watermark. `None`
    /// (the default) is byte-identical to the default no-op
    /// [`FaultConfig`] — determinism invariant #9.
    pub faults: Option<FaultConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let admission = AdmissionConfig::default();
        Self {
            shards: 2,
            per_shard_capacity_bytes: admission.capacity_bytes,
            max_queue_depth: admission.max_queue_depth,
            router: RouterKind::RoundRobin,
            sched: SchedKind::Fcfs,
            host_link: HostLinkConfig::default(),
            shrink: None,
            migration: None,
            max_ticks: 1_000_000,
            trace: None,
            faults: None,
        }
    }
}

/// N shards behind one router on one virtual clock (see the
/// [module docs](self)).
pub struct Cluster {
    shards: Vec<Shard>,
    workload: Workload,
    router: Box<dyn RouterPolicy>,
    migration: Option<MigrationConfig>,
    max_ticks: u64,
    now: u64,
    /// Global arrival counter (record indices stay in arrival order
    /// across shards).
    arrivals: usize,
    /// Requests routed to each shard.
    routed: Vec<usize>,
    migrations: u64,
    migration_bytes: u64,
    migration_cycles: u64,
    /// Per-shard reserved-KV-bytes series, sampled after each executed
    /// tick.
    reserved_series: Vec<Vec<u64>>,
    /// Trace sink for cluster-plane events (migration starts); each shard
    /// holds its own clone for shard-plane events.
    trace: Option<SinkHandle>,
    /// The fault plane's live state — always present; a cluster without
    /// a configured plane runs the no-op default (invariant #9).
    faults: FaultRuntime,
}

impl Cluster {
    /// Creates a cluster from one idle engine per shard, panicking on
    /// misconfiguration (the original constructor's contract; see
    /// [`Cluster::try_new`] for the `Result`-returning form).
    ///
    /// # Panics
    ///
    /// Panics on any [`ServeError`] that [`Cluster::try_new`] would
    /// return: engine count mismatch, empty cluster, non-idle engines,
    /// mixed model geometry, bad migration thresholds, or an invalid
    /// fault plan.
    pub fn new(engines: Vec<Engine>, workload: Workload, config: ClusterConfig) -> Self {
        Self::try_new(engines, workload, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a cluster from one idle engine per shard, returning a
    /// typed [`ServeError`] instead of panicking on misconfiguration.
    pub fn try_new(
        engines: Vec<Engine>,
        workload: Workload,
        config: ClusterConfig,
    ) -> Result<Self, ServeError> {
        if engines.len() != config.shards {
            return Err(ServeError::EngineCountMismatch { engines: engines.len(), shards: config.shards });
        }
        if engines.is_empty() {
            return Err(ServeError::EmptyCluster);
        }
        if let Some(engine) = engines.iter().position(|e| e.active_sessions() > 0 || e.paused_sessions() > 0)
        {
            return Err(ServeError::EngineNotIdle { engine });
        }
        if !engines.windows(2).all(|w| w[0].model_config() == w[1].model_config()) {
            return Err(ServeError::ModelGeometryMismatch);
        }
        if let Some(m) = &config.migration {
            // cold ≤ hot is the hysteresis that prevents a session from
            // ping-ponging: a landing that pushes the target past the
            // cold threshold is refused, so the target cannot have been
            // made hot by the migration itself.
            if !(m.cold_fraction <= m.hot_fraction && m.hot_fraction <= 1.0 && m.cold_fraction > 0.0) {
                return Err(ServeError::InvalidMigrationThresholds {
                    cold: m.cold_fraction,
                    hot: m.hot_fraction,
                });
            }
        }
        let faults = config.faults.clone().unwrap_or_default();
        faults.plan.validate(engines.len())?;
        let n = engines.len();
        let admission = AdmissionConfig {
            capacity_bytes: config.per_shard_capacity_bytes,
            max_queue_depth: config.max_queue_depth,
        };
        let shards = engines
            .into_iter()
            .enumerate()
            .map(|(id, engine)| {
                let mut shard =
                    Shard::new(id, engine, admission, config.host_link, config.sched, config.shrink);
                if let Some(sink) = &config.trace {
                    shard.install_trace(sink.clone());
                }
                shard
            })
            .collect();
        Ok(Self {
            shards,
            workload,
            router: config.router.build(),
            migration: config.migration,
            max_ticks: config.max_ticks,
            now: 0,
            arrivals: 0,
            routed: vec![0; n],
            migrations: 0,
            migration_bytes: 0,
            migration_cycles: 0,
            reserved_series: vec![Vec::new(); n],
            trace: config.trace,
            faults: FaultRuntime::new(faults, n),
        })
    }

    /// The current virtual-clock tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Requests that have arrived cluster-wide so far.
    pub fn submitted(&self) -> usize {
        self.arrivals
    }

    /// Requests finished cluster-wide so far.
    pub fn completed(&self) -> usize {
        self.shards.iter().map(Shard::completed).sum()
    }

    /// Requests rejected cluster-wide so far.
    pub fn rejected(&self) -> usize {
        self.shards.iter().map(Shard::rejected).sum()
    }

    /// Requests currently queued, running, preempted, or swapping in on
    /// any shard — plus requests parked in the cluster's retry queue
    /// waiting out their backoff.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(Shard::in_flight).sum::<usize>() + self.faults.retry.len()
    }

    /// Cross-shard migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Requests dead-lettered so far (terminal: retry budget exhausted).
    pub fn dead_lettered(&self) -> usize {
        self.faults.dead_letters as usize
    }

    /// Requests shed by the overload watermark so far (terminal).
    pub fn shed(&self) -> usize {
        self.faults.shed as usize
    }

    /// Retry attempts consumed so far (crash losses, deadline teardowns,
    /// and requeue failures).
    pub fn retries(&self) -> u64 {
        self.faults.retries
    }

    /// Deadline violations that tore an attempt down so far.
    pub fn timeouts(&self) -> u64 {
        self.faults.timeouts
    }

    /// Current per-shard health, indexed by shard.
    pub fn health(&self) -> &[ShardHealth] {
        &self.faults.health
    }

    /// Whether all work (arrived and future) is finished.
    pub fn is_done(&self) -> bool {
        self.workload.exhausted() && self.in_flight() == 0
    }

    /// Executes one virtual-clock tick (see the [module docs](self)).
    pub fn tick(&mut self) {
        self.apply_fault_transitions();
        self.drain_retries();
        for arrival in self.workload.take_arrivals(self.now) {
            let global = self.arrivals;
            self.arrivals += 1;
            if self.faults.health.iter().any(|h| h.routable()) {
                let views: Vec<_> = self
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.view(&arrival.request.prompt, self.faults.health[i]))
                    .collect();
                let pick = self.router.route(&views);
                assert!(pick < self.shards.len(), "router returned an out-of-range shard");
                assert!(self.faults.health[pick].routable(), "router picked an unroutable shard");
                self.routed[pick] += 1;
                self.shards[pick].accept(arrival, global, self.now, &mut self.workload);
            } else {
                // Every shard is down or draining: the arrival cannot be
                // routed anywhere. Register its record on a deterministic
                // home shard and park it as a retry attempt (bounded, so
                // a cluster that never recovers dead-letters it).
                let ServingRequest { request, priority } = arrival;
                let home = global % self.shards.len();
                let index = self.shards[home].register_deferred(&request, priority, global, self.now);
                self.retry_or_dead_letter(LostWork {
                    home: (home, index),
                    arrival: global,
                    priority,
                    request,
                });
            }
        }
        self.shed_overload();
        for shard in &mut self.shards {
            shard.begin_tick(self.now);
        }
        if self.migration.is_some() {
            self.migrate();
        }
        for shard in &mut self.shards {
            shard.step_engine(self.now, &mut self.workload);
        }
        // Drain foreign-record updates in shard order: deterministic, and
        // record state is settled before anyone observes end-of-tick
        // counters (the conservation invariant the proptests check).
        for i in 0..self.shards.len() {
            for update in self.shards[i].take_outbox() {
                debug_assert_ne!(update.shard, i, "a shard never posts to its own outbox");
                self.shards[update.shard].apply_record_delta(update.index, update.delta);
            }
        }
        self.enforce_deadlines();
        for (i, shard) in self.shards.iter().enumerate() {
            self.reserved_series[i].push(shard.reserved_bytes());
        }
        self.faults.shard_ticks += self.shards.len() as u64;
        self.faults.alive_shard_ticks +=
            self.faults.health.iter().filter(|h| **h != ShardHealth::Down).count() as u64;

        self.now += 1;
        // Fast-forward idle spans to the next thing that can happen: an
        // arrival, a parked retry coming ready, or a scheduled fault
        // transition (so no ShardDown/ShardUp edge is skipped over). A
        // finished run never jumps — a fault transition past the last
        // completion would only inflate the tick count it is judged by.
        if !self.is_done() && self.shards.iter().map(Shard::in_flight).sum::<usize>() == 0 {
            let mut next: Option<u64> = None;
            for candidate in [
                self.workload.next_arrival_tick(),
                self.faults.next_retry_ready(),
                self.faults.config.plan.next_transition_at(self.now),
            ]
            .into_iter()
            .flatten()
            {
                next = Some(next.map_or(candidate, |n| n.min(candidate)));
            }
            if let Some(next) = next {
                self.now = self.now.max(next);
            }
        }
    }

    /// Applies the fault plan's scheduled health and link transitions for
    /// this tick: newly-down shards fail (their work re-enters through
    /// the retry queue), recovered shards rejoin rotation, and each
    /// shard's host-link bandwidth fraction is refreshed. A no-op on an
    /// empty plan (invariant #9).
    fn apply_fault_transitions(&mut self) {
        for s in 0..self.shards.len() {
            let health = self.faults.config.plan.health_at(s, self.now);
            let was_down = self.faults.health[s] == ShardHealth::Down;
            let is_down = health == ShardHealth::Down;
            self.faults.health[s] = health;
            if is_down && !was_down {
                let sessions = (self.shards[s].running.len()
                    + self.shards[s].paused.len()
                    + self.shards[s].swapping.len()) as u64;
                let lost = self.shards[s].fail();
                self.faults.shard_downs += 1;
                self.faults.lost_sessions += sessions;
                self.faults.down_since[s] = Some(self.now);
                // The event's request field carries the shard id: shard
                // transitions are not tied to any one request.
                self.shards[s].emit(
                    self.now,
                    s as u64,
                    TraceEventKind::ShardDown { lost: lost.len() as u32 },
                );
                for work in lost {
                    self.retry_or_dead_letter(work);
                }
            } else if was_down && !is_down {
                self.faults.shard_ups += 1;
                let down_ticks = self.faults.down_since[s].take().map_or(0, |t| self.now.saturating_sub(t));
                self.shards[s].emit(self.now, s as u64, TraceEventKind::ShardUp { down_ticks });
            }
        }
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let fraction = self.faults.config.plan.link_fraction_at(s, self.now);
            if fraction != shard.link.degradation() {
                shard.link.set_degradation(fraction);
            }
        }
    }

    /// Re-routes every parked retry whose backoff has elapsed through the
    /// currently-routable shards; a retry that still cannot land (no
    /// routable shard, or screening failure) consumes another attempt.
    fn drain_retries(&mut self) {
        if self.faults.retry.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.faults.retry);
        let mut parked = std::collections::VecDeque::new();
        for entry in pending {
            if entry.ready > self.now {
                parked.push_back(entry);
            } else {
                self.place_retry(entry.work);
            }
        }
        // place_retry may have parked fresh (backed-off) entries; keep
        // the still-waiting ones first so drain order stays stable.
        let fresh = std::mem::take(&mut self.faults.retry);
        self.faults.retry = parked;
        self.faults.retry.extend(fresh);
    }

    /// Routes one ready retry to a shard queue, or hands it back to the
    /// retry/dead-letter path when nothing can take it.
    fn place_retry(&mut self, work: LostWork) {
        if !self.faults.health.iter().any(|h| h.routable()) {
            self.retry_or_dead_letter(work);
            return;
        }
        let views: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.view(&work.request.prompt, self.faults.health[i]))
            .collect();
        let pick = self.router.route(&views);
        assert!(pick < self.shards.len(), "router returned an out-of-range shard");
        assert!(self.faults.health[pick].routable(), "router picked an unroutable shard");
        self.routed[pick] += 1;
        if let Err((_reason, work)) = self.shards[pick].requeue(work, self.now) {
            self.retry_or_dead_letter(work);
        }
    }

    /// The bounded-retry state machine: resets the record's attempt
    /// state, then either parks the work with its exponential backoff or
    /// — once the retry budget is spent — dead-letters it (terminal,
    /// disposing of the request for closed-loop workloads).
    fn retry_or_dead_letter(&mut self, work: LostWork) {
        let now = self.now;
        let (home, index) = work.home;
        let max_attempts = self.faults.config.retry.max_attempts;
        let (exhausted, attempt) = {
            let record = &mut self.shards[home].records[index];
            record.reset_attempt(now);
            if record.retries >= max_attempts {
                record.dead_letter = Some(now);
                record.lost_at = None;
                (true, record.retries)
            } else {
                record.retries += 1;
                (false, record.retries)
            }
        };
        if exhausted {
            self.faults.dead_letters += 1;
            self.shards[home].emit(
                now,
                work.arrival as u64,
                TraceEventKind::DeadLetter { attempts: attempt },
            );
            self.workload.notify_completion(now);
        } else {
            self.faults.retries += 1;
            self.shards[home].emit(now, work.arrival as u64, TraceEventKind::Retried { attempt });
            let ready = now + self.faults.config.retry.backoff(attempt);
            self.faults.retry.push_back(RetryEntry { ready, work });
        }
    }

    /// Sheds queued requests while the cluster-wide queue depth exceeds
    /// the watermark fraction of total queue slots. Victims are the
    /// lowest-priority tier's newest arrivals — the requests that would
    /// wait longest anyway — and shedding is terminal (no retry): its
    /// point is dropping work *cheaply* under overload.
    fn shed_overload(&mut self) {
        let Some(watermark) = self.faults.config.shed_watermark else { return };
        let slots = self.shards.len() * self.shards[0].admission.config().max_queue_depth;
        let threshold = (watermark * slots as f64) as usize;
        loop {
            let depth: usize = self.shards.iter().map(Shard::queue_len).sum();
            if depth <= threshold {
                break;
            }
            let (_, std::cmp::Reverse(arrival), shard) = self
                .shards
                .iter()
                .flat_map(|s| s.queue.iter().map(move |e| (e.priority, std::cmp::Reverse(e.arrival), s.id)))
                .min()
                .expect("queue depth above threshold implies a non-empty queue");
            let entry =
                self.shards[shard].remove_queued(arrival).expect("victim was just seen in this queue");
            let (home, index) = match entry.record {
                RecordRef::Local(i) => (shard, i),
                RecordRef::Foreign { shard, index } => (shard, index),
            };
            let record = &mut self.shards[home].records[index];
            record.shed = Some(self.now);
            record.lost_at = None;
            self.faults.shed += 1;
            self.shards[home].emit(self.now, arrival as u64, TraceEventKind::Shed);
            self.workload.notify_completion(self.now);
        }
    }

    /// Tears down every attempt past its TTFT or e2e deadline (measured
    /// from the attempt's epoch, not the original submission) and feeds
    /// it to the retry/dead-letter path. A no-op with no deadlines
    /// configured.
    fn enforce_deadlines(&mut self) {
        let ttft = self.faults.config.ttft_deadline;
        let e2e = self.faults.config.e2e_deadline;
        if ttft.is_none() && e2e.is_none() {
            return;
        }
        let now = self.now;
        // Phase 1: scan immutably, in shard order, collecting violations.
        let mut violations: Vec<(usize, usize, &'static str)> = Vec::new();
        for si in 0..self.shards.len() {
            let shard = &self.shards[si];
            let entries = shard
                .queue
                .iter()
                .map(|e| (e.record, e.arrival, e.submitted))
                .chain(shard.running.iter().map(|e| (e.record, e.arrival, e.submitted)))
                .chain(shard.paused.iter().map(|e| (e.record, e.arrival, e.submitted)))
                .chain(shard.swapping.iter().map(|s| (s.entry.record, s.entry.arrival, s.entry.submitted)));
            for (record_ref, arrival, submitted) in entries {
                let (h, idx) = match record_ref {
                    RecordRef::Local(i) => (si, i),
                    RecordRef::Foreign { shard, index } => (shard, index),
                };
                let record = &self.shards[h].records[idx];
                // e2e subsumes ttft: a request past both deadlines is
                // one timeout, labeled with the stricter violation.
                if e2e.is_some_and(|d| now >= submitted + d) && record.finished.is_none() {
                    violations.push((si, arrival, "e2e"));
                } else if ttft.is_some_and(|d| now >= submitted + d) && record.first_token.is_none() {
                    violations.push((si, arrival, "ttft"));
                }
            }
        }
        // Phase 2: tear down in the order collected (deterministic).
        for (si, arrival, deadline) in violations {
            let Some(work) = self.shards[si].remove_timed_out(arrival, deadline, now) else {
                continue;
            };
            let (h, idx) = work.home;
            self.shards[h].records[idx].timeouts += 1;
            self.faults.timeouts += 1;
            self.retry_or_dead_letter(work);
        }
    }

    /// Moves up to [`MigrationConfig::max_per_tick`] sessions from hot
    /// shards to cold ones. A migration pauses the victim on its source,
    /// extracts its KV state (privatizing any shared-prefix span — the
    /// payload is the session's complete state), pays the transfer on
    /// both host links, and parks the session in the target's swap-in
    /// set until the transfer's cycles elapse.
    fn migrate(&mut self) {
        let cfg = self.migration.expect("caller checked");
        for _ in 0..cfg.max_per_tick {
            let Some((src, tgt)) = self.pick_migration(&cfg) else { break };
            self.execute_migration(src, tgt);
        }
    }

    /// Picks (source, target) for one migration, or `None` when no shard
    /// is hot or no candidate can land anywhere.
    fn pick_migration(&self, cfg: &MigrationConfig) -> Option<(usize, usize)> {
        let hot = |s: &Shard| {
            let threshold = (cfg.hot_fraction * s.capacity_bytes() as f64) as u64;
            s.reserved_bytes() > threshold
        };
        // Hottest eligible source; ties go to the lowest shard index
        // (max_by_key keeps the last max, so reverse the index in the
        // key). A Draining shard may still migrate sessions *away* —
        // that is the point of the drain window — but a Down shard has
        // nothing to offer (its running set is empty).
        let src = self
            .shards
            .iter()
            .filter(|s| !s.running.is_empty() && hot(s))
            .max_by_key(|s| (s.reserved_bytes(), std::cmp::Reverse(s.id)))?
            .id;
        // Victim: the largest running session (frees the most source
        // bytes per transfer); ties go to the oldest arrival.
        let victim = self.shards[src]
            .running
            .iter()
            .max_by_key(|e| (e.full_bytes, std::cmp::Reverse(e.arrival)))
            .expect("source has running sessions");
        let need = victim.full_bytes;
        // Coldest *routable* shard that can land the full (undiscounted)
        // payload and stay under the cold-side threshold — down and
        // draining shards receive no landings.
        let tgt = self
            .shards
            .iter()
            .filter(|s| s.id != src && self.faults.health[s.id].routable())
            .filter(|s| {
                let cold_cap = (cfg.cold_fraction * s.capacity_bytes() as f64) as u64;
                s.admission.would_fit(need.saturating_add(s.prefix_overhead()))
                    && s.reserved_bytes().saturating_add(need) <= cold_cap
            })
            .min_by_key(|s| (s.reserved_bytes(), s.queue_len(), s.id))?
            .id;
        Some((src, tgt))
    }

    /// Executes one migration of the source's chosen victim to `tgt`.
    fn execute_migration(&mut self, src: usize, tgt: usize) {
        let (source, target) = two_shards(&mut self.shards, src, tgt);
        let victim_index = source
            .running
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.full_bytes, std::cmp::Reverse(e.arrival)))
            .map(|(i, _)| i)
            .expect("pick_migration found a victim");
        let entry = source.running.remove(victim_index);
        source.engine.pause(entry.session).expect("running entry tracks the engine");
        let migrated = source.engine.extract(entry.session).expect("just paused");
        // Extraction privatized any shared-prefix span, so the payload —
        // and the target-side reservation — is the full session state.
        let payload = migrated.kv_bytes();
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                tick: self.now,
                cycles: source.elapsed_cycles,
                shard: src as u32,
                request: entry.arrival as u64,
                kind: TraceEventKind::MigrationStart { to_shard: tgt as u32, bytes: payload },
            });
        }
        source.admission.release(entry.est_bytes);
        let out_cycles = source.link.transfer_tagged(payload, SwapDirection::Out, TransferKind::Migration);
        let in_cycles = target.link.transfer_tagged(payload, SwapDirection::In, TransferKind::Migration);
        let session = target.engine.adopt(migrated).expect("cluster shards share one model geometry");
        target.admission.reserve(entry.full_bytes);
        // The record stays on its home shard: local entries become
        // foreign references, already-foreign entries keep pointing home —
        // and a session migrating *back* to its home shard becomes local
        // again (otherwise it would post outbox updates to itself).
        let record = match entry.record {
            RecordRef::Local(index) => RecordRef::Foreign { shard: src, index },
            RecordRef::Foreign { shard, index } if shard == tgt => RecordRef::Local(index),
            foreign @ RecordRef::Foreign { .. } => foreign,
        };
        debug_assert!(
            !matches!(record, RecordRef::Foreign { shard, .. } if shard == tgt),
            "a session never migrates to its own home shard as foreign"
        );
        target.swapping.push(SwapInEntry {
            entry: SessionEntry {
                record,
                arrival: entry.arrival,
                submitted: entry.submitted,
                request: entry.request,
                session,
                priority: entry.priority,
                est_bytes: entry.full_bytes,
                full_bytes: entry.full_bytes,
                preemptions: entry.preemptions,
                cap: entry.cap,
                wait_since: Some((WaitKind::Migration { from: src }, self.now)),
            },
            ready_at: target.elapsed_cycles + in_cycles,
        });
        self.migrations += 1;
        self.migration_bytes += payload;
        self.migration_cycles += out_cycles + in_cycles;
    }

    /// Runs the workload to completion (or the `max_ticks` safety valve)
    /// and produces the [`ClusterReport`].
    pub fn run(mut self) -> ClusterReport {
        while !self.is_done() && self.now < self.max_ticks {
            self.tick();
        }
        let arrival = self.workload.kind();
        let router = self.router.kind();
        let shards: Vec<ServingReport> =
            self.shards.into_iter().map(|s| s.into_report(arrival, self.now)).collect();
        ClusterReport {
            router,
            shard_count: shards.len(),
            ticks: self.now,
            routed: self.routed,
            migrations: self.migrations,
            migration_bytes: self.migration_bytes,
            migration_cycles: self.migration_cycles,
            kv_reserved_series: self.reserved_series,
            shard_downs: self.faults.shard_downs,
            shard_ups: self.faults.shard_ups,
            lost_sessions: self.faults.lost_sessions,
            retries: self.faults.retries,
            timeouts: self.faults.timeouts,
            dead_letters: self.faults.dead_letters,
            shed: self.faults.shed,
            alive_shard_ticks: self.faults.alive_shard_ticks,
            shard_ticks: self.faults.shard_ticks,
            shards,
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.now)
            .field("shards", &self.shards)
            .field("arrivals", &self.arrivals)
            .field("migrations", &self.migrations)
            .finish()
    }
}

/// Mutably borrows two distinct shards at once.
fn two_shards(shards: &mut [Shard], a: usize, b: usize) -> (&mut Shard, &mut Shard) {
    assert_ne!(a, b, "migration source and target must differ");
    if a < b {
        let (left, right) = shards.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = shards.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

/// Aggregate result of one [`Cluster`] run: per-shard [`ServingReport`]s
/// plus the cluster-plane series (routing decisions, migration traffic,
/// per-shard KV-residency over time) and global latency aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The routing policy that drove the run.
    pub router: RouterKind,
    /// Number of shards.
    pub shard_count: usize,
    /// Virtual-clock ticks the run spanned.
    pub ticks: u64,
    /// Requests routed to each shard, indexed by shard.
    pub routed: Vec<usize>,
    /// Cross-shard migrations performed.
    pub migrations: u64,
    /// KV bytes moved by migrations (counted once per migration; each
    /// migration pays the transfer on both host links).
    pub migration_bytes: u64,
    /// Host-link cycles spent on migration traffic (both directions).
    pub migration_cycles: u64,
    /// Per-shard reserved-KV-bytes series, sampled after each executed
    /// tick, indexed by shard.
    pub kv_reserved_series: Vec<Vec<u64>>,
    /// Fail-stop shard crashes executed by the fault plan.
    pub shard_downs: u64,
    /// Shard recoveries executed by the fault plan.
    pub shard_ups: u64,
    /// Admitted sessions lost to crashes (their KV state was discarded
    /// and their requests re-prefilled on retry).
    pub lost_sessions: u64,
    /// Retry attempts consumed (crash losses, deadline teardowns, and
    /// requeue failures).
    pub retries: u64,
    /// Deadline violations (TTFT or e2e) that tore an attempt down.
    pub timeouts: u64,
    /// Requests dead-lettered after exhausting their retry budget
    /// (terminal).
    pub dead_letters: u64,
    /// Requests shed by the overload watermark (terminal).
    pub shed: u64,
    /// Shard-ticks spent not `Down` (availability numerator; a draining
    /// shard still counts as available — it is serving its queue).
    pub alive_shard_ticks: u64,
    /// Total shard-ticks observed (availability denominator).
    pub shard_ticks: u64,
    /// Per-shard serving reports, indexed by shard. Each request's
    /// record lives in the report of the shard that *accepted* it, even
    /// if the session later migrated.
    pub shards: Vec<ServingReport>,
}

impl ClusterReport {
    /// Requests that arrived cluster-wide.
    pub fn submitted(&self) -> usize {
        self.shards.iter().map(|s| s.submitted).sum()
    }

    /// Requests admitted cluster-wide.
    pub fn admitted(&self) -> usize {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Requests completed cluster-wide.
    pub fn completed(&self) -> usize {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Requests rejected cluster-wide.
    pub fn rejected(&self) -> usize {
        self.shards.iter().map(ServingReport::rejected).sum()
    }

    /// Fraction of shard-ticks spent not `Down`, in `[0, 1]` (`1.0` for
    /// a run that never executed a tick).
    pub fn availability(&self) -> f64 {
        if self.shard_ticks == 0 {
            1.0
        } else {
            self.alive_shard_ticks as f64 / self.shard_ticks as f64
        }
    }

    /// Recovery-latency summary (ticks from an attempt's loss to its
    /// re-admission) over every request that survived at least one loss;
    /// `None` when nothing recovered.
    pub fn recovery(&self) -> Option<LatencySummary> {
        LatencySummary::of(
            self.shards
                .iter()
                .flat_map(|s| s.records.iter())
                .filter(|r| r.recovery_wait_ticks > 0)
                .map(|r| r.recovery_wait_ticks)
                .collect(),
        )
    }

    /// Completed requests per tick — the throughput that survives the
    /// fault schedule (timed-out retries, dead letters and shed requests
    /// all fall out of the numerator).
    pub fn goodput(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.completed() as f64 / self.ticks as f64
        }
    }

    /// Tokens generated cluster-wide.
    pub fn generated_tokens(&self) -> u64 {
        self.shards.iter().flat_map(|s| s.records.iter()).map(|r| r.generated_tokens as u64).sum()
    }

    /// Global TTFT summary over every completed request on every shard.
    pub fn ttft(&self) -> Option<LatencySummary> {
        LatencySummary::of(
            self.shards.iter().flat_map(|s| s.records.iter()).filter_map(|r| r.ttft()).collect(),
        )
    }

    /// Global end-to-end latency summary over every completed request.
    pub fn e2e(&self) -> Option<LatencySummary> {
        LatencySummary::of(
            self.shards.iter().flat_map(|s| s.records.iter()).filter_map(|r| r.e2e()).collect(),
        )
    }

    /// Latency waterfalls of every completed request on every shard.
    pub fn waterfalls(&self) -> Vec<StageWaterfall> {
        self.shards.iter().flat_map(ServingReport::waterfalls).collect()
    }

    /// Pooled per-stage latency summaries over every completed request
    /// on every shard; `None` on a zero-completion run.
    pub fn stages(&self) -> Option<StageSummaries> {
        StageSummaries::of(&self.waterfalls())
    }

    /// Folds the run into one [`MetricsRegistry`]: every shard's
    /// registry merged (counters add, histograms merge), plus the
    /// cluster-plane counters that only exist between shards.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for shard in &self.shards {
            m.merge(&shard.metrics());
        }
        m.counter_add("cluster_migrations", self.migrations);
        m.counter_add("cluster_migration_bytes", self.migration_bytes);
        m.counter_add("cluster_migration_link_cycles", self.migration_cycles);
        m.counter_add("cluster_shard_downs", self.shard_downs);
        m.counter_add("cluster_shard_ups", self.shard_ups);
        m.counter_add("cluster_lost_sessions", self.lost_sessions);
        m.counter_add("cluster_retries", self.retries);
        m.counter_add("cluster_timeouts", self.timeouts);
        m.counter_add("cluster_dead_letters", self.dead_letters);
        m.counter_add("cluster_shed", self.shed);
        m.counter_add("cluster_alive_shard_ticks", self.alive_shard_ticks);
        m.counter_add("cluster_shard_ticks", self.shard_ticks);
        for (i, n) in self.routed.iter().enumerate() {
            m.counter_add(&format!("cluster_routed_shard_{i}"), *n as u64);
        }
        m
    }

    /// Cluster-wide prefix-cache hits.
    pub fn prefix_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.prefix.hits).sum()
    }

    /// Cluster-wide prefix-cache lookups.
    pub fn prefix_lookups(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.prefix.hits + s.engine.prefix.misses).sum()
    }

    /// Cluster-wide prefix-cache hit rate in `[0, 1]` (0 with the cache
    /// disabled). This is the number [`RouterKind::PrefixAffinity`]
    /// exists to raise: routing prefix-sharing prompts to one shard
    /// turns round-robin's cold misses into hits.
    pub fn prefix_hit_rate(&self) -> f64 {
        let lookups = self.prefix_lookups();
        if lookups == 0 {
            0.0
        } else {
            self.prefix_hits() as f64 / lookups as f64
        }
    }

    /// Cluster-wide prefix-cache churn: `(evictions, expiries, spills,
    /// fills)` summed over every shard's cache. All zero under the
    /// default no-churn configuration.
    pub fn prefix_churn(&self) -> (u64, u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0, 0), |acc, s| {
            let p = &s.engine.prefix;
            (acc.0 + p.evictions, acc.1 + p.expiries, acc.2 + p.spills, acc.3 + p.fills)
        })
    }

    /// Cluster-wide bytes spilled device → host by prefix caches.
    pub fn prefix_spill_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.prefix_spill_bytes).sum()
    }

    /// Cluster-wide bytes promoted host → device by prefix caches.
    pub fn prefix_fill_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.prefix_fill_bytes).sum()
    }

    /// Largest per-shard reserved-KV peak, in bytes.
    pub fn kv_reserved_peak_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.kv_reserved_peak_bytes).max().unwrap_or(0)
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster report: {} shards, {} router, {} ticks",
            self.shard_count, self.router, self.ticks
        )?;
        writeln!(
            f,
            "  submitted / completed  : {} / {} ({} admitted, {} rejected)",
            self.submitted(),
            self.completed(),
            self.admitted(),
            self.rejected()
        )?;
        let routed: Vec<String> =
            self.routed.iter().enumerate().map(|(i, n)| format!("shard {i}: {n}")).collect();
        writeln!(f, "  routed                 : {}", routed.join(", "))?;
        writeln!(
            f,
            "  migrations             : {} ({} B, {} link cycles)",
            self.migrations, self.migration_bytes, self.migration_cycles
        )?;
        if self.shard_downs + self.retries + self.timeouts + self.dead_letters + self.shed > 0 {
            writeln!(
                f,
                "  faults                 : {} crashes / {} recoveries, {} sessions lost, \
                 {} retries, {} timeouts, {} dead-lettered, {} shed",
                self.shard_downs,
                self.shard_ups,
                self.lost_sessions,
                self.retries,
                self.timeouts,
                self.dead_letters,
                self.shed
            )?;
            writeln!(f, "  availability           : {:.4}", self.availability())?;
        }
        if self.prefix_lookups() > 0 {
            writeln!(
                f,
                "  prefix cache           : {} hits / {} lookups ({:.0}% hit rate)",
                self.prefix_hits(),
                self.prefix_lookups(),
                100.0 * self.prefix_hit_rate()
            )?;
        }
        let (evictions, expiries, spills, fills) = self.prefix_churn();
        if evictions + expiries + spills + fills > 0 {
            writeln!(
                f,
                "  prefix churn           : {} evicted, {} expired, {} spilled ({} B), {} filled ({} B)",
                evictions,
                expiries,
                spills,
                self.prefix_spill_bytes(),
                fills,
                self.prefix_fill_bytes(),
            )?;
        }
        writeln!(f, "  latency (ticks)        : {:>8} {:>8} {:>8} {:>8}", "p50", "p95", "p99", "max")?;
        let mut row = |name: &str, summary: Option<LatencySummary>| match summary {
            Some(s) => writeln!(f, "    {:<21}: {:>8} {:>8} {:>8} {:>8}", name, s.p50, s.p95, s.p99, s.max),
            None => writeln!(f, "    {name:<21}: (no completed requests)"),
        };
        row("ttft", self.ttft())?;
        row("e2e", self.e2e())?;
        if let Some(recovery) = self.recovery() {
            row("recovery", Some(recovery))?;
        }
        if let Some(stages) = self.stages() {
            row("wf queueing", Some(stages.queueing))?;
            row("wf prefill", Some(stages.prefill))?;
            row("wf decode", Some(stages.decode))?;
            row("wf swap wait", Some(stages.swap_wait))?;
            row("wf migration wait", Some(stages.migration_wait))?;
        }
        for shard in &self.shards {
            writeln!(
                f,
                "  shard {:<2}               : {} submitted, {} completed, {} rejected, {} preemptions, peak {} B of {} B",
                shard.shard_id,
                shard.submitted,
                shard.completed,
                shard.rejected(),
                shard.preemptions,
                shard.kv_reserved_peak_bytes,
                shard.capacity_bytes
            )?;
        }
        Ok(())
    }
}

//! # veda-serving
//!
//! The serving layer over the [`veda::Engine`]: workload generation,
//! admission control, and preemptive scheduling under a virtual clock.
//!
//! The engine (PR 1) answers "how fast does a *batch* decode?"; this
//! crate answers "what happens under *traffic*?" — the regime where
//! VEDA's KV eviction actually pays, because device memory, not compute,
//! decides how many users fit. The stack is:
//!
//! * [`Workload`] — seeded, reproducible timed arrivals: open-loop
//!   Poisson, bursty on-off, a closed-loop N-users think-time model, and
//!   deterministic trace replay, over a configurable [`RequestMix`] of
//!   policies, budgets, prompt lengths and priorities.
//! * [`AdmissionController`] — accounts each admitted session's peak KV
//!   bytes against the HBM capacity
//!   ([`veda_mem::HbmConfig::capacity_bytes`]); requests that cannot fit
//!   now wait in a bounded queue, requests that can never fit are
//!   rejected.
//! * [`SchedulerPolicy`] ([`SchedKind`]) — FCFS, round-robin,
//!   shortest-remaining-budget and priority tiers decide which queued
//!   request is admitted next, and (for the preemptive policies) which
//!   running session is paused and swapped out over the PCIe-style
//!   [`veda_mem::HostLink`] to make room. Preemption never changes a
//!   request's generated tokens — only when they appear.
//! * [`Server`] — the virtual-clock loop binding the three to the
//!   engine's batched decode ticks, emitting per-request
//!   submitted/admitted/first-token/finished timestamps and a
//!   [`ServingReport`] with TTFT, queueing delay, end-to-end latency
//!   percentiles, time-per-output-token, queue depth over time, and
//!   preemption/rejection/swap accounting.
//!
//! ## Example
//!
//! ```
//! use veda::EngineBuilder;
//! use veda_serving::{
//!     AdmissionConfig, RequestMix, SchedKind, Server, ServerConfig, Workload,
//! };
//!
//! let engine = EngineBuilder::new().model(veda_model::ModelConfig::tiny()).build()?;
//! let workload = Workload::poisson(7, 0.5, 16, RequestMix::default());
//! let config = ServerConfig {
//!     sched: SchedKind::Priority,
//!     admission: AdmissionConfig { capacity_bytes: 64 << 10, max_queue_depth: 32 },
//!     ..ServerConfig::default()
//! };
//! let report = Server::new(engine, workload, config).run();
//! assert_eq!(report.submitted, 16);
//! assert_eq!(report.completed + report.rejected(), 16);
//! # Ok::<(), veda::BuildError>(())
//! ```

pub mod admission;
pub mod report;
pub mod scheduler;
pub mod server;
pub mod workload;

pub use admission::{AdmissionConfig, AdmissionController, RejectReason};
pub use report::{LatencySummary, RequestRecord, ServingReport};
pub use scheduler::{
    ParseSchedKindError, QueuedView, RunningView, SchedKind, SchedulerPolicy, MAX_PREEMPTIONS,
};
pub use server::{Server, ServerConfig};
pub use workload::{ArrivalKind, ParseArrivalKindError, RequestMix, ServingRequest, Workload};

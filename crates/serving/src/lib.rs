//! # veda-serving
//!
//! The serving layer over the [`veda::Engine`]: workload generation,
//! admission control, and preemptive scheduling under a virtual clock.
//!
//! The engine answers "how fast does a *batch* decode?"; this crate
//! answers "what happens under *traffic*?" — the regime where VEDA's KV
//! eviction actually pays, because device memory, not compute, decides
//! how many users fit. A request's serving lifecycle is two-phase end to
//! end: `submitted → queued → admitted → prefill ticks → first token →
//! decode ticks → finished`. Admission calls [`veda::Engine::submit`],
//! which only validates, reserves KV and enqueues the session in its
//! `Prefilling` phase; with a finite
//! [`veda::EngineBuilder::prefill_chunk`] the prompt is then consumed by
//! on-clock mixed prefill/decode ticks, so TTFT and queueing percentiles
//! measure real prefill work (under the default instant prefill the
//! prompt is consumed at the admission tick, as the pre-chunking stack
//! did). The stack is:
//!
//! * [`Workload`] — seeded, reproducible timed arrivals: open-loop
//!   Poisson, bursty on-off, a closed-loop N-users think-time model, and
//!   deterministic trace replay, over a configurable [`RequestMix`] of
//!   policies, budgets, prompt lengths and priorities.
//! * [`AdmissionController`] — accounts each admitted session's peak KV
//!   bytes (from [`veda::Request::peak_resident_tokens`], the same helper
//!   the engine's KV pre-allocation derives from) against the HBM
//!   capacity ([`veda_mem::HbmConfig::capacity_bytes`]); requests that
//!   cannot fit now wait in a bounded queue, requests that can never fit
//!   are rejected. With the engine's shared-prefix cache enabled
//!   ([`veda::EngineBuilder::prefix_cache`]), a known-prefix request that
//!   can never evict ([`veda::Request::never_evicts`]) reserves only its
//!   *unshared* peak — the shared span is resident once, in the cache
//!   entry, whose bytes are themselves charged against capacity — so
//!   shared-prefix traffic ([`RequestMix::shared_prefix_len`]) admits
//!   more concurrent sessions under the same capacity, with per-request
//!   token streams unchanged (see the [`admission`] module docs for the
//!   soundness argument).
//! * [`SchedulerPolicy`] ([`SchedKind`]) — FCFS, round-robin,
//!   shortest-remaining-budget and priority tiers decide which queued
//!   request is admitted next, and (for the preemptive policies) which
//!   running session is paused and swapped out over the PCIe-style
//!   [`veda_mem::HostLink`] to make room. Preemption never changes a
//!   request's generated tokens — only when they appear. Swap latency is
//!   serialized into the clock: a resumed session re-enters the batch
//!   only after its swap-in transfer's cycles have elapsed.
//! * [`Server`] — the virtual-clock loop binding the three to the
//!   engine's mixed prefill/decode ticks, emitting per-request
//!   submitted/admitted/first-token/finished timestamps and a
//!   [`ServingReport`] with TTFT, queueing delay, end-to-end latency
//!   percentiles, time-per-output-token, queue depth over time, and
//!   preemption/rejection/swap accounting (including ticks spent waiting
//!   on swap-ins).
//! * [`Cluster`] — the multi-engine deployment: N [`Shard`]s (each the
//!   full single-server stack above) behind one [`RouterPolicy`]
//!   ([`RouterKind`]: round-robin, least-loaded, prefix-affinity) on one
//!   virtual clock, with opt-in cross-shard session migration
//!   ([`MigrationConfig`]) costed through both shards' host links. One
//!   shared [`Workload`] samples requests centrally in arrival order, so
//!   routing can never perturb the RNG stream; a 1-shard round-robin
//!   cluster is bit-identical to [`Server`]. The run yields a
//!   [`ClusterReport`]: per-shard [`ServingReport`]s plus routing
//!   counts, migration traffic, per-shard KV-residency series, and
//!   global latency aggregates.
//! * **Fault plane** ([`faults`]) — a deterministic, virtual-clock-driven
//!   [`FaultPlan`] injects fail-stop shard crashes (with optional
//!   recovery and pre-crash drain), host-link bandwidth degradation
//!   windows, per-attempt TTFT/e2e deadline timeouts, bounded
//!   exponential-backoff retry ([`RetryPolicy`]) with a terminal
//!   dead-letter state, and watermark load-shedding
//!   ([`FaultConfig::shed_watermark`]). The router only sees healthy
//!   shards ([`ShardHealth`]); recovered shards rejoin rotation
//!   deterministically. An empty plan is byte-identical to a cluster
//!   with no fault plane at all (determinism invariant #9), and
//!   misconfiguration surfaces as a typed [`ServeError`] through
//!   [`Cluster::try_new`].
//! * **Observability** ([`veda_telemetry`], re-exported here) — an
//!   optional [`TraceSink`] ([`ServerConfig::trace`] /
//!   [`ClusterConfig::trace`]) receives every request's typed lifecycle
//!   [`TraceEvent`]s; [`chrome_trace_json`] renders them as a
//!   Perfetto-loadable Chrome trace, [`ServingReport::stages`] splits
//!   each request's latency into a [`StageWaterfall`] (stages sum
//!   exactly to e2e), and [`ServingReport::metrics`] folds a run into a
//!   deterministic [`MetricsRegistry`]. Observation-only: no sink means
//!   a byte-identical run, and the trace bytes themselves are
//!   thread-invariant (determinism invariant #8).
//!
//! ## Example
//!
//! ```
//! use veda::EngineBuilder;
//! use veda_serving::{
//!     AdmissionConfig, RequestMix, SchedKind, Server, ServerConfig, Workload,
//! };
//!
//! let engine = EngineBuilder::new().model(veda_model::ModelConfig::tiny()).build()?;
//! let workload = Workload::poisson(7, 0.5, 16, RequestMix::default());
//! let config = ServerConfig {
//!     sched: SchedKind::Priority,
//!     admission: AdmissionConfig { capacity_bytes: 64 << 10, max_queue_depth: 32 },
//!     ..ServerConfig::default()
//! };
//! let report = Server::new(engine, workload, config).run();
//! assert_eq!(report.submitted, 16);
//! assert_eq!(report.completed + report.rejected(), 16);
//! # Ok::<(), veda::BuildError>(())
//! ```

// Crate hygiene, enforced by veda-lint (rule crate-hygiene): no unsafe
// code under the determinism pins, no undocumented public surface.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cluster;
pub mod error;
pub mod faults;
pub mod report;
pub mod router;
pub mod scheduler;
pub mod server;
pub mod shard;
pub mod workload;

pub use admission::{AdmissionConfig, AdmissionController, RejectReason};
pub use cluster::{Cluster, ClusterConfig, ClusterReport, MigrationConfig};
pub use error::ServeError;
pub use faults::{FaultConfig, FaultPlan, LinkDegradation, RetryPolicy, ShardCrash, ShardHealth};
pub use report::{LatencySummary, RequestRecord, ServingReport, StageSummaries};
// The observability plane: re-exported so serving callers can wire a
// sink, export Chrome traces, and read waterfalls without naming the
// telemetry crate.
pub use router::{ParseRouterKindError, RouterKind, RouterPolicy, ShardView};
pub use scheduler::{
    ParseSchedKindError, QueuedView, RunningView, SchedKind, SchedulerPolicy, MAX_PREEMPTIONS,
};
pub use server::{Server, ServerConfig};
pub use shard::Shard;
pub use veda_telemetry::{
    chrome_trace_json, MetricsRegistry, RecordingSink, SinkHandle, StageWaterfall, TraceEvent,
    TraceEventKind, TraceSink,
};
pub use workload::{ArrivalKind, ParseArrivalKindError, RequestMix, ServingRequest, Workload};

//! One serving shard: a full [`Engine`] + [`AdmissionController`] +
//! queue/swap machinery, factored out of [`crate::Server`] so the same
//! code path drives both a standalone server and every member of a
//! [`crate::Cluster`].
//!
//! A shard owns everything below the arrival stream: screening, the wait
//! queue, scheduler-driven admission, preemption and swap-in
//! serialization over its private [`HostLink`], pressure response, and
//! per-request record keeping. What it does *not* own is the virtual
//! clock and the [`Workload`] — those belong to the layer above (a
//! [`crate::Server`] with one shard, or a [`crate::Cluster`] stepping N
//! shards on one clock), which drives the shard through the
//! crate-internal `accept` → `begin_tick` → `step_engine` sequence
//! each tick. Because the standalone server *is* a 1-shard cluster
//! running this exact code, the two are bit-identical by construction —
//! the determinism pin the cluster tests assert.
//!
//! ## Migrated-in sessions and foreign records
//!
//! Cross-shard migration hands a live session to another shard while its
//! [`RequestRecord`] stays on the shard that accepted the arrival (the
//! *home* shard — reports stay in arrival order, attributable to the
//! routing decision). The hosting shard tracks such sessions with a
//! crate-internal `RecordRef::Foreign` reference and queues record updates (tokens,
//! completion, preemptions) into an outbox instead of writing them
//! directly; the cluster drains every outbox after stepping all shards,
//! in shard order, so record state is deterministic and never torn
//! mid-tick. A standalone server never produces foreign entries.

use std::collections::VecDeque;

use veda::{Engine, PrefixPin, PrefixTransferKind, Request, Session, TokenEvent};
use veda_eviction::BudgetController;
use veda_mem::{HostLink, HostLinkConfig, SwapDirection, TransferKind};
use veda_telemetry::{SinkHandle, TraceEvent, TraceEventKind, Tracer};

use crate::admission::{AdmissionConfig, AdmissionController, RejectReason};
use crate::faults::LostWork;
use crate::report::{RequestRecord, ServingReport};
use crate::scheduler::{QueuedView, RunningView, SchedKind, SchedulerPolicy};
use crate::workload::{ArrivalKind, ServingRequest, Workload};

/// Which [`RequestRecord`] an in-flight session reports into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordRef {
    /// Index into this shard's own records (the common case).
    Local(usize),
    /// A migrated-in session: the record lives on its home shard.
    Foreign {
        /// The home shard's index within the cluster.
        shard: usize,
        /// Index into the home shard's records.
        index: usize,
    },
}

/// Why an admitted session spent ticks off the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitKind {
    /// Preempted and swapped out to the host.
    Swap,
    /// In flight between shards (cross-shard migration).
    Migration {
        /// The source shard it was extracted from.
        from: usize,
    },
}

/// A deferred update to a foreign (home-shard) record.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RecordDelta {
    /// One generated token at tick `now`; `finished` marks the last.
    Token { now: u64, finished: bool },
    /// The session was preempted on its hosting shard.
    Preempted,
    /// The session finished an off-device wait spanning `[from, to)`.
    Wait { kind: WaitKind, from: u64, to: u64 },
    /// The request was (re-)admitted on its hosting shard at tick `now`
    /// — a retried request can land anywhere, so admission itself can
    /// now be a cross-shard fact. The home shard stamps the record and,
    /// if the request was recovering from a loss, folds the recovery
    /// wait and emits the `Recovered` event.
    Admitted { now: u64 },
}

/// Folds one completed off-device wait interval `[from, to)` into the
/// record's stage accounting. The interval is classified against the
/// first-token tick for the waterfall split: a wait is "before first
/// token" iff the first token had not yet been generated when the wait
/// ended (waits never straddle the first token — a session generating at
/// tick T cannot have been paused at T, so every interval lies entirely
/// on one side).
pub(crate) fn apply_wait(record: &mut RequestRecord, kind: WaitKind, from: u64, to: u64) {
    let ticks = to.saturating_sub(from);
    match kind {
        WaitKind::Swap => record.swap_wait_ticks += ticks,
        WaitKind::Migration { .. } => record.migration_wait_ticks += ticks,
    }
    if record.first_token.is_none_or(|f| f >= to) {
        record.wait_before_first_ticks += ticks;
    }
}

/// An outbox item: apply `delta` to record `index` on shard `shard`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ForeignUpdate {
    pub(crate) shard: usize,
    pub(crate) index: usize,
    pub(crate) delta: RecordDelta,
}

/// A request waiting for admission. Fresh arrivals queue on their home
/// shard (a `Local` record); retried requests can land anywhere, so a
/// queue entry can reference a foreign record.
#[derive(Debug)]
pub(crate) struct QueuedEntry {
    pub(crate) record: RecordRef,
    /// Global arrival index (mirrored so foreign entries need no
    /// cross-shard lookup).
    pub(crate) arrival: usize,
    /// Tick this *attempt* entered the serving plane: the original
    /// submission for a first attempt, the requeue tick for a retry.
    /// Deadlines and scheduler ordering run against this epoch; the
    /// record keeps the original submission tick for latency metrics.
    pub(crate) submitted: u64,
    pub(crate) request: Request,
    pub(crate) priority: u8,
    /// Reserved peak KV bytes (shared-prefix discounted when sound).
    pub(crate) est_bytes: u64,
    /// Undiscounted peak KV bytes — what a migration target must
    /// reserve, since extraction privatizes any shared span.
    pub(crate) full_bytes: u64,
    /// The admission pin on the prefix entry whose match discounted
    /// `est_bytes` (None when the discount was unsound or nothing
    /// matched). Held while the entry waits so churn cannot shrink the
    /// match under the discounted reservation; released after the
    /// submit takes its own seed pin, and on every queue-exit path.
    pub(crate) prefix_pin: Option<PrefixPin>,
}

/// An admitted session — in the `running` set it is prefilling/decoding,
/// in the `paused` set its KV state lives on the host until resumed, in
/// the `swapping` set its KV state is in flight back over the host link.
#[derive(Debug)]
pub(crate) struct SessionEntry {
    pub(crate) record: RecordRef,
    /// Global arrival index (mirrored from the record so foreign entries
    /// need no cross-shard lookup in scheduler views).
    pub(crate) arrival: usize,
    /// This attempt's epoch tick (see [`QueuedEntry::submitted`]).
    pub(crate) submitted: u64,
    /// The original request, kept so a crash or deadline teardown can
    /// re-queue the session from its prompt.
    pub(crate) request: Request,
    pub(crate) session: Session,
    pub(crate) priority: u8,
    pub(crate) est_bytes: u64,
    pub(crate) full_bytes: u64,
    /// Preemption count (mirrors the record for the same reason).
    pub(crate) preemptions: u32,
    /// Current resident-token cap (tracked for budget shrinking).
    pub(crate) cap: usize,
    /// When the session is off the device (paused or swapping), the wait
    /// kind and the tick the wait began; folded into the record's stage
    /// accounting when the session rejoins the batch.
    pub(crate) wait_since: Option<(WaitKind, u64)>,
}

/// A session whose KV state is moving in over the host link (swap-in or
/// migration); it rejoins the batch once the shard's cycle clock reaches
/// `ready_at`.
#[derive(Debug)]
pub(crate) struct SwapInEntry {
    pub(crate) entry: SessionEntry,
    /// Engine-cycle timestamp at which the transfer completes.
    pub(crate) ready_at: u64,
}

/// One serving shard (see the [module docs](self)). The driving layer
/// ([`crate::Server`] or [`crate::Cluster`]) calls, per virtual tick:
/// the crate-internal `accept` for each arrival routed here, then
/// `begin_tick` (swap-in completion/start + admission), then
/// `step_engine` (one batched engine tick + accounting).
pub struct Shard {
    pub(crate) id: usize,
    pub(crate) engine: Engine,
    pub(crate) admission: AdmissionController,
    pub(crate) policy: Box<dyn SchedulerPolicy>,
    pub(crate) link: HostLink,
    pub(crate) shrink: Option<BudgetController>,
    pub(crate) kv_bytes_per_token: u64,
    /// Engine cycles elapsed so far (sum of executed tick batch cycles)
    /// — the clock swap-in completions are timed against.
    pub(crate) elapsed_cycles: u64,
    pub(crate) queue: VecDeque<QueuedEntry>,
    pub(crate) running: Vec<SessionEntry>,
    pub(crate) paused: Vec<SessionEntry>,
    pub(crate) swapping: Vec<SwapInEntry>,
    pub(crate) records: Vec<RequestRecord>,
    pub(crate) queue_depth: Vec<usize>,
    /// Deferred updates to foreign (home-shard) records; drained by the
    /// cluster after every shard has stepped.
    pub(crate) outbox: Vec<ForeignUpdate>,
    pub(crate) admitted: usize,
    pub(crate) rejected_never_fits: usize,
    pub(crate) rejected_queue_full: usize,
    pub(crate) rejected_invalid: usize,
    pub(crate) preemptions: u64,
    pub(crate) resumes: u64,
    pub(crate) swap_wait_ticks: u64,
    pub(crate) budget_shrinks: u64,
    pub(crate) decode_ticks: u64,
    pub(crate) kv_resident_peak: u64,
    pub(crate) kv_reserved_peak: u64,
    /// Observation-only trace sink shared with the engine's tracer
    /// (`None` = telemetry off, zero cost, byte-identical behavior).
    pub(crate) trace: Option<SinkHandle>,
}

impl Shard {
    /// Creates a shard `id` over an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the engine already has in-flight sessions.
    pub fn new(
        id: usize,
        engine: Engine,
        admission: AdmissionConfig,
        host_link: HostLinkConfig,
        sched: SchedKind,
        shrink: Option<BudgetController>,
    ) -> Self {
        assert!(
            engine.active_sessions() == 0 && engine.paused_sessions() == 0,
            "shard requires an idle engine"
        );
        let kv_bytes_per_token = engine.kv_bytes_per_token();
        Self {
            id,
            engine,
            admission: AdmissionController::new(admission),
            policy: sched.build(),
            link: HostLink::new(host_link),
            shrink,
            kv_bytes_per_token,
            elapsed_cycles: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            paused: Vec::new(),
            swapping: Vec::new(),
            records: Vec::new(),
            queue_depth: Vec::new(),
            outbox: Vec::new(),
            admitted: 0,
            rejected_never_fits: 0,
            rejected_queue_full: 0,
            rejected_invalid: 0,
            preemptions: 0,
            resumes: 0,
            swap_wait_ticks: 0,
            budget_shrinks: 0,
            decode_ticks: 0,
            kv_resident_peak: 0,
            kv_reserved_peak: 0,
            trace: None,
        }
    }

    /// Installs an observation-only trace sink on this shard *and* its
    /// engine. Shard-level events (submit/queue/admit/reject, preemption,
    /// swap and migration waits) and engine-level events (prefill chunks,
    /// tokens, finishes) then flow into one stream, stamped with this
    /// shard's id, the virtual tick, and the cycle clock.
    pub fn install_trace(&mut self, sink: SinkHandle) {
        self.engine.install_tracer(Tracer::new(sink.clone(), self.id as u32));
        self.trace = Some(sink);
    }

    /// Emit one shard-level event (no-op without a sink). The cluster
    /// also calls this to stamp fault-plane events (retries, dead
    /// letters, sheds) onto a request's home shard.
    pub(crate) fn emit(&self, now: u64, request: u64, kind: TraceEventKind) {
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                tick: now,
                cycles: self.elapsed_cycles,
                shard: self.id as u32,
                request,
                kind,
            });
        }
    }

    /// This shard's index within its cluster (`0` for a standalone
    /// server).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Requests routed to this shard so far (records kept here).
    pub fn submitted(&self) -> usize {
        self.records.len()
    }

    /// Requests of this shard's records that finished (including ones
    /// that finished on another shard after migrating away).
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.finished.is_some()).count()
    }

    /// Requests rejected by this shard so far.
    pub fn rejected(&self) -> usize {
        self.rejected_never_fits + self.rejected_queue_full + self.rejected_invalid
    }

    /// Sessions currently queued, prefilling/decoding, preempted, or
    /// swapping in on this shard — including migrated-in sessions whose
    /// records live elsewhere.
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.running.len() + self.paused.len() + self.swapping.len()
    }

    /// Requests currently waiting in this shard's admission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// KV bytes currently reserved by this shard's admission control.
    pub fn reserved_bytes(&self) -> u64 {
        self.admission.reserved_bytes()
    }

    /// This shard's configured device KV capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.admission.config().capacity_bytes
    }

    /// Snapshot for routing: load, health, plus how much of `prompt`
    /// this shard's prefix cache already holds.
    pub(crate) fn view(
        &self,
        prompt: &[usize],
        health: crate::faults::ShardHealth,
    ) -> crate::router::ShardView {
        crate::router::ShardView {
            shard: self.id,
            reserved_bytes: self.admission.reserved_bytes(),
            capacity_bytes: self.admission.config().capacity_bytes,
            queue_depth: self.queue.len(),
            running: self.running.len(),
            prefix_match_tokens: self.engine.prefix_match_len(prompt),
            health,
        }
    }

    /// Checks a request is one the engine will accept (trace workloads
    /// may carry arbitrary requests; generated mixes always pass).
    fn validate(&self, request: &Request) -> Result<(), RejectReason> {
        let vocab = self.engine.model_config().vocab_size;
        let ok = !request.prompt.is_empty()
            && request.max_new_tokens > 0
            && request.prompt.iter().all(|&t| t < vocab)
            && request.budget.validate().is_ok();
        if ok {
            Ok(())
        } else {
            Err(RejectReason::Invalid)
        }
    }

    /// HBM bytes the engine's prefix cache itself keeps resident (each
    /// entry counted once). Subtracted from admission headroom so cached
    /// prefixes are never free capacity (see `veda_serving::admission`).
    pub(crate) fn prefix_overhead(&self) -> u64 {
        self.engine.prefix_cache_bytes()
    }

    /// Screens one arrival into the queue or a rejection record.
    /// `global_arrival` is the cluster-wide arrival index (equal to the
    /// local record index for a standalone server); `workload` is
    /// notified when a rejection disposes of a closed-loop user's
    /// request. A prompt with a known shared prefix reserves only its
    /// *unshared* peak bytes — the shared span stays resident in the
    /// engine's prefix cache — provided the discount is sound for this
    /// request: the accept takes a [`veda::Engine::pin_prefix`] pin on
    /// the matched entry (held until the submit lands, making the entry
    /// immune to LRU eviction, host spill and TTL expiry — the match
    /// cannot shrink), only requests that can never evict
    /// ([`veda::Request::never_evicts`]) qualify (an eviction inside
    /// the shared span would privatize it and push the session past a
    /// discounted reservation), and budget shrinking must be off —
    /// [`veda::Engine::tighten_budget`] can force even an
    /// unbounded-budget session to evict, retroactively breaking the
    /// never-evicts promise.
    pub(crate) fn accept(
        &mut self,
        arrival: ServingRequest,
        global_arrival: usize,
        now: u64,
        workload: &mut Workload,
    ) {
        let ServingRequest { request, priority } = arrival;
        let index = self.records.len();
        self.emit(
            now,
            global_arrival as u64,
            TraceEventKind::Submitted {
                prompt_tokens: request.prompt.len() as u32,
                max_new_tokens: request.max_new_tokens as u32,
                priority: priority as u32,
            },
        );
        let discount_sound = request.never_evicts() && self.shrink.is_none();
        let prefix_pin = if discount_sound { self.engine.pin_prefix(&request.prompt) } else { None };
        let shared_tokens = prefix_pin.as_ref().map_or(0, PrefixPin::matched);
        let est_bytes =
            AdmissionController::estimate_unshared_bytes(&request, shared_tokens, self.kv_bytes_per_token);
        let full_bytes = AdmissionController::estimate_bytes(&request, self.kv_bytes_per_token);
        let mut record = RequestRecord {
            arrival: global_arrival,
            session: None,
            priority,
            submitted: now,
            admitted: None,
            first_token: None,
            finished: None,
            generated_tokens: 0,
            preemptions: 0,
            swap_wait_ticks: 0,
            migration_wait_ticks: 0,
            wait_before_first_ticks: 0,
            rejected: None,
            retries: 0,
            timeouts: 0,
            shed: None,
            dead_letter: None,
            lost_at: None,
            recovery_wait_ticks: 0,
        };
        let screened =
            self.validate(&request).and_then(|()| self.admission.screen(est_bytes, self.queue.len()));
        match screened {
            Ok(()) => {
                self.emit(now, global_arrival as u64, TraceEventKind::Queued);
                self.queue.push_back(QueuedEntry {
                    record: RecordRef::Local(index),
                    arrival: global_arrival,
                    submitted: now,
                    request,
                    priority,
                    est_bytes,
                    full_bytes,
                    prefix_pin,
                });
            }
            Err(reason) => {
                if let Some(pin) = prefix_pin {
                    self.engine.unpin_prefix(pin);
                }
                self.emit(now, global_arrival as u64, TraceEventKind::Rejected { reason: reason.as_str() });
                record.rejected = Some(reason);
                match reason {
                    RejectReason::NeverFits => self.rejected_never_fits += 1,
                    RejectReason::QueueFull => self.rejected_queue_full += 1,
                    RejectReason::Invalid => self.rejected_invalid += 1,
                }
                // A rejection disposes of the request: without this, a
                // closed-loop user whose request was rejected would never
                // submit again and the run could not drain.
                workload.notify_completion(now);
            }
        }
        self.records.push(record);
    }

    /// The pre-step half of one tick: swap-in completions, swap-in
    /// starts, then scheduler-driven admission (see [`crate::Server`]'s
    /// module docs for the ordering rationale).
    pub(crate) fn begin_tick(&mut self, now: u64) {
        // Refresh the tick the engine's tracer stamps onto its events
        // (prefill chunks, tokens, finishes) before any engine call.
        self.engine.set_trace_now(now);
        // TTL expiry runs first so this tick's swap-ins and admissions
        // see post-expiry cache contents (and post-expiry overhead).
        self.engine.advance_prefix_clock(now);
        self.complete_swap_ins(now);
        self.start_swap_ins();
        self.admit_from_queue(now);
    }

    /// The step half of one tick: one batched engine tick (if any
    /// session is active), event observation, pressure response, and
    /// cycle/peak/queue-depth accounting.
    pub(crate) fn step_engine(&mut self, now: u64, workload: &mut Workload) {
        let mut stepped_cycles = 0;
        if self.engine.active_sessions() > 0 {
            let tick = self.engine.step();
            self.decode_ticks += 1;
            stepped_cycles = tick.batch_cycles;
            // Device-resident KV = session-owned bytes plus the prefix
            // cache's entries (each counted once).
            self.kv_resident_peak =
                self.kv_resident_peak.max(tick.kv_bytes_resident + self.engine.prefix_cache_bytes());
            for event in &tick.events {
                self.observe(event, now, workload);
            }
            // A chunked-prefill harvest may have inserted a new entry
            // under byte pressure, evicting/spilling cold ones; bill the
            // spill traffic now (harvests never generate fills, so there
            // is no latency to serialize here).
            self.charge_prefix_traffic();
            self.apply_pressure();
        }
        self.elapsed_cycles += stepped_cycles;
        self.swap_wait_ticks += self.swapping.len() as u64;
        if stepped_cycles == 0 && !self.swapping.is_empty() {
            // Nothing decoded this tick but swap-ins are in flight:
            // fast-forward the cycle clock to the earliest completion so
            // the run cannot stall on an otherwise idle engine.
            let earliest = self.swapping.iter().map(|s| s.ready_at).min().expect("non-empty");
            self.elapsed_cycles = self.elapsed_cycles.max(earliest);
        }
        self.kv_reserved_peak = self.kv_reserved_peak.max(self.admission.reserved_bytes());
        self.queue_depth.push(self.queue.len());
    }

    /// Takes the queued foreign-record updates (cluster use).
    pub(crate) fn take_outbox(&mut self) -> Vec<ForeignUpdate> {
        std::mem::take(&mut self.outbox)
    }

    /// Applies one deferred update from another shard's outbox to a
    /// record homed here.
    pub(crate) fn apply_record_delta(&mut self, index: usize, delta: RecordDelta) {
        match delta {
            RecordDelta::Token { now, finished } => {
                let record = &mut self.records[index];
                record.generated_tokens += 1;
                if record.first_token.is_none() {
                    record.first_token = Some(now);
                }
                if finished {
                    record.finished = Some(now);
                }
            }
            RecordDelta::Preempted => self.records[index].preemptions += 1,
            RecordDelta::Wait { kind, from, to } => apply_wait(&mut self.records[index], kind, from, to),
            RecordDelta::Admitted { now } => self.note_admitted(index, now),
        }
    }

    /// Stamps a (re-)admission onto the record homed here: sets the
    /// admitted tick and, if the request was recovering from a loss,
    /// folds the recovery wait and emits the `Recovered` event. Called
    /// locally from [`Shard::admit`] and via [`RecordDelta::Admitted`]
    /// when a retried request was admitted on another shard.
    fn note_admitted(&mut self, index: usize, now: u64) {
        let (arrival, recovered) = {
            let record = &mut self.records[index];
            record.admitted = Some(now);
            let recovered = record.lost_at.take().map(|lost| {
                let ticks = now.saturating_sub(lost);
                record.recovery_wait_ticks += ticks;
                ticks
            });
            (record.arrival, recovered)
        };
        if let Some(recovery_ticks) = recovered {
            self.emit(now, arrival as u64, TraceEventKind::Recovered { recovery_ticks });
        }
    }

    /// Resolves a record reference to its `(home shard, record index)`.
    fn home(&self, record: RecordRef) -> (usize, usize) {
        match record {
            RecordRef::Local(index) => (self.id, index),
            RecordRef::Foreign { shard, index } => (shard, index),
        }
    }

    /// Fail-stop: every queued request is orphaned and every admitted
    /// session is discarded — KV freed, no finished report, partial
    /// token streams lost — and the shard's admission state resets with
    /// them. Returns the displaced work (queue first, then running,
    /// paused and swapping sessions, all in entry order) for the cluster
    /// to retry or dead-letter. The engine's prefix cache, link traffic
    /// counters and elapsed cycles survive the crash: cache entries own
    /// their bytes independently of sessions, which is exactly what
    /// makes re-prefilling recovered requests cheap.
    pub(crate) fn fail(&mut self) -> Vec<LostWork> {
        let mut lost = Vec::new();
        for mut entry in std::mem::take(&mut self.queue) {
            if let Some(pin) = entry.prefix_pin.take() {
                self.engine.unpin_prefix(pin);
            }
            lost.push(LostWork {
                home: self.home(entry.record),
                arrival: entry.arrival,
                priority: entry.priority,
                request: entry.request,
            });
        }
        let running: Vec<SessionEntry> = std::mem::take(&mut self.running);
        let paused: Vec<SessionEntry> = std::mem::take(&mut self.paused);
        let swapping: Vec<SwapInEntry> = std::mem::take(&mut self.swapping);
        for entry in running.into_iter().chain(paused).chain(swapping.into_iter().map(|s| s.entry)) {
            self.engine.discard(entry.session).expect("in-flight entry tracks the engine");
            lost.push(LostWork {
                home: self.home(entry.record),
                arrival: entry.arrival,
                priority: entry.priority,
                request: entry.request,
            });
        }
        self.admission.reset();
        lost
    }

    /// Queues a retried request on this shard (the fault-plane analogue
    /// of [`Shard::accept`]: the record already exists on its home
    /// shard, so only screening and queueing happen here). On screening
    /// failure the work is handed back for another retry or a dead
    /// letter.
    pub(crate) fn requeue(&mut self, work: LostWork, now: u64) -> Result<(), (RejectReason, LostWork)> {
        let record = if work.home.0 == self.id {
            RecordRef::Local(work.home.1)
        } else {
            RecordRef::Foreign { shard: work.home.0, index: work.home.1 }
        };
        let discount_sound = work.request.never_evicts() && self.shrink.is_none();
        let prefix_pin = if discount_sound { self.engine.pin_prefix(&work.request.prompt) } else { None };
        let shared_tokens = prefix_pin.as_ref().map_or(0, PrefixPin::matched);
        let est_bytes = AdmissionController::estimate_unshared_bytes(
            &work.request,
            shared_tokens,
            self.kv_bytes_per_token,
        );
        let full_bytes = AdmissionController::estimate_bytes(&work.request, self.kv_bytes_per_token);
        match self.admission.screen(est_bytes, self.queue.len()) {
            Ok(()) => {
                self.emit(now, work.arrival as u64, TraceEventKind::Queued);
                self.queue.push_back(QueuedEntry {
                    record,
                    arrival: work.arrival,
                    submitted: now,
                    request: work.request,
                    priority: work.priority,
                    est_bytes,
                    full_bytes,
                    prefix_pin,
                });
                Ok(())
            }
            Err(reason) => {
                if let Some(pin) = prefix_pin {
                    self.engine.unpin_prefix(pin);
                }
                Err((reason, work))
            }
        }
    }

    /// Creates the record (and emits `Submitted`) for an arrival that
    /// could not be routed anywhere — every shard down — and therefore
    /// parks in the cluster's retry queue instead of a shard queue. This
    /// shard becomes the request's home purely for record keeping.
    pub(crate) fn register_deferred(
        &mut self,
        request: &Request,
        priority: u8,
        global_arrival: usize,
        now: u64,
    ) -> usize {
        let index = self.records.len();
        self.emit(
            now,
            global_arrival as u64,
            TraceEventKind::Submitted {
                prompt_tokens: request.prompt.len() as u32,
                max_new_tokens: request.max_new_tokens as u32,
                priority: priority as u32,
            },
        );
        self.records.push(RequestRecord {
            arrival: global_arrival,
            session: None,
            priority,
            submitted: now,
            admitted: None,
            first_token: None,
            finished: None,
            generated_tokens: 0,
            preemptions: 0,
            swap_wait_ticks: 0,
            migration_wait_ticks: 0,
            wait_before_first_ticks: 0,
            rejected: None,
            retries: 0,
            timeouts: 0,
            shed: None,
            dead_letter: None,
            lost_at: None,
            recovery_wait_ticks: 0,
        });
        index
    }

    /// Tears down one in-flight attempt that missed its `deadline`
    /// (searched across the queue and the running/paused/swapping sets),
    /// emitting `TimedOut` and returning the work for a retry or a dead
    /// letter. Reservations are released where they are actually held:
    /// running and swapping entries hold one, queued and paused entries
    /// do not.
    pub(crate) fn remove_timed_out(
        &mut self,
        arrival: usize,
        deadline: &'static str,
        now: u64,
    ) -> Option<LostWork> {
        let work = if let Some(mut e) =
            self.queue.iter().position(|e| e.arrival == arrival).and_then(|pos| self.queue.remove(pos))
        {
            if let Some(pin) = e.prefix_pin.take() {
                self.engine.unpin_prefix(pin);
            }
            LostWork {
                home: self.home(e.record),
                arrival: e.arrival,
                priority: e.priority,
                request: e.request,
            }
        } else if let Some(pos) = self.running.iter().position(|e| e.arrival == arrival) {
            let e = self.running.remove(pos);
            self.engine.discard(e.session).expect("running entry tracks the engine");
            self.admission.release(e.est_bytes);
            LostWork {
                home: self.home(e.record),
                arrival: e.arrival,
                priority: e.priority,
                request: e.request,
            }
        } else if let Some(pos) = self.paused.iter().position(|e| e.arrival == arrival) {
            let e = self.paused.remove(pos);
            self.engine.discard(e.session).expect("paused entry tracks the engine");
            LostWork {
                home: self.home(e.record),
                arrival: e.arrival,
                priority: e.priority,
                request: e.request,
            }
        } else if let Some(pos) = self.swapping.iter().position(|e| e.entry.arrival == arrival) {
            let e = self.swapping.remove(pos).entry;
            self.engine.discard(e.session).expect("swapping entry tracks the engine");
            self.admission.release(e.est_bytes);
            LostWork {
                home: self.home(e.record),
                arrival: e.arrival,
                priority: e.priority,
                request: e.request,
            }
        } else {
            return None;
        };
        self.emit(now, work.arrival as u64, TraceEventKind::TimedOut { deadline });
        Some(work)
    }

    /// Removes one queued entry by arrival id (the load-shedder's
    /// removal path; queued entries hold no reservation, but a
    /// discounted one holds a prefix pin, released here).
    pub(crate) fn remove_queued(&mut self, arrival: usize) -> Option<QueuedEntry> {
        let pos = self.queue.iter().position(|e| e.arrival == arrival)?;
        let mut entry = self.queue.remove(pos)?;
        if let Some(pin) = entry.prefix_pin.take() {
            self.engine.unpin_prefix(pin);
        }
        Some(entry)
    }

    /// Re-admits swapped-in sessions whose host-link transfer has
    /// completed (its cycles have elapsed on the shard's cycle clock),
    /// oldest swap first. The session's bytes were re-reserved and the
    /// transfer charged when the swap *started*
    /// ([`Shard::start_swap_ins`]) or when the migration landed; this is
    /// where the latency finally releases the session into the batch.
    fn complete_swap_ins(&mut self, now: u64) {
        let mut i = 0;
        while i < self.swapping.len() {
            if self.swapping[i].ready_at <= self.elapsed_cycles {
                let SwapInEntry { mut entry, .. } = self.swapping.remove(i);
                self.engine.resume(entry.session).expect("swapping entry tracks the engine");
                if let Some((kind, from)) = entry.wait_since.take() {
                    // The off-device wait ends here: fold `[from, now)`
                    // into the record's stage accounting (directly for a
                    // local record, via the outbox for a foreign one) and
                    // emit the matching rejoin event.
                    match entry.record {
                        RecordRef::Local(r) => apply_wait(&mut self.records[r], kind, from, now),
                        RecordRef::Foreign { shard, index } => self.outbox.push(ForeignUpdate {
                            shard,
                            index,
                            delta: RecordDelta::Wait { kind, from, to: now },
                        }),
                    }
                    let wait_ticks = now.saturating_sub(from);
                    let rejoin = match kind {
                        WaitKind::Swap => TraceEventKind::SwapInComplete { wait_ticks },
                        WaitKind::Migration { from: src } => {
                            TraceEventKind::MigrationLand { from_shard: src as u32, wait_ticks }
                        }
                    };
                    self.emit(now, entry.arrival as u64, rejoin);
                }
                self.running.push(entry);
            } else {
                i += 1;
            }
        }
    }

    /// Starts swapping preempted sessions back in while their
    /// reservations fit, oldest preemption first. The reservation is
    /// taken and the host-link transfer charged immediately (the space
    /// must be held for the DMA), but the session only rejoins the batch
    /// once the transfer's cycles have elapsed — swap latency is
    /// serialized into the clock, not instantaneous.
    fn start_swap_ins(&mut self) {
        let mut i = 0;
        while i < self.paused.len() {
            if self.admission.would_fit(self.paused[i].est_bytes.saturating_add(self.prefix_overhead())) {
                let entry = self.paused.remove(i);
                let bytes =
                    self.engine.session_kv_bytes(entry.session).expect("paused entry tracks the engine");
                let cycles = self.link.transfer_tagged(bytes, SwapDirection::In, TransferKind::Swap);
                self.admission.reserve(entry.est_bytes);
                self.resumes += 1;
                self.swapping.push(SwapInEntry { entry, ready_at: self.elapsed_cycles + cycles });
            } else {
                i += 1;
            }
        }
    }

    fn queued_view(entry: &QueuedEntry) -> QueuedView {
        QueuedView {
            arrival: entry.arrival,
            // Scheduler ordering runs on the attempt epoch: a retried
            // request competes from its requeue tick, not its original
            // submission (it already consumed its place in line once).
            submitted: entry.submitted,
            priority: entry.priority,
            total_tokens: entry.request.max_new_tokens,
            est_bytes: entry.est_bytes,
        }
    }

    fn running_views(&self) -> Vec<RunningView> {
        self.running
            .iter()
            .map(|entry| RunningView {
                arrival: entry.arrival,
                priority: entry.priority,
                remaining_tokens: self
                    .engine
                    .session_remaining_tokens(entry.session)
                    .expect("running entry tracks the engine"),
                est_bytes: entry.est_bytes,
                preemptions: entry.preemptions,
            })
            .collect()
    }

    /// Admits scheduler-ordered candidates until one does not fit (even
    /// after any preemption the policy offers).
    fn admit_from_queue(&mut self, now: u64) {
        while !self.queue.is_empty() {
            let views: Vec<QueuedView> = self.queue.iter().map(Self::queued_view).collect();
            let Some(pick) = self.policy.next_candidate(&views) else { break };
            let incoming = views[pick];
            // Admission must fit the reservation *and* the prefix cache's
            // own resident bytes inside capacity — including the bytes a
            // host-tier fill would promote back into device memory for
            // this prompt (otherwise a discounted accept could be
            // bankrupted by its own fill traffic).
            let fill_bytes =
                self.queue.get(pick).map_or(0, |e| self.engine.prefix_fill_bytes(&e.request.prompt));
            let needed = incoming.est_bytes.saturating_add(self.prefix_overhead()).saturating_add(fill_bytes);
            while !self.admission.would_fit(needed) {
                let victims = self.running_views();
                let Some(victim) = self.policy.preemption_victim(&incoming, &victims) else { break };
                self.preempt(victim, now);
            }
            if !self.admission.would_fit(needed) {
                break;
            }
            let entry = self.queue.remove(pick).expect("pick indexes the queue");
            self.policy.on_admitted(&incoming);
            self.admit(entry, now);
        }
    }

    /// Pauses the running session at `index` and swaps its KV state out.
    fn preempt(&mut self, index: usize, now: u64) {
        let mut entry = self.running.remove(index);
        let bytes = self.engine.pause(entry.session).expect("running entry tracks the engine");
        self.link.transfer_tagged(bytes, SwapDirection::Out, TransferKind::Swap);
        self.admission.release(entry.est_bytes);
        entry.preemptions += 1;
        entry.wait_since = Some((WaitKind::Swap, now));
        match entry.record {
            RecordRef::Local(r) => self.records[r].preemptions += 1,
            RecordRef::Foreign { shard, index } => {
                self.outbox.push(ForeignUpdate { shard, index, delta: RecordDelta::Preempted });
            }
        }
        self.preemptions += 1;
        self.emit(now, entry.arrival as u64, TraceEventKind::Preempted);
        self.emit(now, entry.arrival as u64, TraceEventKind::SwapOutStart { bytes });
        self.paused.push(entry);
    }

    /// Submits a queued request into the engine. The engine only
    /// validates, reserves KV and enqueues the session in its
    /// `Prefilling` phase; with a finite
    /// [`veda::EngineBuilder::prefill_chunk`] the prompt is consumed by
    /// subsequent on-clock ticks (instant prefill consumes it here,
    /// synchronously, as the pre-chunking stack did).
    fn admit(&mut self, mut entry: QueuedEntry, now: u64) {
        let request = entry.request.clone();
        let prompt_len = request.prompt.len();
        let peak_tokens = AdmissionController::peak_resident_tokens(&request);
        let cap = request.budget.resolve(prompt_len).min(peak_tokens);
        let arrival = entry.arrival;
        // The engine stamps this request's global arrival index onto its
        // trace events, so the request keeps one id across shards.
        self.emit(now, arrival as u64, TraceEventKind::Admitted { est_bytes: entry.est_bytes });
        self.engine.set_next_trace_id(arrival as u64);
        let session = self.engine.submit(entry.request).expect("accept() validated the request");
        self.admission.reserve(entry.est_bytes);
        // The submit took its own seed pin on the matched entry (held
        // until the session retires), so the admission pin can hand off
        // now: the submit-time match is at least the pinned match, so
        // the session's privately owned bytes fit the discounted
        // reservation.
        if let Some(pin) = entry.prefix_pin.take() {
            self.engine.unpin_prefix(pin);
        }
        // A host-tier hit promoted its entry during submit; the fill
        // bytes must cross the host link before the session's shared
        // span is device-resident, so the session waits out the
        // transfer like a swap-in instead of decoding instantly.
        let fill_cycles = self.charge_prefix_traffic();
        self.admitted += 1;
        match entry.record {
            RecordRef::Local(index) => {
                self.records[index].session = Some(session);
                self.note_admitted(index, now);
            }
            // A retried request admitted away from home: the home shard
            // stamps the admission (and any recovery) via the outbox.
            RecordRef::Foreign { shard, index } => {
                self.outbox.push(ForeignUpdate { shard, index, delta: RecordDelta::Admitted { now } });
            }
        }
        debug_assert!(self.engine.is_active(session), "validated requests have max_new_tokens >= 1");
        let mut session_entry = SessionEntry {
            record: entry.record,
            arrival,
            submitted: entry.submitted,
            request,
            session,
            priority: entry.priority,
            est_bytes: entry.est_bytes,
            full_bytes: entry.full_bytes,
            preemptions: 0,
            cap,
            wait_since: None,
        };
        if fill_cycles > 0 {
            // Park the session until the fill's cycles elapse on the
            // shard clock — the same serialization path as a swap-in
            // (its wait is accounted as swap wait).
            assert!(self.engine.pause(session).is_some(), "a just-submitted session is always pausable");
            session_entry.wait_since = Some((WaitKind::Swap, now));
            self.swapping
                .push(SwapInEntry { entry: session_entry, ready_at: self.elapsed_cycles + fill_cycles });
        } else {
            self.running.push(session_entry);
        }
    }

    /// Drains the engine's prefix spill/fill outbox onto this shard's
    /// host link. Spill traffic leaves the device asynchronously (no
    /// latency on any session's critical path); fill traffic is
    /// returned as cycles for the caller to serialize onto the clock.
    fn charge_prefix_traffic(&mut self) -> u64 {
        let mut fill_cycles = 0;
        for transfer in self.engine.take_prefix_transfers() {
            match transfer.kind {
                PrefixTransferKind::Spill => {
                    self.link.transfer_tagged(transfer.bytes, SwapDirection::Out, TransferKind::PrefixSpill);
                }
                PrefixTransferKind::Fill => {
                    fill_cycles += self.link.transfer_tagged(
                        transfer.bytes,
                        SwapDirection::In,
                        TransferKind::PrefixFill,
                    );
                }
            }
        }
        fill_cycles
    }

    /// Applies one session's tick event to its record (or, for a
    /// migrated-in session, to the outbox). Prefill progress only moves
    /// the clock (the record's first-token tick stays unset — that is
    /// exactly what makes TTFT real under chunked prefill); generated
    /// tokens update the record, and completions release their
    /// reservation and notify closed-loop workloads.
    fn observe(&mut self, event: &TokenEvent, now: u64, workload: &mut Workload) {
        let TokenEvent::Generated { session, finished, .. } = *event else {
            return;
        };
        let index = self
            .running
            .iter()
            .position(|r| r.session == session)
            .expect("every stepped session has a running entry");
        match self.running[index].record {
            RecordRef::Local(r) => {
                let record = &mut self.records[r];
                record.generated_tokens += 1;
                if record.first_token.is_none() {
                    record.first_token = Some(now);
                }
                if finished {
                    record.finished = Some(now);
                }
            }
            RecordRef::Foreign { shard, index: r } => {
                self.outbox.push(ForeignUpdate {
                    shard,
                    index: r,
                    delta: RecordDelta::Token { now, finished },
                });
            }
        }
        if finished {
            let entry = self.running.remove(index);
            self.admission.release(entry.est_bytes);
            workload.notify_completion(now);
        }
    }

    /// Budget-shrink pressure response (opt-in, see
    /// [`crate::ServerConfig`]).
    fn apply_pressure(&mut self) {
        let Some(controller) = self.shrink else { return };
        let resident = self.engine.kv_bytes_active();
        let factor = controller.shrink_factor(resident, self.capacity_bytes());
        if factor >= 1.0 {
            return;
        }
        for entry in &mut self.running {
            let new_cap = controller.shrunk_cap(entry.cap, factor);
            if new_cap < entry.cap {
                self.engine.tighten_budget(entry.session, new_cap);
                entry.cap = new_cap;
                self.budget_shrinks += 1;
            }
        }
    }

    /// Drains the engine and assembles this shard's [`ServingReport`].
    pub(crate) fn into_report(mut self, arrival: ArrivalKind, ticks: u64) -> ServingReport {
        // Safety valve: a truncated run still drains the engine so the
        // batched accounting is complete and well-formed. Requests still
        // queued release their admission pins (they will never submit).
        for mut entry in std::mem::take(&mut self.queue) {
            if let Some(pin) = entry.prefix_pin.take() {
                self.engine.unpin_prefix(pin);
            }
        }
        let swapping: Vec<SwapInEntry> = std::mem::take(&mut self.swapping);
        for swap in swapping {
            self.engine.resume(swap.entry.session).expect("swapping entry tracks the engine");
        }
        let paused: Vec<SessionEntry> = std::mem::take(&mut self.paused);
        for entry in paused {
            self.engine.resume(entry.session).expect("paused entry tracks the engine");
        }
        let engine = self.engine.run_to_completion();
        // Drain-time harvests can spill under byte pressure; bill the
        // traffic so the link counters below are complete.
        self.charge_prefix_traffic();
        ServingReport {
            shard_id: self.id,
            arrival,
            sched: self.policy.kind(),
            ticks,
            decode_ticks: self.decode_ticks,
            submitted: self.records.len(),
            admitted: self.admitted,
            completed: self.records.iter().filter(|r| r.finished.is_some()).count(),
            rejected_never_fits: self.rejected_never_fits,
            rejected_queue_full: self.rejected_queue_full,
            rejected_invalid: self.rejected_invalid,
            preemptions: self.preemptions,
            resumes: self.resumes,
            swap_out_bytes: self.link.tagged_bytes(TransferKind::Swap, SwapDirection::Out),
            swap_in_bytes: self.link.tagged_bytes(TransferKind::Swap, SwapDirection::In),
            swap_cycles: self.link.kind_total_cycles(TransferKind::Swap),
            prefix_spill_bytes: self.link.tagged_bytes(TransferKind::PrefixSpill, SwapDirection::Out),
            prefix_fill_bytes: self.link.tagged_bytes(TransferKind::PrefixFill, SwapDirection::In),
            prefix_transfer_cycles: self.link.kind_total_cycles(TransferKind::PrefixSpill)
                + self.link.kind_total_cycles(TransferKind::PrefixFill),
            swap_wait_ticks: self.swap_wait_ticks,
            budget_shrinks: self.budget_shrinks,
            queue_depth: self.queue_depth,
            kv_resident_peak_bytes: self.kv_resident_peak,
            kv_reserved_peak_bytes: self.kv_reserved_peak,
            capacity_bytes: self.admission.config().capacity_bytes,
            records: self.records,
            engine,
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("queued", &self.queue.len())
            .field("running", &self.running.len())
            .field("paused", &self.paused.len())
            .field("swapping", &self.swapping.len())
            .field("records", &self.records.len())
            .finish()
    }
}

//! The deterministic fault-injection plane: shard failure/recovery,
//! host-link degradation, deadline timeouts with bounded retry, and
//! watermark load-shedding.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: every fault is
//! pinned to virtual-clock ticks, so the same seed and the same plan
//! reproduce the same crashes, the same retries, and the same token
//! streams — chaos testing with the repo's usual bit-identity
//! discipline. The plan drives three fault classes:
//!
//! * **Fail-stop shard crashes** ([`ShardCrash`]): at tick `at` the
//!   shard's in-flight work is lost — queued entries are orphaned,
//!   admitted sessions are [`veda::Engine::discard`]ed (KV freed, no
//!   finished report) — and every lost request re-enters the cluster
//!   through a retry queue with deterministic exponential backoff
//!   ([`RetryPolicy`]), re-prefilling from its prompt on whichever
//!   healthy shard the router picks (prefix-cache hits make that
//!   re-prefill cheap). An optional `recover_at` returns the shard to
//!   rotation; an optional `drain` window marks it
//!   [`ShardHealth::Draining`] first, so the router stops feeding it
//!   before it dies.
//! * **Host-link degradation** ([`LinkDegradation`]): a bandwidth
//!   fraction applied to one shard's [`veda_mem::HostLink`] over a tick
//!   window, stretching swap-in and migration transfer cycles.
//! * **Deadline timeouts** (configured on [`FaultConfig`], not the plan:
//!   they apply to every request, not scheduled ticks): a request that
//!   misses its TTFT or e2e deadline — measured per *attempt* — is torn
//!   down and retried under the same bounded policy; a request that
//!   exhausts its attempts becomes a terminal **dead letter**.
//!
//! On top of the plan, [`FaultConfig::shed_watermark`] arms the
//! load-shedder: when the cluster-wide queue depth crosses the watermark
//! (a fraction of total queue slots), the lowest-priority, newest queued
//! request is shed — a terminal state, cheaper than letting the whole
//! tail of the queue miss its deadline.
//!
//! **Determinism invariant #9** (pinned by `tests/fault_stack.rs`): an
//! empty [`FaultPlan`] with no deadlines and no watermark is
//! byte-identical to a cluster with no fault plane installed, and the
//! same seed + the same plan is bit-identical at any decode thread
//! count.

use std::collections::VecDeque;

use veda::Request;

use crate::error::ServeError;

/// A shard's health as seen by the router and the migration planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardHealth {
    /// In rotation: receives routed arrivals and migration landings.
    #[default]
    Alive,
    /// Scheduled to crash shortly: finishes its in-flight work but
    /// receives no new arrivals and no migration landings (it may still
    /// migrate sessions *away*).
    Draining,
    /// Crashed: empty, out of rotation, a no-op on the clock until (and
    /// unless) its recovery tick arrives.
    Down,
}

impl ShardHealth {
    /// Whether the router may send new work here.
    pub fn routable(self) -> bool {
        matches!(self, ShardHealth::Alive)
    }

    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Alive => "alive",
            ShardHealth::Draining => "draining",
            ShardHealth::Down => "down",
        }
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scheduled fail-stop crash (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCrash {
    /// The shard that crashes.
    pub shard: usize,
    /// The tick it goes down (its work is lost at the *start* of this
    /// tick, before arrivals are routed).
    pub at: u64,
    /// The tick it rejoins rotation, or `None` for a permanent failure.
    pub recover_at: Option<u64>,
    /// Ticks of [`ShardHealth::Draining`] before the crash: the shard is
    /// out of rotation from `at - drain` onward.
    pub drain: u64,
}

/// One scheduled host-link bandwidth degradation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// The shard whose link degrades.
    pub shard: usize,
    /// First degraded tick (inclusive).
    pub from: u64,
    /// First healthy tick again (exclusive end of the window).
    pub until: u64,
    /// Bandwidth multiplier in `(0, 1]` during the window.
    pub bandwidth_fraction: f64,
}

/// Bounded retry with deterministic exponential backoff, in ticks.
///
/// A lost or timed-out request's `n`-th retry (1-based) becomes ready
/// `backoff_base << (n - 1)` ticks after the loss; a request that would
/// need more than `max_attempts` retries is dead-lettered instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries a request may consume before it is dead-lettered.
    pub max_attempts: u32,
    /// Backoff of the first retry, in ticks; doubles per attempt.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, backoff_base: 4 }
    }
}

impl RetryPolicy {
    /// Ticks the `attempt`-th retry (1-based) waits before re-routing.
    pub fn backoff(&self, attempt: u32) -> u64 {
        // Cap the shift so a pathological max_attempts cannot overflow;
        // 2^32 ticks is already far beyond any run's horizon.
        self.backoff_base.saturating_mul(1u64 << attempt.saturating_sub(1).min(32))
    }
}

/// A deterministic, virtual-clock-driven fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled fail-stop crashes.
    pub crashes: Vec<ShardCrash>,
    /// Scheduled host-link degradation windows.
    pub degradations: Vec<LinkDegradation>,
}

impl FaultPlan {
    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.degradations.is_empty()
    }

    /// Parses the `--fault-plan` spec language: `;`-separated clauses,
    /// each either
    ///
    /// * `crash@T:shard=N[:recover=T2][:drain=D]` — shard `N` fails at
    ///   tick `T`, optionally recovering at `T2` after draining for `D`
    ///   ticks beforehand; or
    /// * `degrade@T1-T2:shard=N:bw=F` — shard `N`'s host link runs at
    ///   bandwidth fraction `F` over ticks `[T1, T2)`.
    ///
    /// Example: `crash@40:shard=1:recover=90;degrade@100-200:shard=0:bw=0.25`.
    pub fn parse(spec: &str) -> Result<Self, ServeError> {
        let bad =
            |clause: &str, why: &str| Err(ServeError::InvalidFaultPlan(format!("clause {clause:?}: {why}")));
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let mut parts = clause.split(':');
            let head = parts.next().expect("split yields at least one part");
            let Some((kind, when)) = head.split_once('@') else {
                return bad(clause, "expected crash@T or degrade@T1-T2");
            };
            let mut shard: Option<usize> = None;
            let mut recover: Option<u64> = None;
            let mut drain: u64 = 0;
            let mut bw: Option<f64> = None;
            for part in parts {
                let Some((key, value)) = part.split_once('=') else {
                    return bad(clause, "expected key=value parts after the @ head");
                };
                match key {
                    "shard" => match value.parse() {
                        Ok(v) => shard = Some(v),
                        Err(_) => return bad(clause, "shard must be an integer"),
                    },
                    "recover" => match value.parse() {
                        Ok(v) => recover = Some(v),
                        Err(_) => return bad(clause, "recover must be a tick"),
                    },
                    "drain" => match value.parse() {
                        Ok(v) => drain = v,
                        Err(_) => return bad(clause, "drain must be a tick count"),
                    },
                    "bw" => match value.parse() {
                        Ok(v) => bw = Some(v),
                        Err(_) => return bad(clause, "bw must be a number"),
                    },
                    _ => return bad(clause, "unknown key (expected shard/recover/drain/bw)"),
                }
            }
            let Some(shard) = shard else { return bad(clause, "missing shard=N") };
            match kind {
                "crash" => {
                    let Ok(at) = when.parse() else { return bad(clause, "crash tick must be an integer") };
                    plan.crashes.push(ShardCrash { shard, at, recover_at: recover, drain });
                }
                "degrade" => {
                    let Some((from, until)) = when.split_once('-') else {
                        return bad(clause, "degrade window must be T1-T2");
                    };
                    let (Ok(from), Ok(until)) = (from.parse(), until.parse()) else {
                        return bad(clause, "degrade window bounds must be integers");
                    };
                    let Some(bw) = bw else { return bad(clause, "missing bw=F") };
                    plan.degradations.push(LinkDegradation { shard, from, until, bandwidth_fraction: bw });
                }
                _ => return bad(clause, "unknown clause kind (expected crash or degrade)"),
            }
        }
        Ok(plan)
    }

    /// Checks the plan against a cluster topology: shard indices in
    /// range, recovery after crash, degradation windows well-formed,
    /// bandwidth fractions in `(0, 1]`, and no two crash windows of the
    /// same shard overlapping (one failure mode per shard at a time).
    pub fn validate(&self, shards: usize) -> Result<(), ServeError> {
        let bad = |why: String| Err(ServeError::InvalidFaultPlan(why));
        for c in &self.crashes {
            if c.shard >= shards {
                return bad(format!("crash@{} names shard {} of a {shards}-shard cluster", c.at, c.shard));
            }
            if let Some(r) = c.recover_at {
                if r <= c.at {
                    return bad(format!("crash@{}: recovery tick {r} is not after the crash", c.at));
                }
            }
            if c.drain > c.at {
                return bad(format!("crash@{}: drain window {} starts before tick 0", c.at, c.drain));
            }
        }
        for (i, a) in self.crashes.iter().enumerate() {
            for b in &self.crashes[i + 1..] {
                if a.shard != b.shard {
                    continue;
                }
                let a_end = a.recover_at.unwrap_or(u64::MAX);
                let b_end = b.recover_at.unwrap_or(u64::MAX);
                if a.at < b_end && b.at < a_end {
                    return bad(format!("shard {} has overlapping crash windows", a.shard));
                }
            }
        }
        for d in &self.degradations {
            if d.shard >= shards {
                return bad(format!(
                    "degrade@{}-{} names shard {} of a {shards}-shard cluster",
                    d.from, d.until, d.shard
                ));
            }
            if d.until <= d.from {
                return bad(format!("degrade@{}-{}: empty window", d.from, d.until));
            }
            if !(d.bandwidth_fraction > 0.0 && d.bandwidth_fraction <= 1.0) {
                return bad(format!("degrade bw={} must be in (0, 1]", d.bandwidth_fraction));
            }
        }
        Ok(())
    }

    /// The shard's health at tick `now`, derived statelessly from the
    /// schedule (`Down` wins over `Draining` on overlap).
    pub(crate) fn health_at(&self, shard: usize, now: u64) -> ShardHealth {
        let mut health = ShardHealth::Alive;
        for c in self.crashes.iter().filter(|c| c.shard == shard) {
            let down = now >= c.at && c.recover_at.is_none_or(|r| now < r);
            if down {
                return ShardHealth::Down;
            }
            if now >= c.at.saturating_sub(c.drain) && now < c.at {
                health = ShardHealth::Draining;
            }
        }
        health
    }

    /// The shard's host-link bandwidth fraction at tick `now` (`1.0`
    /// when healthy; the minimum of overlapping windows otherwise).
    pub(crate) fn link_fraction_at(&self, shard: usize, now: u64) -> f64 {
        self.degradations
            .iter()
            .filter(|d| d.shard == shard && now >= d.from && now < d.until)
            .map(|d| d.bandwidth_fraction)
            // lint:allow(float-reduction): f64::min fold is order-insensitive (no rounding), not a summation
            .fold(1.0, f64::min)
    }

    /// The earliest scheduled health or link transition at or after
    /// `now`, used to bound idle fast-forwarding so no ShardDown/ShardUp
    /// edge is skipped over.
    pub(crate) fn next_transition_at(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t >= now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for c in &self.crashes {
            consider(c.at.saturating_sub(c.drain));
            consider(c.at);
            if let Some(r) = c.recover_at {
                consider(r);
            }
        }
        for d in &self.degradations {
            consider(d.from);
            consider(d.until);
        }
        next
    }
}

/// The full fault-plane configuration for one cluster run.
///
/// The default value is a **no-op plane**: empty plan, no deadlines, no
/// watermark — and determinism invariant #9 pins that a cluster
/// configured with it is byte-identical to one with no fault plane
/// installed at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// The scheduled fault injections.
    pub plan: FaultPlan,
    /// Retry policy for lost and timed-out requests.
    pub retry: RetryPolicy,
    /// Per-attempt time-to-first-token deadline, in ticks.
    pub ttft_deadline: Option<u64>,
    /// Per-attempt end-to-end deadline, in ticks.
    pub e2e_deadline: Option<u64>,
    /// Load-shedding watermark: when total queued requests exceed this
    /// fraction of total queue slots (shards × max_queue_depth), the
    /// lowest-priority newest queued request is shed until back under.
    pub shed_watermark: Option<f64>,
}

impl FaultConfig {
    /// Whether this configuration can never act (the invariant-#9
    /// equivalence class of "no fault plane").
    pub fn is_noop(&self) -> bool {
        self.plan.is_empty()
            && self.ttft_deadline.is_none()
            && self.e2e_deadline.is_none()
            && self.shed_watermark.is_none()
    }
}

/// A request displaced from a shard (crash or deadline teardown),
/// waiting to be retried or dead-lettered. Carries everything needed to
/// re-enter admission from the prompt.
#[derive(Debug)]
pub(crate) struct LostWork {
    /// `(home shard, record index)` of the request's record.
    pub(crate) home: (usize, usize),
    /// Global arrival index (the request's stable trace id).
    pub(crate) arrival: usize,
    /// Priority tier.
    pub(crate) priority: u8,
    /// The original request; a retry re-prefills from this prompt.
    pub(crate) request: Request,
}

/// One parked retry: `work` re-routes once `ready` arrives.
#[derive(Debug)]
pub(crate) struct RetryEntry {
    pub(crate) ready: u64,
    pub(crate) work: LostWork,
}

/// Live fault-plane state inside a running [`crate::Cluster`]. Always
/// present (a cluster without a configured plane runs a no-op default),
/// so the healthy path and the empty-plan path are the same code — the
/// cheapest way to make invariant #9 true by construction.
#[derive(Debug, Default)]
pub(crate) struct FaultRuntime {
    pub(crate) config: FaultConfig,
    /// Cached per-shard health, diffed each tick to detect transitions.
    pub(crate) health: Vec<ShardHealth>,
    /// Tick each currently-down shard went down (for `ShardUp`'s
    /// `down_ticks`).
    pub(crate) down_since: Vec<Option<u64>>,
    /// Parked retries in push order (drained by readiness each tick).
    pub(crate) retry: VecDeque<RetryEntry>,
    pub(crate) lost_sessions: u64,
    pub(crate) retries: u64,
    pub(crate) timeouts: u64,
    pub(crate) dead_letters: u64,
    pub(crate) shed: u64,
    pub(crate) shard_downs: u64,
    pub(crate) shard_ups: u64,
    /// Shard-ticks with the shard not `Down` (numerator of availability).
    pub(crate) alive_shard_ticks: u64,
    /// Total shard-ticks observed (denominator of availability).
    pub(crate) shard_ticks: u64,
}

impl FaultRuntime {
    pub(crate) fn new(config: FaultConfig, shards: usize) -> Self {
        Self {
            config,
            health: vec![ShardHealth::Alive; shards],
            down_since: vec![None; shards],
            ..Self::default()
        }
    }

    /// Earliest tick at or after `now` at which a parked retry becomes
    /// ready.
    pub(crate) fn next_retry_ready(&self) -> Option<u64> {
        self.retry.iter().map(|e| e.ready).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            FaultPlan::parse("crash@40:shard=1:recover=90:drain=5; degrade@100-200:shard=0:bw=0.25").unwrap();
        assert_eq!(plan.crashes, vec![ShardCrash { shard: 1, at: 40, recover_at: Some(90), drain: 5 }]);
        assert_eq!(
            plan.degradations,
            vec![LinkDegradation { shard: 0, from: 100, until: 200, bandwidth_fraction: 0.25 }]
        );
        assert!(plan.validate(2).is_ok());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for spec in [
            "crash",
            "crash@x:shard=0",
            "crash@10",
            "crash@10:shard=zero",
            "degrade@5:shard=0:bw=0.5",
            "degrade@5-9:shard=0",
            "reboot@5:shard=0",
            "crash@10:shard=0:color=red",
        ] {
            assert!(
                matches!(FaultPlan::parse(spec), Err(ServeError::InvalidFaultPlan(_))),
                "spec {spec:?} must be rejected"
            );
        }
    }

    #[test]
    fn validate_checks_topology_and_windows() {
        let plan = FaultPlan::parse("crash@10:shard=3").unwrap();
        assert!(plan.validate(2).is_err(), "shard out of range");
        assert!(plan.validate(4).is_ok());
        let plan = FaultPlan::parse("crash@10:shard=0:recover=10").unwrap();
        assert!(plan.validate(1).is_err(), "recovery must follow the crash");
        let plan = FaultPlan::parse("degrade@5-9:shard=0:bw=1.5").unwrap();
        assert!(plan.validate(1).is_err(), "bw fraction above 1");
        let plan = FaultPlan::parse("crash@10:shard=0:recover=20;crash@15:shard=0:recover=30").unwrap();
        assert!(plan.validate(1).is_err(), "overlapping crash windows");
        let plan = FaultPlan::parse("crash@10:shard=0:recover=20;crash@20:shard=0").unwrap();
        assert!(plan.validate(1).is_ok(), "back-to-back windows are fine");
    }

    #[test]
    fn health_follows_the_schedule() {
        let plan = FaultPlan::parse("crash@40:shard=1:recover=90:drain=5").unwrap();
        assert_eq!(plan.health_at(1, 0), ShardHealth::Alive);
        assert_eq!(plan.health_at(1, 34), ShardHealth::Alive);
        assert_eq!(plan.health_at(1, 35), ShardHealth::Draining);
        assert_eq!(plan.health_at(1, 39), ShardHealth::Draining);
        assert_eq!(plan.health_at(1, 40), ShardHealth::Down);
        assert_eq!(plan.health_at(1, 89), ShardHealth::Down);
        assert_eq!(plan.health_at(1, 90), ShardHealth::Alive);
        assert_eq!(plan.health_at(0, 40), ShardHealth::Alive, "other shards unaffected");
        let permanent = FaultPlan::parse("crash@7:shard=0").unwrap();
        assert_eq!(permanent.health_at(0, 1_000_000), ShardHealth::Down);
        assert!(!ShardHealth::Down.routable() && !ShardHealth::Draining.routable());
        assert!(ShardHealth::Alive.routable());
    }

    #[test]
    fn link_fraction_takes_the_window_minimum() {
        let plan = FaultPlan::parse("degrade@10-20:shard=0:bw=0.5;degrade@15-25:shard=0:bw=0.25").unwrap();
        assert_eq!(plan.link_fraction_at(0, 9), 1.0);
        assert_eq!(plan.link_fraction_at(0, 12), 0.5);
        assert_eq!(plan.link_fraction_at(0, 17), 0.25, "overlap takes the minimum");
        assert_eq!(plan.link_fraction_at(0, 24), 0.25);
        assert_eq!(plan.link_fraction_at(0, 25), 1.0);
        assert_eq!(plan.link_fraction_at(1, 17), 1.0, "other shards unaffected");
    }

    #[test]
    fn next_transition_bounds_fast_forward() {
        let plan =
            FaultPlan::parse("crash@40:shard=1:recover=90:drain=5;degrade@100-200:shard=0:bw=0.5").unwrap();
        assert_eq!(plan.next_transition_at(0), Some(35));
        assert_eq!(plan.next_transition_at(36), Some(40));
        assert_eq!(plan.next_transition_at(41), Some(90));
        assert_eq!(plan.next_transition_at(91), Some(100));
        assert_eq!(plan.next_transition_at(150), Some(200));
        assert_eq!(plan.next_transition_at(201), None);
        assert_eq!(FaultPlan::default().next_transition_at(0), None);
    }

    #[test]
    fn backoff_doubles_per_attempt_and_never_overflows() {
        let p = RetryPolicy { max_attempts: 5, backoff_base: 4 };
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(3), 16);
        let extreme = RetryPolicy { max_attempts: u32::MAX, backoff_base: u64::MAX };
        assert_eq!(extreme.backoff(u32::MAX), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn default_config_is_the_noop_plane() {
        assert!(FaultConfig::default().is_noop());
        let c = FaultConfig { ttft_deadline: Some(100), ..FaultConfig::default() };
        assert!(!c.is_noop());
        let c = FaultConfig { plan: FaultPlan::parse("crash@1:shard=0").unwrap(), ..FaultConfig::default() };
        assert!(!c.is_noop());
    }
}

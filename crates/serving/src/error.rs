//! Typed serving-plane errors.
//!
//! The serving stack's original constructors panicked on misconfiguration
//! — acceptable for a pure simulator, wrong for a plane whose whole point
//! is injecting faults and observing them *as values*. [`ServeError`]
//! carries every configuration- and topology-level failure the cluster
//! can detect, so callers (the CLI, the bench harness, library users)
//! choose between [`crate::Cluster::try_new`]'s `Result` and the
//! panicking [`crate::Cluster::new`] convenience wrapper. Runtime faults
//! (crashes, timeouts, shedding) are never errors at all: they flow
//! through [`crate::FaultPlan`] into counters, trace events and terminal
//! request states.

use std::fmt;

/// A serving-plane configuration or topology error.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine list handed to the cluster does not match the
    /// configured shard count.
    EngineCountMismatch {
        /// Engines provided.
        engines: usize,
        /// Shards configured.
        shards: usize,
    },
    /// A cluster needs at least one shard.
    EmptyCluster,
    /// An engine already had in-flight sessions; shards require idle
    /// engines.
    EngineNotIdle {
        /// Index of the offending engine.
        engine: usize,
    },
    /// The engines do not share one model geometry (migration moves KV
    /// state between them, so their shapes must agree).
    ModelGeometryMismatch,
    /// Migration thresholds must satisfy
    /// `0 < cold_fraction <= hot_fraction <= 1`.
    InvalidMigrationThresholds {
        /// Configured cold-side fraction.
        cold: f64,
        /// Configured hot-side fraction.
        hot: f64,
    },
    /// A fault plan failed to parse or referenced an impossible schedule
    /// (unknown shard, recovery before crash, bandwidth fraction outside
    /// `(0, 1]`). The message names the offending clause.
    InvalidFaultPlan(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EngineCountMismatch { engines, shards } => {
                write!(f, "cluster configured for {shards} shards but given {engines} engines")
            }
            ServeError::EmptyCluster => write!(f, "a cluster needs at least one shard"),
            ServeError::EngineNotIdle { engine } => {
                write!(f, "engine {engine} has in-flight sessions; shards require idle engines")
            }
            ServeError::ModelGeometryMismatch => {
                write!(f, "cluster shards must share one model geometry")
            }
            ServeError::InvalidMigrationThresholds { cold, hot } => write!(
                f,
                "migration thresholds must satisfy 0 < cold_fraction <= hot_fraction <= 1 \
                 (got cold={cold}, hot={hot})"
            ),
            ServeError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = ServeError::EngineCountMismatch { engines: 2, shards: 3 };
        assert!(e.to_string().contains("3 shards") && e.to_string().contains("2 engines"));
        assert!(ServeError::InvalidFaultPlan("bad clause".into()).to_string().contains("bad clause"));
        assert!(ServeError::InvalidMigrationThresholds { cold: 0.9, hot: 0.5 }
            .to_string()
            .contains("cold=0.9"));
    }
}

//! Routing policies: which shard receives each arriving request.
//!
//! A [`crate::Cluster`] consults its [`RouterPolicy`] once per arrival,
//! *before* the request is screened — routing decides which shard's
//! admission control, queue and prefix cache the request meets. The
//! policy sees one [`ShardView`] per shard (load and prefix-affinity
//! snapshots taken at the arrival's tick, in shard order) and returns a
//! shard index; it never sees the prompt itself, so a policy cannot
//! smuggle workload-dependent state past the determinism pins — the same
//! seed and shard count always produce the same routing trace.
//!
//! Three policies ship:
//!
//! * [`RouterKind::RoundRobin`] — rotate through shards in arrival
//!   order, ignoring load. The baseline, and the policy under which a
//!   1-shard cluster is pinned bit-identical to [`crate::Server`].
//! * [`RouterKind::LeastLoaded`] — send each request to the shard with
//!   the fewest reserved KV bytes (queue depth, then lowest shard index,
//!   break ties). Balances byte pressure, blind to prefix locality.
//! * [`RouterKind::PrefixAffinity`] — send the request to the shard
//!   whose prefix cache shares the longest prefix with the prompt
//!   (lowest shard index breaks ties); when no shard knows the prefix,
//!   fall back to least-loaded. Keeps a session group's shared system
//!   prompt resident on *one* shard instead of duplicating it N ways —
//!   the cluster-level analogue of the engine's prefix cache, and the
//!   policy the `BENCH_cluster.json` sweep shows beating round-robin on
//!   shared-prefix traffic.

use std::fmt;
use std::str::FromStr;

use crate::faults::ShardHealth;

/// Per-shard snapshot a [`RouterPolicy`] routes against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// The shard's index within the cluster.
    pub shard: usize,
    /// KV bytes currently reserved by the shard's admission control.
    pub reserved_bytes: u64,
    /// The shard's configured device KV capacity.
    pub capacity_bytes: u64,
    /// Requests waiting in the shard's admission queue.
    pub queue_depth: usize,
    /// Sessions currently prefilling/decoding on the shard.
    pub running: usize,
    /// Longest prefix of the arriving prompt already resident in the
    /// shard's prefix cache, in tokens (`0` when the cache is disabled
    /// or cold).
    pub prefix_match_tokens: usize,
    /// The shard's health: only [`ShardHealth::routable`] shards may be
    /// picked. The cluster guarantees at least one routable view per
    /// call (arrivals with no healthy shard bypass the router entirely
    /// and park in the retry queue).
    pub health: ShardHealth,
}

/// A routing policy: maps each arrival to a shard index.
///
/// Policies may keep internal state (round-robin's cursor); the cluster
/// calls [`RouterPolicy::route`] exactly once per arrival, in global
/// arrival order, which is what makes stateful policies deterministic.
pub trait RouterPolicy {
    /// Which policy this is.
    fn kind(&self) -> RouterKind;

    /// Picks the shard for the next arrival. `shards` holds one view per
    /// shard, indexed by shard id; the returned index must be in range.
    fn route(&mut self, shards: &[ShardView]) -> usize;
}

/// The routing policies shipped with the cluster plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouterKind {
    /// Rotate through shards in arrival order.
    #[default]
    RoundRobin,
    /// Fewest reserved KV bytes wins (queue depth breaks ties).
    LeastLoaded,
    /// Longest resident prefix match wins; least-loaded fallback.
    PrefixAffinity,
}

impl RouterKind {
    /// Every shipped routing policy, for sweeps.
    pub const ALL: [RouterKind; 3] =
        [RouterKind::RoundRobin, RouterKind::LeastLoaded, RouterKind::PrefixAffinity];

    /// Stable lowercase name (the `--router` flag vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round_robin",
            RouterKind::LeastLoaded => "least_loaded",
            RouterKind::PrefixAffinity => "prefix_affinity",
        }
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn RouterPolicy> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin { cursor: 0 }),
            RouterKind::LeastLoaded => Box::new(LeastLoaded),
            RouterKind::PrefixAffinity => Box::new(PrefixAffinity),
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`RouterKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouterKindError(String);

impl fmt::Display for ParseRouterKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown router {:?} (expected one of: round_robin, least_loaded, prefix_affinity)", self.0)
    }
}

impl std::error::Error for ParseRouterKindError {}

impl FromStr for RouterKind {
    type Err = ParseRouterKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String =
            s.trim().to_ascii_lowercase().chars().filter(|c| !matches!(c, '-' | '_' | ' ')).collect();
        match normalized.as_str() {
            "roundrobin" | "rr" => Ok(RouterKind::RoundRobin),
            "leastloaded" | "load" => Ok(RouterKind::LeastLoaded),
            "prefixaffinity" | "prefix" => Ok(RouterKind::PrefixAffinity),
            _ => Err(ParseRouterKindError(s.to_string())),
        }
    }
}

/// Comparator key shared by the load-aware policies: fewest reserved
/// bytes, then shallowest queue, then lowest shard index.
fn least_loaded_key(view: &ShardView) -> (u64, usize, usize) {
    (view.reserved_bytes, view.queue_depth, view.shard)
}

struct RoundRobin {
    cursor: usize,
}

impl RouterPolicy for RoundRobin {
    fn kind(&self) -> RouterKind {
        RouterKind::RoundRobin
    }

    fn route(&mut self, shards: &[ShardView]) -> usize {
        // Rotate over the *routable* shards: a down shard leaves the
        // rotation without desynchronizing the cursor, and a recovered
        // shard deterministically rejoins at its index. With every shard
        // alive this is exactly `cursor % shards.len()` — the form the
        // 1-shard-cluster ≡ server pin was established under.
        let routable: Vec<usize> = shards.iter().filter(|v| v.health.routable()).map(|v| v.shard).collect();
        let pick = routable[self.cursor % routable.len()];
        self.cursor = self.cursor.wrapping_add(1);
        pick
    }
}

struct LeastLoaded;

impl RouterPolicy for LeastLoaded {
    fn kind(&self) -> RouterKind {
        RouterKind::LeastLoaded
    }

    fn route(&mut self, shards: &[ShardView]) -> usize {
        shards
            .iter()
            .filter(|v| v.health.routable())
            .min_by_key(|v| least_loaded_key(v))
            .expect("cluster routes only when a routable shard exists")
            .shard
    }
}

struct PrefixAffinity;

impl RouterPolicy for PrefixAffinity {
    fn kind(&self) -> RouterKind {
        RouterKind::PrefixAffinity
    }

    fn route(&mut self, shards: &[ShardView]) -> usize {
        let best = shards
            .iter()
            .filter(|v| v.health.routable() && v.prefix_match_tokens > 0)
            // max_by_key keeps the *last* max on ties; keying the shard
            // index in reverse makes the winner the lowest-indexed shard
            // with the longest match — deterministic and stable.
            .max_by_key(|v| (v.prefix_match_tokens, std::cmp::Reverse(v.shard)));
        match best {
            Some(v) => v.shard,
            None => {
                shards
                    .iter()
                    .filter(|v| v.health.routable())
                    .min_by_key(|v| least_loaded_key(v))
                    .expect("cluster routes only when a routable shard exists")
                    .shard
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(shard: usize, reserved: u64, queue: usize, prefix: usize) -> ShardView {
        ShardView {
            shard,
            reserved_bytes: reserved,
            capacity_bytes: 1 << 20,
            queue_depth: queue,
            running: 0,
            prefix_match_tokens: prefix,
            health: ShardHealth::Alive,
        }
    }

    fn down(mut v: ShardView) -> ShardView {
        v.health = ShardHealth::Down;
        v
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = RouterKind::RoundRobin.build();
        let shards = [view(0, 0, 0, 0), view(1, 0, 0, 0), view(2, 0, 0, 0)];
        let picks: Vec<usize> = (0..7).map(|_| p.route(&shards)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn policies_skip_unroutable_shards() {
        // Round-robin rotates over the survivors only...
        let mut p = RouterKind::RoundRobin.build();
        let shards = [view(0, 0, 0, 0), down(view(1, 0, 0, 0)), view(2, 0, 0, 0)];
        let picks: Vec<usize> = (0..4).map(|_| p.route(&shards)).collect();
        assert_eq!(picks, [0, 2, 0, 2]);
        // ...and a recovered shard rejoins the rotation deterministically.
        let healthy = [view(0, 0, 0, 0), view(1, 0, 0, 0), view(2, 0, 0, 0)];
        let picks: Vec<usize> = (0..3).map(|_| p.route(&healthy)).collect();
        assert_eq!(picks, [1, 2, 0], "cursor kept advancing across the outage");
        // Least-loaded never picks a down shard, even the emptiest one.
        let mut p = RouterKind::LeastLoaded.build();
        assert_eq!(p.route(&[down(view(0, 0, 0, 0)), view(1, 999, 9, 0)]), 1);
        // Prefix affinity ignores a down shard's cached prefix.
        let mut p = RouterKind::PrefixAffinity.build();
        assert_eq!(p.route(&[down(view(0, 0, 0, 99)), view(1, 5, 0, 2)]), 1);
    }

    #[test]
    fn least_loaded_prefers_fewest_reserved_bytes_then_queue_then_index() {
        let mut p = RouterKind::LeastLoaded.build();
        assert_eq!(p.route(&[view(0, 100, 0, 0), view(1, 50, 3, 0), view(2, 200, 0, 0)]), 1);
        // Byte tie: shallower queue wins.
        assert_eq!(p.route(&[view(0, 100, 2, 0), view(1, 100, 1, 0)]), 1);
        // Full tie: lowest shard index wins.
        assert_eq!(p.route(&[view(0, 100, 1, 0), view(1, 100, 1, 0)]), 0);
    }

    #[test]
    fn prefix_affinity_follows_the_longest_match() {
        let mut p = RouterKind::PrefixAffinity.build();
        // Shard 2 knows the longest prefix, despite being the most loaded.
        assert_eq!(p.route(&[view(0, 0, 0, 0), view(1, 10, 0, 4), view(2, 999, 9, 12)]), 2);
        // Match-length tie: lowest shard index wins.
        assert_eq!(p.route(&[view(0, 0, 0, 8), view(1, 0, 0, 8)]), 0);
        // No shard knows the prefix: least-loaded fallback.
        assert_eq!(p.route(&[view(0, 100, 0, 0), view(1, 50, 0, 0)]), 1);
    }

    #[test]
    fn router_kind_parses_names_and_aliases() {
        for kind in RouterKind::ALL {
            assert_eq!(kind.as_str().parse::<RouterKind>().unwrap(), kind);
        }
        assert_eq!("rr".parse::<RouterKind>().unwrap(), RouterKind::RoundRobin);
        assert_eq!("Least-Loaded".parse::<RouterKind>().unwrap(), RouterKind::LeastLoaded);
        assert_eq!("prefix".parse::<RouterKind>().unwrap(), RouterKind::PrefixAffinity);
        assert!("random".parse::<RouterKind>().is_err());
    }
}

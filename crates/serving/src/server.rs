//! The virtual-clock serving loop: arrivals → admission → scheduling →
//! mixed prefill/decode ticks.
//!
//! One [`Server::tick`] is one virtual-clock step, aligned with one
//! batched engine tick:
//!
//! 1. **Arrivals** due at the current tick are screened — requests whose
//!    peak KV footprint can never fit are rejected immediately, as are
//!    arrivals beyond the queue-depth limit; the rest wait in the queue.
//!    A prompt with a known shared prefix (the engine's prefix cache
//!    already holds a matching entry) is screened and reserved at its
//!    *unshared* peak only — the shared span is resident once, in the
//!    cache entry — so shared-prefix traffic admits more concurrent
//!    sessions under the same capacity. The discount applies only to
//!    eviction-free requests with budget shrinking off, and the cache's
//!    own bytes are charged against admission headroom (see the
//!    [`crate::admission`] module docs for the soundness argument).
//! 2. **Swap-in completion**: preempted sessions whose host-link swap-in
//!    finished (its cycles, accumulated against the engine's per-tick
//!    cycle counts, have elapsed) rejoin the batch. Swap latency is
//!    *serialized into the clock*: a resumed session re-enters the batch
//!    at least one tick after its swap-in starts, later for large KV
//!    states or slow links.
//! 3. **Swap-in start**: preempted sessions whose reservation fits again
//!    re-reserve their bytes and begin their swap-in transfer.
//! 4. **Admission**: the scheduling policy repeatedly names the next
//!    queued candidate; each is admitted if its peak reservation fits,
//!    after preempting victims (swap-out) if the policy offers any. The
//!    first candidate that still does not fit blocks the queue — no
//!    backfill, so a policy's ordering is exactly what runs. Admission
//!    calls [`veda::Engine::submit`], which only validates, reserves KV
//!    and enqueues the session in its `Prefilling` phase — with a finite
//!    [`veda::EngineBuilder::prefill_chunk`] the prompt is then consumed
//!    on the clock, so TTFT and queueing percentiles measure real
//!    prefill work rather than a fictional instant prefill.
//! 5. **Step**: the engine advances every decoding session one token and
//!    every prefilling session one prompt chunk; first-token and
//!    completion ticks are recorded per request, and completions notify
//!    closed-loop workloads.
//! 6. Optionally, a [`BudgetController`] responds to high KV occupancy by
//!    tightening session budgets (the opt-in alternative to preemption —
//!    it changes generated tokens, preemption never does).
//!
//! Idle spans with no queued work fast-forward the clock to the next
//! arrival (and the cycle counter to the next swap-in completion), so
//! sparse workloads cost nothing to simulate.
//!
//! All the machinery above lives in one [`Shard`] — the server is the
//! degenerate 1-shard deployment: it owns the [`Workload`] and the
//! virtual clock and drives its single shard through the exact sequence a
//! [`crate::Cluster`] drives each of its shards through. A 1-shard
//! cluster with round-robin routing therefore produces a bit-identical
//! [`ServingReport`] (pinned by the `cluster_stack` integration tests).

use veda::Engine;
use veda_eviction::BudgetController;
use veda_mem::HostLinkConfig;
use veda_telemetry::SinkHandle;

use crate::admission::AdmissionConfig;
use crate::report::ServingReport;
use crate::scheduler::SchedKind;
use crate::shard::Shard;
use crate::workload::Workload;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission accounting (capacity, queue depth).
    pub admission: AdmissionConfig,
    /// Host-link model for KV swap traffic.
    pub host_link: HostLinkConfig,
    /// Scheduling policy.
    pub sched: SchedKind,
    /// Optional budget-shrink pressure response. `None` (the default)
    /// leaves preemption as the only pressure response and keeps every
    /// request's token stream identical to an uncontended run.
    pub shrink: Option<BudgetController>,
    /// Safety valve: the run stops after this many virtual ticks even if
    /// work remains (the report then covers the truncated horizon).
    pub max_ticks: u64,
    /// Observation-only trace sink. `None` (the default) keeps the run
    /// byte-identical to a build without the telemetry plane; with a
    /// sink, every lifecycle event of every request flows into it in
    /// deterministic order (same seed, same event stream — see
    /// determinism invariant #8).
    pub trace: Option<SinkHandle>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            host_link: HostLinkConfig::default(),
            sched: SchedKind::Fcfs,
            shrink: None,
            max_ticks: 1_000_000,
            trace: None,
        }
    }
}

/// The serving loop (see the [module docs](self)): one [`Shard`] driven
/// by the workload's arrival stream on a virtual clock.
pub struct Server {
    shard: Shard,
    workload: Workload,
    max_ticks: u64,
    now: u64,
}

impl Server {
    /// Creates a server over an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the engine already has in-flight sessions.
    pub fn new(engine: Engine, workload: Workload, config: ServerConfig) -> Self {
        let mut shard =
            Shard::new(0, engine, config.admission, config.host_link, config.sched, config.shrink);
        if let Some(sink) = config.trace {
            shard.install_trace(sink);
        }
        Self { shard, workload, max_ticks: config.max_ticks, now: 0 }
    }

    /// The current virtual-clock tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        self.shard.engine()
    }

    /// Requests that have arrived so far.
    pub fn submitted(&self) -> usize {
        self.shard.submitted()
    }

    /// Requests finished so far.
    pub fn completed(&self) -> usize {
        self.shard.completed()
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> usize {
        self.shard.rejected()
    }

    /// Requests currently queued, prefilling/decoding, preempted, or
    /// swapping back in.
    pub fn in_flight(&self) -> usize {
        self.shard.in_flight()
    }

    /// KV bytes currently reserved by admission control.
    pub fn reserved_bytes(&self) -> u64 {
        self.shard.reserved_bytes()
    }

    /// The configured device KV capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.shard.capacity_bytes()
    }

    /// Whether all work (arrived and future) is finished.
    pub fn is_done(&self) -> bool {
        self.workload.exhausted() && self.in_flight() == 0
    }

    /// Executes one virtual-clock tick (see the [module docs](self)).
    pub fn tick(&mut self) {
        for arrival in self.workload.take_arrivals(self.now) {
            let global = self.shard.submitted();
            self.shard.accept(arrival, global, self.now, &mut self.workload);
        }
        self.shard.begin_tick(self.now);
        self.shard.step_engine(self.now, &mut self.workload);
        debug_assert!(self.shard.outbox.is_empty(), "a standalone server has no foreign records");

        self.now += 1;
        // Fast-forward idle spans to the next arrival.
        if self.in_flight() == 0 {
            if let Some(next) = self.workload.next_arrival_tick() {
                self.now = self.now.max(next);
            }
        }
    }

    /// Runs the workload to completion (or the `max_ticks` safety valve)
    /// and produces the [`ServingReport`].
    pub fn run(mut self) -> ServingReport {
        while !self.is_done() && self.now < self.max_ticks {
            self.tick();
        }
        let arrival = self.workload.kind();
        self.shard.into_report(arrival, self.now)
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("now", &self.now)
            .field("queued", &self.shard.queue.len())
            .field("running", &self.shard.running.len())
            .field("paused", &self.shard.paused.len())
            .field("swapping", &self.shard.swapping.len())
            .field("records", &self.shard.records.len())
            .finish()
    }
}

//! The virtual-clock serving loop: arrivals → admission → scheduling →
//! mixed prefill/decode ticks.
//!
//! One [`Server::tick`] is one virtual-clock step, aligned with one
//! batched engine tick:
//!
//! 1. **Arrivals** due at the current tick are screened — requests whose
//!    peak KV footprint can never fit are rejected immediately, as are
//!    arrivals beyond the queue-depth limit; the rest wait in the queue.
//!    A prompt with a known shared prefix (the engine's prefix cache
//!    already holds a matching entry) is screened and reserved at its
//!    *unshared* peak only — the shared span is resident once, in the
//!    cache entry — so shared-prefix traffic admits more concurrent
//!    sessions under the same capacity. The discount applies only to
//!    eviction-free requests with budget shrinking off, and the cache's
//!    own bytes are charged against admission headroom (see the
//!    [`crate::admission`] module docs for the soundness argument).
//! 2. **Swap-in completion**: preempted sessions whose host-link swap-in
//!    finished (its cycles, accumulated against the engine's per-tick
//!    cycle counts, have elapsed) rejoin the batch. Swap latency is
//!    *serialized into the clock*: a resumed session re-enters the batch
//!    at least one tick after its swap-in starts, later for large KV
//!    states or slow links.
//! 3. **Swap-in start**: preempted sessions whose reservation fits again
//!    re-reserve their bytes and begin their swap-in transfer.
//! 4. **Admission**: the scheduling policy repeatedly names the next
//!    queued candidate; each is admitted if its peak reservation fits,
//!    after preempting victims (swap-out) if the policy offers any. The
//!    first candidate that still does not fit blocks the queue — no
//!    backfill, so a policy's ordering is exactly what runs. Admission
//!    calls [`veda::Engine::submit`], which only validates, reserves KV
//!    and enqueues the session in its `Prefilling` phase — with a finite
//!    [`veda::EngineBuilder::prefill_chunk`] the prompt is then consumed
//!    on the clock, so TTFT and queueing percentiles measure real
//!    prefill work rather than a fictional instant prefill.
//! 5. **Step**: the engine advances every decoding session one token and
//!    every prefilling session one prompt chunk; first-token and
//!    completion ticks are recorded per request, and completions notify
//!    closed-loop workloads.
//! 6. Optionally, a [`BudgetController`] responds to high KV occupancy by
//!    tightening session budgets (the opt-in alternative to preemption —
//!    it changes generated tokens, preemption never does).
//!
//! Idle spans with no queued work fast-forward the clock to the next
//! arrival (and the cycle counter to the next swap-in completion), so
//! sparse workloads cost nothing to simulate.

use std::collections::VecDeque;

use veda::{Engine, Request, Session, TokenEvent};
use veda_eviction::BudgetController;
use veda_mem::{HostLink, HostLinkConfig, SwapDirection};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::report::{RequestRecord, ServingReport};
use crate::scheduler::{QueuedView, RunningView, SchedKind, SchedulerPolicy};
use crate::workload::{ServingRequest, Workload};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission accounting (capacity, queue depth).
    pub admission: AdmissionConfig,
    /// Host-link model for KV swap traffic.
    pub host_link: HostLinkConfig,
    /// Scheduling policy.
    pub sched: SchedKind,
    /// Optional budget-shrink pressure response. `None` (the default)
    /// leaves preemption as the only pressure response and keeps every
    /// request's token stream identical to an uncontended run.
    pub shrink: Option<BudgetController>,
    /// Safety valve: the run stops after this many virtual ticks even if
    /// work remains (the report then covers the truncated horizon).
    pub max_ticks: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            host_link: HostLinkConfig::default(),
            sched: SchedKind::Fcfs,
            shrink: None,
            max_ticks: 1_000_000,
        }
    }
}

/// A request waiting for admission.
#[derive(Debug)]
struct QueuedEntry {
    record: usize,
    request: Request,
    priority: u8,
    est_bytes: u64,
}

/// An admitted session — in the `running` set it is prefilling/decoding,
/// in the `paused` set its KV state lives on the host until resumed, in
/// the `swapping` set its KV state is in flight back over the host link.
#[derive(Debug)]
struct SessionEntry {
    record: usize,
    session: Session,
    priority: u8,
    est_bytes: u64,
    /// Current resident-token cap (tracked for budget shrinking).
    cap: usize,
}

/// A preempted session whose KV state is moving back over the host link;
/// it rejoins the batch once the engine's cycle clock reaches `ready_at`.
#[derive(Debug)]
struct SwapInEntry {
    entry: SessionEntry,
    /// Engine-cycle timestamp at which the swap-in transfer completes.
    ready_at: u64,
}

/// The serving loop (see the [module docs](self)).
pub struct Server {
    engine: Engine,
    workload: Workload,
    admission: AdmissionController,
    policy: Box<dyn SchedulerPolicy>,
    link: HostLink,
    shrink: Option<BudgetController>,
    max_ticks: u64,
    kv_bytes_per_token: u64,
    now: u64,
    /// Engine cycles elapsed so far (sum of executed tick batch cycles) —
    /// the clock swap-in completions are timed against.
    elapsed_cycles: u64,
    queue: VecDeque<QueuedEntry>,
    running: Vec<SessionEntry>,
    paused: Vec<SessionEntry>,
    swapping: Vec<SwapInEntry>,
    records: Vec<RequestRecord>,
    queue_depth: Vec<usize>,
    admitted: usize,
    rejected_never_fits: usize,
    rejected_queue_full: usize,
    rejected_invalid: usize,
    preemptions: u64,
    resumes: u64,
    swap_wait_ticks: u64,
    budget_shrinks: u64,
    decode_ticks: u64,
    kv_resident_peak: u64,
    kv_reserved_peak: u64,
}

impl Server {
    /// Creates a server over an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the engine already has in-flight sessions.
    pub fn new(engine: Engine, workload: Workload, config: ServerConfig) -> Self {
        assert!(
            engine.active_sessions() == 0 && engine.paused_sessions() == 0,
            "server requires an idle engine"
        );
        let kv_bytes_per_token = engine.kv_bytes_per_token();
        Self {
            engine,
            workload,
            admission: AdmissionController::new(config.admission),
            policy: config.sched.build(),
            link: HostLink::new(config.host_link),
            shrink: config.shrink,
            max_ticks: config.max_ticks,
            kv_bytes_per_token,
            now: 0,
            elapsed_cycles: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            paused: Vec::new(),
            swapping: Vec::new(),
            records: Vec::new(),
            queue_depth: Vec::new(),
            admitted: 0,
            rejected_never_fits: 0,
            rejected_queue_full: 0,
            rejected_invalid: 0,
            preemptions: 0,
            resumes: 0,
            swap_wait_ticks: 0,
            budget_shrinks: 0,
            decode_ticks: 0,
            kv_resident_peak: 0,
            kv_reserved_peak: 0,
        }
    }

    /// The current virtual-clock tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Requests that have arrived so far.
    pub fn submitted(&self) -> usize {
        self.records.len()
    }

    /// Requests finished so far.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.finished.is_some()).count()
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected_never_fits + self.rejected_queue_full + self.rejected_invalid
    }

    /// Requests currently queued, prefilling/decoding, preempted, or
    /// swapping back in.
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.running.len() + self.paused.len() + self.swapping.len()
    }

    /// KV bytes currently reserved by admission control.
    pub fn reserved_bytes(&self) -> u64 {
        self.admission.reserved_bytes()
    }

    /// The configured device KV capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.admission.config().capacity_bytes
    }

    /// Whether all work (arrived and future) is finished.
    pub fn is_done(&self) -> bool {
        self.workload.exhausted() && self.in_flight() == 0
    }

    /// Executes one virtual-clock tick (see the [module docs](self)).
    pub fn tick(&mut self) {
        for arrival in self.workload.take_arrivals(self.now) {
            self.accept(arrival);
        }
        self.complete_swap_ins();
        self.start_swap_ins();
        self.admit_from_queue();

        let mut stepped_cycles = 0;
        if self.engine.active_sessions() > 0 {
            let tick = self.engine.step();
            self.decode_ticks += 1;
            stepped_cycles = tick.batch_cycles;
            // Device-resident KV = session-owned bytes plus the prefix
            // cache's entries (each counted once).
            self.kv_resident_peak =
                self.kv_resident_peak.max(tick.kv_bytes_resident + self.engine.prefix_cache_bytes());
            for event in &tick.events {
                self.observe(event);
            }
            self.apply_pressure();
        }
        self.elapsed_cycles += stepped_cycles;
        self.swap_wait_ticks += self.swapping.len() as u64;
        if stepped_cycles == 0 && !self.swapping.is_empty() {
            // Nothing decoded this tick but swap-ins are in flight:
            // fast-forward the cycle clock to the earliest completion so
            // the run cannot stall on an otherwise idle engine.
            let earliest = self.swapping.iter().map(|s| s.ready_at).min().expect("non-empty");
            self.elapsed_cycles = self.elapsed_cycles.max(earliest);
        }
        self.kv_reserved_peak = self.kv_reserved_peak.max(self.admission.reserved_bytes());
        self.queue_depth.push(self.queue.len());

        self.now += 1;
        // Fast-forward idle spans to the next arrival.
        if self.in_flight() == 0 {
            if let Some(next) = self.workload.next_arrival_tick() {
                self.now = self.now.max(next);
            }
        }
    }

    /// Runs the workload to completion (or the `max_ticks` safety valve)
    /// and produces the [`ServingReport`].
    pub fn run(mut self) -> ServingReport {
        while !self.is_done() && self.now < self.max_ticks {
            self.tick();
        }
        self.into_report()
    }

    /// Checks a request is one the engine will accept (trace workloads
    /// may carry arbitrary requests; generated mixes always pass).
    fn validate(&self, request: &Request) -> Result<(), crate::admission::RejectReason> {
        let vocab = self.engine.model_config().vocab_size;
        let ok = !request.prompt.is_empty()
            && request.max_new_tokens > 0
            && request.prompt.iter().all(|&t| t < vocab)
            && request.budget.validate().is_ok();
        if ok {
            Ok(())
        } else {
            Err(crate::admission::RejectReason::Invalid)
        }
    }

    /// HBM bytes the engine's prefix cache itself keeps resident (each
    /// entry counted once). Subtracted from admission headroom so cached
    /// prefixes are never free capacity (see `veda_serving::admission`).
    fn prefix_overhead(&self) -> u64 {
        self.engine.prefix_cache_bytes()
    }

    /// Screens one arrival into the queue or a rejection record. A prompt
    /// with a known shared prefix reserves only its *unshared* peak bytes
    /// — the shared span stays resident in the engine's prefix cache —
    /// provided the discount is sound for this request: the match can
    /// only grow between this estimate and the actual submit (entries
    /// are insert-only), only requests that can never evict
    /// ([`veda::Request::never_evicts`]) qualify (an eviction inside the
    /// shared span would privatize it and push the session past a
    /// discounted reservation), and budget shrinking must be off —
    /// [`veda::Engine::tighten_budget`] can force even an
    /// unbounded-budget session to evict, retroactively breaking the
    /// never-evicts promise.
    fn accept(&mut self, arrival: ServingRequest) {
        let ServingRequest { request, priority } = arrival;
        let index = self.records.len();
        let discount_sound = request.never_evicts() && self.shrink.is_none();
        let shared_tokens = if discount_sound { self.engine.prefix_match_len(&request.prompt) } else { 0 };
        let est_bytes =
            AdmissionController::estimate_unshared_bytes(&request, shared_tokens, self.kv_bytes_per_token);
        let mut record = RequestRecord {
            arrival: index,
            session: None,
            priority,
            submitted: self.now,
            admitted: None,
            first_token: None,
            finished: None,
            generated_tokens: 0,
            preemptions: 0,
            rejected: None,
        };
        let screened =
            self.validate(&request).and_then(|()| self.admission.screen(est_bytes, self.queue.len()));
        match screened {
            Ok(()) => {
                self.queue.push_back(QueuedEntry { record: index, request, priority, est_bytes });
            }
            Err(reason) => {
                record.rejected = Some(reason);
                match reason {
                    crate::admission::RejectReason::NeverFits => self.rejected_never_fits += 1,
                    crate::admission::RejectReason::QueueFull => self.rejected_queue_full += 1,
                    crate::admission::RejectReason::Invalid => self.rejected_invalid += 1,
                }
                // A rejection disposes of the request: without this, a
                // closed-loop user whose request was rejected would never
                // submit again and the run could not drain.
                self.workload.notify_completion(self.now);
            }
        }
        self.records.push(record);
    }

    /// Re-admits swapped-in sessions whose host-link transfer has
    /// completed (its cycles have elapsed on the engine clock), oldest
    /// swap first. The session's bytes were re-reserved and the transfer
    /// charged when the swap *started* ([`Server::start_swap_ins`]); this
    /// is where the latency finally releases the session into the batch.
    fn complete_swap_ins(&mut self) {
        let mut i = 0;
        while i < self.swapping.len() {
            if self.swapping[i].ready_at <= self.elapsed_cycles {
                let SwapInEntry { entry, .. } = self.swapping.remove(i);
                self.engine.resume(entry.session).expect("swapping entry tracks the engine");
                self.running.push(entry);
            } else {
                i += 1;
            }
        }
    }

    /// Starts swapping preempted sessions back in while their
    /// reservations fit, oldest preemption first. The reservation is
    /// taken and the host-link transfer charged immediately (the space
    /// must be held for the DMA), but the session only rejoins the batch
    /// once the transfer's cycles have elapsed — swap latency is
    /// serialized into the clock, not instantaneous.
    fn start_swap_ins(&mut self) {
        let mut i = 0;
        while i < self.paused.len() {
            if self.admission.would_fit(self.paused[i].est_bytes.saturating_add(self.prefix_overhead())) {
                let entry = self.paused.remove(i);
                let bytes =
                    self.engine.session_kv_bytes(entry.session).expect("paused entry tracks the engine");
                let cycles = self.link.transfer(bytes, SwapDirection::In);
                self.admission.reserve(entry.est_bytes);
                self.resumes += 1;
                self.swapping.push(SwapInEntry { entry, ready_at: self.elapsed_cycles + cycles });
            } else {
                i += 1;
            }
        }
    }

    fn queued_view(&self, entry: &QueuedEntry) -> QueuedView {
        QueuedView {
            arrival: entry.record,
            submitted: self.records[entry.record].submitted,
            priority: entry.priority,
            total_tokens: entry.request.max_new_tokens,
            est_bytes: entry.est_bytes,
        }
    }

    fn running_views(&self) -> Vec<RunningView> {
        self.running
            .iter()
            .map(|entry| RunningView {
                arrival: entry.record,
                priority: entry.priority,
                remaining_tokens: self
                    .engine
                    .session_remaining_tokens(entry.session)
                    .expect("running entry tracks the engine"),
                est_bytes: entry.est_bytes,
                preemptions: self.records[entry.record].preemptions,
            })
            .collect()
    }

    /// Admits scheduler-ordered candidates until one does not fit (even
    /// after any preemption the policy offers).
    fn admit_from_queue(&mut self) {
        while !self.queue.is_empty() {
            let views: Vec<QueuedView> = self.queue.iter().map(|e| self.queued_view(e)).collect();
            let Some(pick) = self.policy.next_candidate(&views) else { break };
            let incoming = views[pick];
            // Admission must fit the reservation *and* the prefix cache's
            // own resident bytes inside capacity.
            let needed = incoming.est_bytes.saturating_add(self.prefix_overhead());
            while !self.admission.would_fit(needed) {
                let victims = self.running_views();
                let Some(victim) = self.policy.preemption_victim(&incoming, &victims) else { break };
                self.preempt(victim);
            }
            if !self.admission.would_fit(needed) {
                break;
            }
            let entry = self.queue.remove(pick).expect("pick indexes the queue");
            self.policy.on_admitted(&incoming);
            self.admit(entry);
        }
    }

    /// Pauses the running session at `index` and swaps its KV state out.
    fn preempt(&mut self, index: usize) {
        let entry = self.running.remove(index);
        let bytes = self.engine.pause(entry.session).expect("running entry tracks the engine");
        self.link.transfer(bytes, SwapDirection::Out);
        self.admission.release(entry.est_bytes);
        self.records[entry.record].preemptions += 1;
        self.preemptions += 1;
        self.paused.push(entry);
    }

    /// Submits a queued request into the engine. The engine only
    /// validates, reserves KV and enqueues the session in its
    /// `Prefilling` phase; with a finite
    /// [`veda::EngineBuilder::prefill_chunk`] the prompt is consumed by
    /// subsequent on-clock ticks (instant prefill consumes it here,
    /// synchronously, as the pre-chunking stack did).
    fn admit(&mut self, entry: QueuedEntry) {
        let prompt_len = entry.request.prompt.len();
        let peak_tokens = AdmissionController::peak_resident_tokens(&entry.request);
        let cap = entry.request.budget.resolve(prompt_len).min(peak_tokens);
        let session = self.engine.submit(entry.request).expect("accept() validated the request");
        self.admission.reserve(entry.est_bytes);
        self.admitted += 1;
        let record = &mut self.records[entry.record];
        record.session = Some(session);
        record.admitted = Some(self.now);
        debug_assert!(self.engine.is_active(session), "validated requests have max_new_tokens >= 1");
        self.running.push(SessionEntry {
            record: entry.record,
            session,
            priority: entry.priority,
            est_bytes: entry.est_bytes,
            cap,
        });
    }

    /// Applies one session's tick event to its record. Prefill progress
    /// only moves the clock (the record's first-token tick stays unset —
    /// that is exactly what makes TTFT real under chunked prefill);
    /// generated tokens update the record, and completions release their
    /// reservation and notify closed-loop workloads.
    fn observe(&mut self, event: &TokenEvent) {
        let TokenEvent::Generated { session, finished, .. } = *event else {
            return;
        };
        let index = self
            .running
            .iter()
            .position(|r| r.session == session)
            .expect("every stepped session has a running entry");
        let record = &mut self.records[self.running[index].record];
        record.generated_tokens += 1;
        if record.first_token.is_none() {
            record.first_token = Some(self.now);
        }
        if finished {
            record.finished = Some(self.now);
            let entry = self.running.remove(index);
            self.admission.release(entry.est_bytes);
            self.workload.notify_completion(self.now);
        }
    }

    /// Budget-shrink pressure response (opt-in, see [`ServerConfig`]).
    fn apply_pressure(&mut self) {
        let Some(controller) = self.shrink else { return };
        let resident = self.engine.kv_bytes_active();
        let factor = controller.shrink_factor(resident, self.capacity_bytes());
        if factor >= 1.0 {
            return;
        }
        for entry in &mut self.running {
            let new_cap = controller.shrunk_cap(entry.cap, factor);
            if new_cap < entry.cap {
                self.engine.tighten_budget(entry.session, new_cap);
                entry.cap = new_cap;
                self.budget_shrinks += 1;
            }
        }
    }

    /// Drains the engine and assembles the report.
    fn into_report(mut self) -> ServingReport {
        // Safety valve: a truncated run still drains the engine so the
        // batched accounting is complete and well-formed.
        let swapping: Vec<SwapInEntry> = std::mem::take(&mut self.swapping);
        for swap in swapping {
            self.engine.resume(swap.entry.session).expect("swapping entry tracks the engine");
        }
        let paused: Vec<SessionEntry> = std::mem::take(&mut self.paused);
        for entry in paused {
            self.engine.resume(entry.session).expect("paused entry tracks the engine");
        }
        let engine = self.engine.run_to_completion();
        ServingReport {
            arrival: self.workload.kind(),
            sched: self.policy.kind(),
            ticks: self.now,
            decode_ticks: self.decode_ticks,
            submitted: self.records.len(),
            admitted: self.admitted,
            completed: self.records.iter().filter(|r| r.finished.is_some()).count(),
            rejected_never_fits: self.rejected_never_fits,
            rejected_queue_full: self.rejected_queue_full,
            rejected_invalid: self.rejected_invalid,
            preemptions: self.preemptions,
            resumes: self.resumes,
            swap_out_bytes: self.link.bytes(SwapDirection::Out),
            swap_in_bytes: self.link.bytes(SwapDirection::In),
            swap_cycles: self.link.total_cycles(),
            swap_wait_ticks: self.swap_wait_ticks,
            budget_shrinks: self.budget_shrinks,
            queue_depth: self.queue_depth,
            kv_resident_peak_bytes: self.kv_resident_peak,
            kv_reserved_peak_bytes: self.kv_reserved_peak,
            capacity_bytes: self.admission.config().capacity_bytes,
            records: self.records,
            engine,
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("running", &self.running.len())
            .field("paused", &self.paused.len())
            .field("swapping", &self.swapping.len())
            .field("records", &self.records.len())
            .finish()
    }
}

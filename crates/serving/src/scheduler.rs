//! Scheduling policies: which queued request is admitted next, and which
//! running session (if any) is preempted to make room for it.
//!
//! Policies are deliberately small, deterministic decision functions over
//! read-only views of the queue and the running set; the [`crate::Server`]
//! owns all state transitions (reserve/release, swap, pause/resume), so a
//! policy bug cannot corrupt accounting. Preemptive policies bound the
//! times any one session may be preempted ([`MAX_PREEMPTIONS`]) so a
//! stream of short requests cannot starve a long one forever.

/// Times one session may be preempted before it becomes unevictable.
pub const MAX_PREEMPTIONS: u32 = 2;

/// Read-only view of one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedView {
    /// Arrival index (global submission order) — the deterministic
    /// tiebreaker.
    pub arrival: usize,
    /// Tick the request was submitted.
    pub submitted: u64,
    /// Priority tier, higher is more important.
    pub priority: u8,
    /// Tokens the request wants to generate.
    pub total_tokens: usize,
    /// Peak KV bytes the request will reserve.
    pub est_bytes: u64,
}

/// Read-only view of one running (admitted, active) session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningView {
    /// Arrival index of the underlying request.
    pub arrival: usize,
    /// Priority tier.
    pub priority: u8,
    /// Tokens the session may still generate.
    pub remaining_tokens: usize,
    /// Peak KV bytes reserved for the session.
    pub est_bytes: u64,
    /// Times this session has already been preempted.
    pub preemptions: u32,
}

/// The built-in scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// First come, first served; never preempts.
    Fcfs,
    /// Round-robin over the queue by arrival index; never preempts.
    RoundRobin,
    /// Shortest remaining budget first; preempts the running session with
    /// the most remaining tokens when a strictly shorter request waits.
    Srb,
    /// Priority tiers (FCFS within a tier); preempts the lowest-priority
    /// running session for a strictly higher-priority request.
    Priority,
}

impl SchedKind {
    /// All kinds, in presentation order.
    pub const ALL: [SchedKind; 4] =
        [SchedKind::Fcfs, SchedKind::RoundRobin, SchedKind::Srb, SchedKind::Priority];

    /// Stable identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedKind::Fcfs => "fcfs",
            SchedKind::RoundRobin => "round_robin",
            SchedKind::Srb => "srb",
            SchedKind::Priority => "priority",
        }
    }

    /// Builds the policy.
    pub fn build(self) -> Box<dyn SchedulerPolicy> {
        match self {
            SchedKind::Fcfs => Box::new(Fcfs),
            SchedKind::RoundRobin => Box::new(RoundRobin { cursor: 0 }),
            SchedKind::Srb => Box::new(ShortestRemainingBudget),
            SchedKind::Priority => Box::new(PriorityTiers),
        }
    }
}

impl std::fmt::Display for SchedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`SchedKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchedKindError(String);

impl std::fmt::Display for ParseSchedKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown scheduler {:?} (expected one of: fcfs, round_robin, srb, priority)", self.0)
    }
}

impl std::error::Error for ParseSchedKindError {}

impl std::str::FromStr for SchedKind {
    type Err = ParseSchedKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String =
            s.trim().to_ascii_lowercase().chars().filter(|c| !matches!(c, '-' | '_' | ' ')).collect();
        match normalized.as_str() {
            "fcfs" | "fifo" => Ok(SchedKind::Fcfs),
            "roundrobin" | "rr" => Ok(SchedKind::RoundRobin),
            "srb" | "shortest" | "sjf" => Ok(SchedKind::Srb),
            "priority" | "prio" | "tiers" => Ok(SchedKind::Priority),
            _ => Err(ParseSchedKindError(s.to_string())),
        }
    }
}

/// A scheduling decision function (see the [module docs](self)).
pub trait SchedulerPolicy {
    /// Which policy this is.
    fn kind(&self) -> SchedKind;

    /// Index into `queued` of the request to try admitting next, or
    /// `None` to admit nothing this round. `queued` is never empty.
    /// Must not assume the pick is admitted — a candidate that does not
    /// fit blocks the queue and will be offered again next tick; the
    /// server confirms successful admissions via
    /// [`SchedulerPolicy::on_admitted`].
    fn next_candidate(&mut self, queued: &[QueuedView]) -> Option<usize>;

    /// Notification that `admitted` (a previous [`next_candidate`] pick)
    /// actually entered the engine. Stateful orderings (round-robin)
    /// advance here, so a blocked pick is retried rather than bypassed.
    ///
    /// [`next_candidate`]: SchedulerPolicy::next_candidate
    fn on_admitted(&mut self, admitted: &QueuedView) {
        let _ = admitted;
    }

    /// Index into `running` of the session to preempt so `incoming` can
    /// be admitted, or `None` to let `incoming` wait. Only consulted when
    /// `incoming` does not fit; the server may call it repeatedly until
    /// enough bytes are freed.
    fn preemption_victim(&self, incoming: &QueuedView, running: &[RunningView]) -> Option<usize> {
        let _ = (incoming, running);
        None
    }
}

/// First come, first served.
struct Fcfs;

impl SchedulerPolicy for Fcfs {
    fn kind(&self) -> SchedKind {
        SchedKind::Fcfs
    }

    fn next_candidate(&mut self, queued: &[QueuedView]) -> Option<usize> {
        position_min_by_key(queued, |q| (q.submitted, q.arrival))
    }
}

/// Round-robin over arrival indices.
struct RoundRobin {
    /// Arrival index after which the next pick starts.
    cursor: usize,
}

impl SchedulerPolicy for RoundRobin {
    fn kind(&self) -> SchedKind {
        SchedKind::RoundRobin
    }

    fn next_candidate(&mut self, queued: &[QueuedView]) -> Option<usize> {
        // First queued arrival strictly beyond the cursor, wrapping to the
        // smallest when the cursor passed everyone. The cursor moves only
        // in `on_admitted`, so a pick that fails to fit is retried (not
        // bypassed) next round.
        let beyond = queued
            .iter()
            .enumerate()
            .filter(|(_, q)| q.arrival > self.cursor)
            .min_by_key(|(_, q)| q.arrival)
            .map(|(i, _)| i);
        beyond.or_else(|| position_min_by_key(queued, |q| q.arrival))
    }

    fn on_admitted(&mut self, admitted: &QueuedView) {
        self.cursor = admitted.arrival;
    }
}

/// Shortest remaining budget (SJF over generation limits), preemptive.
struct ShortestRemainingBudget;

impl SchedulerPolicy for ShortestRemainingBudget {
    fn kind(&self) -> SchedKind {
        SchedKind::Srb
    }

    fn next_candidate(&mut self, queued: &[QueuedView]) -> Option<usize> {
        position_min_by_key(queued, |q| (q.total_tokens, q.arrival))
    }

    fn preemption_victim(&self, incoming: &QueuedView, running: &[RunningView]) -> Option<usize> {
        // Preempt the session with the most remaining work, but only for a
        // strictly shorter request — equal-length churn is pure swap cost.
        running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.remaining_tokens > incoming.total_tokens && r.preemptions < MAX_PREEMPTIONS)
            .max_by_key(|(_, r)| (r.remaining_tokens, std::cmp::Reverse(r.arrival)))
            .map(|(i, _)| i)
    }
}

/// Priority tiers, preemptive.
struct PriorityTiers;

impl SchedulerPolicy for PriorityTiers {
    fn kind(&self) -> SchedKind {
        SchedKind::Priority
    }

    fn next_candidate(&mut self, queued: &[QueuedView]) -> Option<usize> {
        // Highest tier first, FCFS within a tier.
        position_min_by_key(queued, |q| (std::cmp::Reverse(q.priority), q.submitted, q.arrival))
    }

    fn preemption_victim(&self, incoming: &QueuedView, running: &[RunningView]) -> Option<usize> {
        // Lowest tier first; most remaining work breaks ties (it has the
        // least sunk cost per byte freed).
        running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.priority < incoming.priority && r.preemptions < MAX_PREEMPTIONS)
            .min_by_key(|(_, r)| (r.priority, std::cmp::Reverse(r.remaining_tokens), r.arrival))
            .map(|(i, _)| i)
    }
}

fn position_min_by_key<T, K: Ord>(items: &[T], key: impl Fn(&T) -> K) -> Option<usize> {
    items.iter().enumerate().min_by_key(|(_, item)| key(item)).map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(arrival: usize, submitted: u64, priority: u8, tokens: usize) -> QueuedView {
        QueuedView { arrival, submitted, priority, total_tokens: tokens, est_bytes: 100 }
    }

    fn running(arrival: usize, priority: u8, remaining: usize, preemptions: u32) -> RunningView {
        RunningView { arrival, priority, remaining_tokens: remaining, est_bytes: 100, preemptions }
    }

    #[test]
    fn kinds_roundtrip_and_aliases() {
        for kind in SchedKind::ALL {
            assert_eq!(kind.as_str().parse::<SchedKind>().unwrap(), kind);
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!("rr".parse::<SchedKind>().unwrap(), SchedKind::RoundRobin);
        assert_eq!("round-robin".parse::<SchedKind>().unwrap(), SchedKind::RoundRobin);
        assert!("lifo".parse::<SchedKind>().is_err());
    }

    #[test]
    fn fcfs_picks_earliest_submission() {
        let mut p = SchedKind::Fcfs.build();
        let q = [queued(2, 5, 0, 4), queued(0, 1, 0, 9), queued(1, 1, 2, 2)];
        assert_eq!(p.next_candidate(&q), Some(1), "earliest submitted, lowest arrival on tie");
        assert_eq!(p.preemption_victim(&q[0], &[running(0, 0, 50, 0)]), None, "fcfs never preempts");
    }

    #[test]
    fn round_robin_cycles_over_admitted_arrivals() {
        let mut p = SchedKind::RoundRobin.build();
        let q = [queued(3, 0, 0, 4), queued(7, 0, 0, 4), queued(5, 0, 0, 4)];
        let admit = |p: &mut Box<dyn SchedulerPolicy>| {
            let pick = p.next_candidate(&q).unwrap();
            p.on_admitted(&q[pick]);
            pick
        };
        assert_eq!(admit(&mut p), 0, "first pass starts at the smallest arrival");
        assert_eq!(admit(&mut p), 2, "then the next larger arrival");
        assert_eq!(admit(&mut p), 1);
        assert_eq!(admit(&mut p), 0, "wraps around");
    }

    #[test]
    fn round_robin_retries_a_blocked_pick() {
        let mut p = SchedKind::RoundRobin.build();
        let q = [queued(3, 0, 0, 4), queued(5, 0, 0, 4)];
        assert_eq!(p.next_candidate(&q), Some(0));
        // Not admitted (didn't fit): the same candidate is offered again
        // instead of being bypassed by a later arrival.
        assert_eq!(p.next_candidate(&q), Some(0), "blocked pick must be retried");
        p.on_admitted(&q[0]);
        assert_eq!(p.next_candidate(&q), Some(1), "cursor advances only on admission");
    }

    #[test]
    fn srb_prefers_short_requests_and_preempts_long_sessions() {
        let mut p = SchedKind::Srb.build();
        let q = [queued(0, 0, 0, 12), queued(1, 3, 0, 4)];
        assert_eq!(p.next_candidate(&q), Some(1), "shorter request wins despite later arrival");

        let r = [running(0, 0, 3, 0), running(1, 0, 20, 0), running(2, 0, 20, MAX_PREEMPTIONS)];
        assert_eq!(p.preemption_victim(&q[1], &r), Some(1), "most remaining, preemptable");
        let only_short = [running(0, 0, 4, 0)];
        assert_eq!(p.preemption_victim(&q[1], &only_short), None, "equal length never preempts");
    }

    #[test]
    fn priority_prefers_high_tiers_and_preempts_low() {
        let mut p = SchedKind::Priority.build();
        let q = [queued(0, 0, 0, 4), queued(1, 5, 2, 4)];
        assert_eq!(p.next_candidate(&q), Some(1), "higher tier wins despite later submission");

        let incoming = queued(2, 6, 2, 4);
        let r = [running(0, 2, 9, 0), running(1, 0, 3, 0), running(2, 0, 8, 0)];
        assert_eq!(p.preemption_victim(&incoming, &r), Some(2), "lowest tier, most remaining");
        let peers = [running(0, 2, 9, 0)];
        assert_eq!(p.preemption_victim(&incoming, &peers), None, "equal tier never preempts");
    }

    #[test]
    fn preemption_counter_bounds_churn() {
        let p = SchedKind::Priority.build();
        let incoming = queued(9, 0, 2, 4);
        let r = [running(0, 0, 9, MAX_PREEMPTIONS)];
        assert_eq!(p.preemption_victim(&incoming, &r), None);
    }
}

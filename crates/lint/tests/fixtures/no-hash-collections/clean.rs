//! Fixture: ordered collections, plus decoys the lexer must not trip on:
//! a HashMap in this doc comment, one in a string, one in a test module.
use std::collections::BTreeMap;

/// Deterministic iteration order.
pub fn histogram(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut h = BTreeMap::new();
    let _doc = "HashMap in a string literal is fine";
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scratch_map_is_exempt() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
    }
}

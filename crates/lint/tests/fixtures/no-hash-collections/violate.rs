//! Fixture: a HashMap in library code.
use std::collections::HashMap;

/// Nondeterministic iteration order lives here.
pub fn histogram(xs: &[u32]) -> HashMap<u32, usize> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

//! Fixture: an excused HashMap.

/// An interned scratch table that is never iterated.
pub fn lookup(keys: &[u32]) -> usize {
    // lint:allow(no-hash-collections): never iterated, lookup-only scratch table in a fixture
    let m: std::collections::HashMap<u32, u32> = keys.iter().map(|&k| (k, k)).collect();
    m.len()
}

//! Fixture: a wall-clock read in a virtual-clock crate.
use std::time::Instant;

/// Leaks host speed into behavior.
pub fn ticks() -> u128 {
    Instant::now().elapsed().as_nanos()
}

//! Fixture: virtual time only. `Instant` in this doc comment is fine.

/// A virtual clock advanced by the engine, never by the host.
pub fn advance(now: u64, cycles: u64) -> u64 {
    now + cycles
}

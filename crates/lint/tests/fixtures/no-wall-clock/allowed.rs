//! Fixture: an excused wall-clock read.

/// Coarse startup banner timing, never reaches any report.
pub fn banner_nanos() -> u128 {
    // lint:allow(no-wall-clock): display-only startup banner, value never reaches a report
    std::time::Instant::now().elapsed().as_nanos()
}

//! Fixture: a crate root carrying both hygiene headers.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Public and documented under the crate-level pins.
pub fn noop() {}

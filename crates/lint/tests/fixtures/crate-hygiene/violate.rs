//! Fixture: a crate root with neither hygiene header.

/// Public and documented, but the crate-level pins are missing.
pub fn noop() {}

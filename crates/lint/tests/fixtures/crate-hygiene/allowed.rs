//! Fixture: a crate root excused from the hygiene headers.

// lint:allow(crate-hygiene): fixture models a shim-like crate mirroring an external undocumented API
/// Still documented, but the crate-level pins are waived.
pub fn noop() {}

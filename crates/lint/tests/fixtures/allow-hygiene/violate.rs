//! Fixture: every way an allow can go wrong.

/// Unknown rule, missing reason, and a stale directive.
pub fn f() -> u32 {
    // lint:allow(no-such-rule): the rule name is wrong
    let a = 1;
    // lint:allow(no-wall-clock)
    let b = std::time::Instant::now().elapsed().subsec_nanos();
    // lint:allow(no-hash-collections): nothing here to excuse
    a + b
}

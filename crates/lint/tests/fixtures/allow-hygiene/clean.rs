//! Fixture: a well-formed, live, explained allow.

/// One excused wall-clock read.
pub fn f() -> u32 {
    // lint:allow(no-wall-clock): fixture exercising a live well-formed directive
    std::time::Instant::now().elapsed().subsec_nanos()
}

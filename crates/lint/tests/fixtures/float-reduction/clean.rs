//! Fixture: integer reductions and float field accesses stay clean.

/// Integer sums are order-insensitive.
pub fn total(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

/// An explicit integer turbofish next to f64 casts is still integer math.
pub fn mean_depth(depths: &[usize]) -> f64 {
    depths.iter().sum::<usize>() as f64 / depths.len().max(1) as f64
}

/// A struct with a field named `sum` (field access is not a reduction).
pub struct Acc {
    /// Accumulated value.
    pub sum: u64,
}

/// Reads the field.
pub fn read(acc: &Acc) -> f64 {
    acc.sum as f64
}

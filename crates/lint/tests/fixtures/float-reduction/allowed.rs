//! Fixture: an excused float reduction.

/// Order-insensitive min-fold.
pub fn tightest(fractions: &[f64]) -> f64 {
    fractions
        .iter()
        .copied()
        // lint:allow(float-reduction): f64::min fold is order-insensitive, not a summation
        .fold(1.0, f64::min)
}

//! Fixture: an inline float summation outside veda-tensor.

/// Re-associating this sum would change the bits.
pub fn mass(probs: &[f32]) -> f32 {
    let total: f32 = probs.iter().sum();
    total
}

//! Fixture: three panic sites (one of each kind) for the counter.

/// unwrap + expect + indexing = 3 ratcheted sites.
pub fn risky(xs: &[u32]) -> u32 {
    let a = xs.first().unwrap();
    let b: u32 = "7".parse().expect("digit");
    xs[0] + a + b
}

//! Fixture: the same logic with no panic surface.

/// Errors are values; indexing is checked.
pub fn safe(xs: &[u32]) -> Option<u32> {
    let a = xs.first()?;
    let b: u32 = "7".parse().ok()?;
    Some(xs.first()? + a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwraps_are_not_counted() {
        super::safe(&[1]).unwrap();
        let v = vec![1, 2];
        assert_eq!(v[0], 1);
    }
}

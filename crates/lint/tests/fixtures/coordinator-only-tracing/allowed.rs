//! Fixture: an excused worker-side trace token.

/// A worker carries a disabled tracer handle it never emits through.
pub fn tick(sessions: &mut [Session]) {
    std::thread::scope(|scope| {
        for s in sessions.iter_mut() {
            // lint:allow(coordinator-only-tracing): handle is disabled in workers, checked by telemetry_stack tests
            let t: Option<Tracer> = None;
            scope.spawn(move || advance(s, t));
        }
    });
}

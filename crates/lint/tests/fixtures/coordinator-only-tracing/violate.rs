//! Fixture: trace emission from inside a worker closure.

/// Workers racing to emit would make trace bytes thread-dependent.
pub fn tick(tracer: &Tracer, sessions: &mut [Session]) {
    std::thread::scope(|scope| {
        for s in sessions.iter_mut() {
            scope.spawn(move || {
                tracer.emit(0, s.id, TraceEventKind::Finished);
            });
        }
    });
}

//! Fixture: emission stays on the coordinator; workers only compute.

/// The coordinator drains outcomes after the scope joins.
pub fn tick(tracer: &Tracer, sessions: &mut [Session]) {
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> =
            sessions.chunks_mut(2).map(|chunk| scope.spawn(move || advance(chunk))).collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect::<Vec<_>>()
    });
    for outcome in outcomes {
        tracer.emit(0, outcome, TraceEventKind::Finished);
    }
}

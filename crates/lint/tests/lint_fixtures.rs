//! Fixture suite: every rule exercised in both directions against the
//! deliberately-violating corpus under `tests/fixtures/` (which the
//! workspace walker skips — directories named `fixtures` are never part
//! of the live audit).
//!
//! Layout: `fixtures/<rule>/{violate,clean,allowed}.rs`. `violate` must
//! fire exactly that rule; `clean` must lint spotless; `allowed` must be
//! silenced by its `lint:allow` directive *without* tripping the
//! `allow-hygiene` meta rule (the directive is explained and live).

use std::path::Path;

use veda_lint::lint_str;
use veda_lint::rules::{self, lint_source, PanicCounts};
use veda_lint::workspace::FileContext;

/// The rules with a three-way fixture set.
const FIXTURED_RULES: &[&str] = &[
    rules::NO_HASH_COLLECTIONS,
    rules::NO_WALL_CLOCK,
    rules::FLOAT_REDUCTION,
    rules::COORDINATOR_ONLY_TRACING,
    rules::CRATE_HYGIENE,
];

fn fixture(rule: &str, case: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rule).join(case);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// Context matching each fixture's framing: crate-hygiene cases model a
/// crate root, everything else a plain library module.
fn context_for(rule: &str) -> FileContext {
    let mut ctx = FileContext::synthetic_library("veda-fixture");
    if rule == rules::CRATE_HYGIENE {
        ctx.is_crate_root = true;
    }
    ctx
}

#[test]
fn violating_fixtures_fire_exactly_their_rule() {
    for rule in FIXTURED_RULES {
        let violations = lint_str(&fixture(rule, "violate.rs"), &context_for(rule));
        assert!(
            violations.iter().any(|v| v.rule == *rule),
            "{rule}/violate.rs did not fire {rule}: {violations:?}"
        );
        assert!(
            violations.iter().all(|v| v.rule == *rule),
            "{rule}/violate.rs fired unrelated rules: {violations:?}"
        );
    }
}

#[test]
fn clean_fixtures_are_spotless() {
    for rule in FIXTURED_RULES {
        let violations = lint_str(&fixture(rule, "clean.rs"), &context_for(rule));
        assert!(violations.is_empty(), "{rule}/clean.rs is not clean: {violations:?}");
    }
}

#[test]
fn allowed_fixtures_are_silenced_without_meta_violations() {
    for rule in FIXTURED_RULES {
        let violations = lint_str(&fixture(rule, "allowed.rs"), &context_for(rule));
        assert!(
            violations.is_empty(),
            "{rule}/allowed.rs: the lint:allow should silence {rule} and satisfy \
             allow-hygiene, got {violations:?}"
        );
    }
}

#[test]
fn ratchet_fixture_counts_each_panic_kind_once() {
    let ctx = FileContext::synthetic_library("veda-fixture");
    let lint = lint_source(&fixture(rules::UNWRAP_RATCHET, "violate.rs"), &ctx);
    assert_eq!(lint.counts, PanicCounts { unwrap: 1, expect: 1, index: 1 });

    let lint = lint_source(&fixture(rules::UNWRAP_RATCHET, "clean.rs"), &ctx);
    assert_eq!(lint.counts, PanicCounts::default(), "test-module unwraps must not count");
}

#[test]
fn allow_hygiene_fixture_flags_unknown_unexplained_and_stale() {
    let ctx = FileContext::synthetic_library("veda-fixture");
    let violations = lint_str(&fixture(rules::ALLOW_HYGIENE, "violate.rs"), &ctx);
    let meta: Vec<_> = violations.iter().filter(|v| v.rule == rules::ALLOW_HYGIENE).collect();
    assert_eq!(meta.len(), 3, "expected unknown + no-reason + stale, got {violations:?}");
    assert!(meta.iter().any(|v| v.message.contains("unknown rule")));
    assert!(meta.iter().any(|v| v.message.contains("without a reason")));
    assert!(meta.iter().any(|v| v.message.contains("stale")));
    // The unexplained allow still suppresses its target: accountability is
    // the meta violation, not a double report.
    assert!(violations.iter().all(|v| v.rule != rules::NO_WALL_CLOCK));

    let clean = lint_str(&fixture(rules::ALLOW_HYGIENE, "clean.rs"), &ctx);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn fix_suggestions_rewrite_hash_collections_mechanically() {
    let violations = lint_str(
        &fixture(rules::NO_HASH_COLLECTIONS, "violate.rs"),
        &context_for(rules::NO_HASH_COLLECTIONS),
    );
    let with_fix: Vec<_> = violations.iter().filter_map(|v| v.suggestion.as_ref()).collect();
    assert!(!with_fix.is_empty(), "R1 must carry mechanical suggestions");
    for s in with_fix {
        assert!(s.after.contains("BTreeMap"), "{s:?}");
        assert!(!s.after.contains("HashMap"), "{s:?}");
    }
}

#[test]
fn crate_hygiene_suggestions_insert_both_headers() {
    let violations =
        lint_str(&fixture(rules::CRATE_HYGIENE, "violate.rs"), &context_for(rules::CRATE_HYGIENE));
    let suggested: Vec<_> =
        violations.iter().filter_map(|v| v.suggestion.as_ref().map(|s| s.after.clone())).collect();
    assert!(suggested.contains(&"#![forbid(unsafe_code)]".to_string()), "{suggested:?}");
    assert!(suggested.contains(&"#![deny(missing_docs)]".to_string()), "{suggested:?}");
}

//! `veda-lint`: the determinism linter CLI.
//!
//! ```text
//! veda-lint [--root PATH] [--json] [--fix] [--write-ratchet] [--quiet]
//! ```
//!
//! * default: human-readable report, exit 1 on any violation;
//! * `--json`: machine-readable report on stdout;
//! * `--fix`: print unified-diff *suggestions* for the mechanical rules
//!   (collection swaps, hygiene headers) — nothing is modified;
//! * `--write-ratchet`: measure the live tree and rewrite
//!   `lint-ratchet.toml` (review the diff before committing);
//! * `--root PATH`: workspace root (default: walk up from the cwd).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use veda_lint::ratchet::{Ratchet, RATCHET_FILE};
use veda_lint::rules::RULES;
use veda_lint::workspace::find_root;
use veda_lint::{lint_files, lint_workspace, to_json};

struct Args {
    root: Option<PathBuf>,
    json: bool,
    fix: bool,
    write_ratchet: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, json: false, fix: false, write_ratchet: false, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--fix" => args.fix = true,
            "--write-ratchet" => args.write_ratchet = true,
            "--quiet" | "-q" => args.quiet = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn print_help() {
    println!(
        "veda-lint: workspace determinism linter\n\n\
         USAGE: veda-lint [--root PATH] [--json] [--fix] [--write-ratchet] [--quiet]\n\n\
         Enforces the determinism invariants at the source level. Rules:"
    );
    for rule in RULES {
        println!("  {:<26} guards {}", rule.name, rule.invariant);
    }
    println!(
        "\nEscape hatch: // lint:allow(rule-name): reason  (same or next line)\n\
         Ratchet baseline: {RATCHET_FILE} at the workspace root."
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("veda-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("veda-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    if args.write_ratchet {
        let lint = match lint_files(&root) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("veda-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let path = root.join(RATCHET_FILE);
        let text = Ratchet::from_counts(&lint.counts).serialize();
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("veda-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!(
                "wrote {} ({} crates, {} files scanned) — review the diff before committing",
                path.display(),
                lint.counts.len(),
                lint.files_scanned
            );
        }
        return ExitCode::SUCCESS;
    }

    let lint = match lint_workspace(&root) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("veda-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        print!("{}", to_json(&lint));
        return if lint.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if args.fix {
        let mut suggested = 0usize;
        for v in &lint.violations {
            let Some(s) = &v.suggestion else { continue };
            suggested += 1;
            println!("--- {}:{}", v.path, s.line);
            println!("+++ {}:{} (suggested)", v.path, s.line);
            if let Some(before) = &s.before {
                println!("-{before}");
            }
            println!("+{}", s.after);
        }
        if !args.quiet {
            eprintln!(
                "{} mechanical suggestion(s) printed (nothing was modified); \
                 {} violation(s) total",
                suggested,
                lint.violations.len()
            );
        }
        return if lint.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    for v in &lint.violations {
        if v.line > 0 {
            println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        } else {
            println!("{}: [{}] {}", v.path, v.rule, v.message);
        }
    }
    if !args.quiet {
        for note in &lint.improvements {
            eprintln!("note: {note}");
        }
        if lint.is_clean() {
            eprintln!(
                "veda-lint: clean — {} files, {} crates ratcheted",
                lint.files_scanned,
                lint.counts.len()
            );
        } else {
            eprintln!(
                "veda-lint: {} violation(s) across {} files (run with --fix for \
                 mechanical suggestions; see docs/ARCHITECTURE.md \
                 \"Statically enforced invariants\")",
                lint.violations.len(),
                lint.files_scanned
            );
        }
    }
    if lint.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! # veda-lint
//!
//! A workspace determinism linter: enforces, at the **source level**, the
//! discipline the nine pinned determinism invariants in
//! `docs/ARCHITECTURE.md` depend on. The test suite pins the invariants'
//! *outcomes* (bit-identical reports across seeds, thread counts, shard
//! counts); this pass pins the *coding discipline* that makes those pins
//! robust, so a violation is a build-time error rather than a flaky
//! repro three PRs later.
//!
//! The pass is offline and zero-dependency: its own lightweight Rust
//! lexer ([`lexer`] — comment-, string- and attribute-aware), its own
//! TOML subset for the ratchet baseline ([`ratchet`]) and its own JSON
//! writer for `--json` output. Rules ([`rules::RULES`]):
//!
//! | rule | guards |
//! |---|---|
//! | `no-hash-collections` | invariants #1/#2 — no `HashMap`/`HashSet` in library code |
//! | `no-wall-clock` | invariant #1 — `Instant`/`SystemTime` only in the measurement scope |
//! | `float-reduction` | invariant #2 — float `.sum()`/`.fold()` only inside `veda-tensor` |
//! | `coordinator-only-tracing` | invariant #8 — no trace emission inside `thread::scope` workers |
//! | `crate-hygiene` | audit surface — `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` |
//! | `unwrap-ratchet` | invariant #6 — panic surface may shrink, never grow |
//! | `allow-hygiene` | escape hatches must be known, explained and live |
//!
//! Escape hatch: `// lint:allow(rule-name): reason` on (or directly
//! above) the excused line. Run it three ways: the `veda-lint` binary,
//! the root integration test (`tests/lint_workspace.rs`, so plain
//! `cargo test` audits the live tree), and the dedicated CI step.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod ratchet;
pub mod rules;
pub mod workspace;

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use ratchet::{Ratchet, RatchetOutcome, RATCHET_FILE};
use rules::{lint_source, PanicCounts, Violation};
use workspace::{discover, FileContext};

/// The result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Every violation, in deterministic (path, line) order, including
    /// ratchet failures.
    pub violations: Vec<Violation>,
    /// Ratchet shrinkage notes (informational).
    pub improvements: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Measured per-crate panic-surface counts (the ratchet input).
    pub counts: BTreeMap<String, PanicCounts>,
}

impl WorkspaceLint {
    /// Did the pass succeed?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint every workspace source file under `root` and compare the
/// panic-surface counts against the committed `lint-ratchet.toml` (a
/// missing baseline file fails the pass — the ratchet only ratchets if
/// it is committed).
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceLint> {
    let mut out = lint_files(root)?;
    let baseline_path = root.join(RATCHET_FILE);
    match fs::read_to_string(&baseline_path) {
        Ok(text) => match Ratchet::parse(&text) {
            Ok(baseline) => {
                let RatchetOutcome { violations, improvements } = baseline.compare(&out.counts);
                out.violations.extend(violations);
                out.improvements = improvements;
            }
            Err(err) => out.violations.push(Violation {
                rule: rules::UNWRAP_RATCHET,
                path: RATCHET_FILE.into(),
                line: 0,
                message: format!("unparseable baseline: {err}"),
                suggestion: None,
            }),
        },
        Err(_) => out.violations.push(Violation {
            rule: rules::UNWRAP_RATCHET,
            path: RATCHET_FILE.into(),
            line: 0,
            message: format!(
                "missing {RATCHET_FILE} at the workspace root; generate it with \
                 `cargo run -p veda-lint -- --write-ratchet` and commit it"
            ),
            suggestion: None,
        }),
    }
    sort_violations(&mut out.violations);
    Ok(out)
}

/// Lint the files only (no ratchet comparison) — what `--write-ratchet`
/// uses to measure a fresh baseline.
pub fn lint_files(root: &Path) -> std::io::Result<WorkspaceLint> {
    let files = discover(root)?;
    let mut out = WorkspaceLint { files_scanned: files.len(), ..Default::default() };
    for file in &files {
        let source = fs::read_to_string(&file.abs_path)?;
        let lint = lint_source(&source, &file.context);
        out.violations.extend(lint.violations);
        out.counts.entry(file.context.crate_name.clone()).or_default().add(lint.counts);
    }
    sort_violations(&mut out.violations);
    Ok(out)
}

/// Lint one in-memory source with a synthetic context — the hook the
/// fixture suite and the injected-violation tests drive.
pub fn lint_str(source: &str, ctx: &FileContext) -> Vec<Violation> {
    lint_source(source, ctx).violations
}

fn sort_violations(violations: &mut [Violation]) {
    violations.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule)));
}

/// Render violations as a JSON document (stable field order; the
/// linter's own writer, no serde).
pub fn to_json(lint: &WorkspaceLint) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", lint.files_scanned));
    s.push_str(&format!("  \"clean\": {},\n", lint.is_clean()));
    s.push_str("  \"violations\": [");
    for (i, v) in lint.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_str(v.rule),
            json_str(&v.path),
            v.line,
            json_str(&v.message)
        ));
    }
    s.push_str(if lint.violations.is_empty() { "],\n" } else { "\n  ],\n" });
    s.push_str("  \"panic_surface\": {");
    for (i, (name, c)) in lint.counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {}: {{\"unwrap\": {}, \"expect\": {}, \"index\": {}}}",
            json_str(name),
            c.unwrap,
            c.expect,
            c.index
        ));
    }
    s.push_str(if lint.counts.is_empty() { "}\n" } else { "\n  }\n" });
    s.push_str("}\n");
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let lint = WorkspaceLint {
            violations: vec![Violation {
                rule: rules::NO_WALL_CLOCK,
                path: "a \"b\"".into(),
                line: 3,
                message: "tab\there".into(),
                suggestion: None,
            }],
            improvements: Vec::new(),
            files_scanned: 1,
            counts: BTreeMap::new(),
        };
        let json = to_json(&lint);
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"clean\": false"));
    }
}

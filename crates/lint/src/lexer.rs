//! A lightweight Rust lexer for the lint pass.
//!
//! This is deliberately **not** a full Rust grammar: the rules only need a
//! token stream that is *comment-, string- and attribute-aware*, so that
//! `HashMap` inside a doc comment or a string literal never fires a rule,
//! and `#[cfg(test)]` regions can be carved out by brace matching. The
//! lexer therefore handles exactly the lexical features that matter for
//! correctness of that promise:
//!
//! * line comments (`//`, `///`, `//!`) — scanned for `lint:allow(...)`
//!   escape-hatch directives, otherwise dropped;
//! * nested block comments (`/* /* */ */`);
//! * string, raw-string (`r#"…"#`, any hash depth), byte-string and char
//!   literals, with escapes;
//! * lifetimes vs. char literals (`'a` vs `'a'`);
//! * identifiers (including raw `r#ident`), numbers, and single-char
//!   punctuation.
//!
//! Everything downstream (test-region detection, `thread::scope` regions,
//! statement windows) works on the resulting [`Token`] stream.

/// The coarse classification a lint rule needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#mod` → `mod`).
    Ident,
    /// A single punctuation character (`.`, `:`, `[`, …).
    Punct(char),
    /// String / char / byte / numeric literal (text is the raw source).
    Literal,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text (for [`TokenKind::Punct`] the single character).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this a punctuation token with this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A `// lint:allow(rule-a, rule-b): reason` escape-hatch directive.
///
/// The directive suppresses matching violations **on its own line** (a
/// trailing comment) and **on the following line** (a standalone comment
/// above the code it excuses). File-scoped rules (crate hygiene) accept a
/// directive anywhere in the file. A directive with no reason, an unknown
/// rule name, or that suppresses nothing is itself a violation of the
/// `allow-hygiene` meta rule — allows must stay explained and live.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-indexed line the comment sits on.
    pub line: u32,
    /// Rule names inside the parentheses.
    pub rules: Vec<String>,
    /// Text after the closing `): ` (trimmed; may be empty — a violation).
    pub reason: String,
}

/// The output of [`lex`]: the token stream plus any allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// Every `lint:allow` directive found in line comments.
    pub allows: Vec<AllowDirective>,
}

/// Lex `source` into tokens and allow directives. Never fails: unexpected
/// bytes are skipped (the pass lints real, compiling Rust; graceful
/// degradation beats a hard error on an exotic token).
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                // Directives live in plain `//` comments only: doc
                // comments (`///`, `//!`) *describe* the syntax without
                // enacting it.
                let is_doc = matches!(bytes.get(start + 2), Some(b'/') | Some(b'!'));
                if !is_doc {
                    parse_allow(&source[start..i], line, &mut out.allows);
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let tok_line = line;
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: tok_line });
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                let tok_line = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: tok_line });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let tok_line = line;
                if is_lifetime(bytes, i) {
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_alphanumeric()
                        || i < bytes.len() && bytes[i] == b'_'
                    {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_string(),
                        line: tok_line,
                    });
                } else {
                    i = skip_char_literal(bytes, i, &mut line);
                    out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: tok_line });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // `1.5` continues the number; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokenKind::Literal, text: source[start..i].to_string(), line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut start = i;
                // Raw identifier `r#ident`: token text is the bare name.
                if (c == 'r' || c == 'b')
                    && bytes.get(i + 1) == Some(&b'#')
                    && bytes.get(i + 2).is_some_and(|n| (*n as char).is_alphabetic() || *n == b'_')
                {
                    start = i + 2;
                    i += 2;
                }
                i += 1;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokenKind::Ident, text: source[start..i].to_string(), line });
            }
            c => {
                out.tokens.push(Token { kind: TokenKind::Punct(c), text: c.to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// Is `'` at `i` a lifetime rather than a char literal? A lifetime's
/// identifier is not followed by a closing quote (`'a'` is a char, `'a,`
/// a lifetime; `'\n'` is always a char).
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else { return false };
    let fc = first as char;
    if fc == '\\' {
        return false;
    }
    if !(fc.is_alphabetic() || fc == '_') {
        return false;
    }
    // Consume the identifier; a trailing `'` makes it a char literal.
    let mut j = i + 2;
    while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // A `\<newline>` continuation still advances the line.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Does `r`/`b` at `i` begin a raw string (`r"`, `r#"`, `br"`, …) or byte
/// string (`b"`)? Plain identifiers starting with r/b fall through to the
/// identifier arm.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    bytes.get(j) == Some(&b'"') && j > i
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    if !raw {
        // Plain byte string: escapes apply.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Parse a `lint:allow(rule-a, rule-b): reason` directive out of one line
/// comment (`comment` includes the leading slashes, excludes the newline).
fn parse_allow(comment: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    let Some(pos) = comment.find("lint:allow") else { return };
    let rest = &comment[pos + "lint:allow".len()..];
    let Some(open) = rest.find('(') else {
        // Malformed directive: record it with no rules so allow-hygiene
        // can flag it rather than silently ignoring a typo.
        allows.push(AllowDirective { line, rules: Vec::new(), reason: String::new() });
        return;
    };
    let Some(close) = rest[open..].find(')') else {
        allows.push(AllowDirective { line, rules: Vec::new(), reason: String::new() });
        return;
    };
    let rules: Vec<String> = rest[open + 1..open + close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = rest[open + close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(|r| r.trim().to_string()).unwrap_or_default();
    allows.push(AllowDirective { line, rules, reason });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "BTreeMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal));
        // The char literal body never becomes an identifier.
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("x") && t.line == 0));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let ids = idents(r#"let s = "quote \" HashMap"; let t = SystemTime;"#);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(ids.iter().any(|i| i == "SystemTime"));
    }

    #[test]
    fn raw_identifiers_normalize() {
        let ids = idents("let r#mod = 1;");
        assert!(ids.iter().any(|i| i == "mod"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn allow_directives_parse() {
        let src = "// lint:allow(no-hash-collections, no-wall-clock): bench-only scratch map\nlet x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.line, 1);
        assert_eq!(a.rules, ["no-hash-collections", "no-wall-clock"]);
        assert_eq!(a.reason, "bench-only scratch map");
    }

    #[test]
    fn allow_without_reason_is_recorded_empty() {
        let lexed = lex("// lint:allow(no-wall-clock)\n");
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].reason.is_empty());
    }
}

//! Workspace discovery: which `.rs` files exist, and what role each one
//! plays (library vs. test target vs. example vs. bench), so every rule
//! can scope itself without re-deriving path semantics.

use std::fs;
use std::path::{Path, PathBuf};

/// What a source file is compiled into — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Part of a library target (`crates/*/src`, `shims/*/src`, root
    /// `src/`). The full rule set applies.
    Library,
    /// An integration-test target (`tests/` of any package).
    TestTarget,
    /// An example (`examples/`) — wall-clock and hash rules are relaxed.
    Example,
    /// A bench target (`benches/`) — same relaxations as examples.
    BenchTarget,
}

/// Everything a rule needs to know about the file it is looking at.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path relative to the workspace root (display + allow tracking).
    pub path: String,
    /// Package the file belongs to (`veda`, `veda-model`, `rand`, …).
    pub crate_name: String,
    /// Compilation role (see [`FileRole`]).
    pub role: FileRole,
    /// Under `shims/` — offline registry stand-ins are exempt from crate
    /// hygiene (they mirror external APIs, docs and all) and from the
    /// wall-clock rule (the criterion shim *is* the timer).
    pub is_shim: bool,
    /// In the measurement scope (`crates/bench`) where wall-clock reads
    /// are the point.
    pub is_bench_crate: bool,
    /// Is this a library crate root (`src/lib.rs`) that must carry the
    /// hygiene headers?
    pub is_crate_root: bool,
}

impl FileContext {
    /// A synthetic context for linting an in-memory source as library
    /// code of `crate_name` — used by the fixture suite and the
    /// injected-violation tests.
    pub fn synthetic_library(crate_name: &str) -> Self {
        FileContext {
            path: format!("<synthetic:{crate_name}>"),
            crate_name: crate_name.to_string(),
            role: FileRole::Library,
            is_shim: false,
            is_bench_crate: false,
            is_crate_root: false,
        }
    }
}

/// One discovered source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Rule-relevant classification.
    pub context: FileContext,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Walk the workspace at `root` and classify every `.rs` file the pass
/// audits. Deterministic: directory entries are sorted, so violation
/// order and ratchet counts never depend on filesystem enumeration
/// order.
///
/// Skipped subtrees: `target/` (build output) and any directory named
/// `fixtures` (the linter's own deliberately-violating test corpus).
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    // Package roots: crates/*, shims/*, and the workspace root package.
    for dir in ["crates", "shims"] {
        let base = root.join(dir);
        if !base.is_dir() {
            continue;
        }
        for pkg in sorted_dirs(&base)? {
            let crate_name = package_name(&pkg)
                .unwrap_or_else(|| pkg.file_name().unwrap_or_default().to_string_lossy().into_owned());
            collect_package(root, &pkg, &crate_name, dir == "shims", &mut files)?;
        }
    }
    collect_package(root, root, &package_name(root).unwrap_or_else(|| "root".into()), false, &mut files)?;
    Ok(files)
}

/// Collect one package's source trees (`src/`, `tests/`, `examples/`,
/// `benches/`).
fn collect_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    is_shim: bool,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let is_bench_crate = crate_name == "veda-bench";
    let trees = [
        ("src", FileRole::Library),
        ("tests", FileRole::TestTarget),
        ("examples", FileRole::Example),
        ("benches", FileRole::BenchTarget),
    ];
    for (tree, role) in trees {
        let base = pkg.join(tree);
        if !base.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk_rs(&base, &mut paths)?;
        paths.sort();
        for abs in paths {
            let rel = abs.strip_prefix(root).unwrap_or(&abs).to_string_lossy().replace('\\', "/");
            let is_crate_root = role == FileRole::Library
                && abs.file_name().is_some_and(|n| n == "lib.rs")
                && abs.parent() == Some(base.as_path());
            out.push(SourceFile {
                context: FileContext {
                    path: rel,
                    crate_name: crate_name.to_string(),
                    role,
                    is_shim,
                    is_bench_crate,
                    is_crate_root,
                },
                abs_path: abs,
            });
        }
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn sorted_dirs(base: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> =
        fs::read_dir(base)?.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
    dirs.sort();
    Ok(dirs)
}

/// Read the `[package] name` out of a `Cargo.toml` without a TOML
/// dependency: first `name = "…"` line inside the `[package]` section.
fn package_name(pkg_dir: &Path) -> Option<String> {
    let manifest = fs::read_to_string(pkg_dir.join("Cargo.toml")).ok()?;
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return rest.trim().trim_matches('"').to_string().into();
                }
            }
        }
    }
    None
}

/// Find the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` section appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_context_is_library() {
        let ctx = FileContext::synthetic_library("veda-model");
        assert_eq!(ctx.role, FileRole::Library);
        assert!(!ctx.is_shim);
        assert_eq!(ctx.crate_name, "veda-model");
    }
}

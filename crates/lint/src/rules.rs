//! The determinism rules and the per-file rule engine.
//!
//! Each rule maps to one of the pinned determinism invariants in
//! `docs/ARCHITECTURE.md` — see [`RULES`] for the mapping. Rules operate
//! on the [`crate::lexer`] token stream, so comments, strings and doc
//! examples never fire them, and `#[cfg(test)]` regions are carved out by
//! brace matching where a rule only governs shipping library code.

use crate::lexer::{lex, AllowDirective, Lexed, Token, TokenKind};
use crate::workspace::{FileContext, FileRole};

/// Rule R1: nondeterministically-ordered collections in library code.
pub const NO_HASH_COLLECTIONS: &str = "no-hash-collections";
/// Rule R2: wall-clock reads outside the measurement scope.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule R3: float reductions outside the blessed kernel crate.
pub const FLOAT_REDUCTION: &str = "float-reduction";
/// Rule R4: trace emission inside `thread::scope` worker regions.
pub const COORDINATOR_ONLY_TRACING: &str = "coordinator-only-tracing";
/// Rule R5: missing crate hygiene headers.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// Rule R6: per-crate panic-surface ratchet.
pub const UNWRAP_RATCHET: &str = "unwrap-ratchet";
/// Meta rule: every allow must be known, explained, and live.
pub const ALLOW_HYGIENE: &str = "allow-hygiene";

/// Static description of one rule: name, the invariant it guards, and a
/// one-line rationale (shown in `--json` output and the docs table).
pub struct RuleInfo {
    /// Kebab-case rule name (what `lint:allow(...)` takes).
    pub name: &'static str,
    /// Determinism invariant(s) in `docs/ARCHITECTURE.md` it guards.
    pub invariant: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
}

/// All rules the pass knows, in R1..R6 + meta order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: NO_HASH_COLLECTIONS,
        invariant: "#1 same seed ⇒ same bytes, #2 thread-count invariance",
        rationale: "HashMap/HashSet iteration order is randomized per process; \
                    any iteration that reaches an output makes bytes run-dependent. \
                    Use BTreeMap/BTreeSet.",
    },
    RuleInfo {
        name: NO_WALL_CLOCK,
        invariant: "#1 same seed ⇒ same bytes",
        rationale: "Instant/SystemTime reads leak host speed into behavior; \
                    the serving stack runs on a virtual clock. Only crates/bench, \
                    benches/ and examples/ may time the host.",
    },
    RuleInfo {
        name: FLOAT_REDUCTION,
        invariant: "#2 thread-count invariance (f32 summation order)",
        rationale: "Float sums/folds are order-sensitive; keeping them inside \
                    veda-tensor's kernels centralizes the summation-order \
                    discipline the bit-identity pins depend on.",
    },
    RuleInfo {
        name: COORDINATOR_ONLY_TRACING,
        invariant: "#8 trace neutrality and trace determinism",
        rationale: "Trace events emitted inside thread::scope workers would \
                    interleave by scheduler whim; all emission happens on the \
                    coordinator so trace bytes are thread-invariant.",
    },
    RuleInfo {
        name: CRATE_HYGIENE,
        invariant: "all (the audit surface itself)",
        rationale: "Library crates must carry #![forbid(unsafe_code)] and \
                    #![deny(missing_docs)]: no unchecked aliasing under the \
                    determinism pins, no undocumented public surface.",
    },
    RuleInfo {
        name: UNWRAP_RATCHET,
        invariant: "#6 accounting conservation (panics erase in-flight state)",
        rationale: "The panic surface (.unwrap/.expect/indexing) per library \
                    crate may shrink but never grow past lint-ratchet.toml.",
    },
    RuleInfo {
        name: ALLOW_HYGIENE,
        invariant: "all (escape-hatch accountability)",
        rationale: "lint:allow directives must name a real rule, carry a \
                    reason, and actually suppress something.",
    },
];

/// Does `name` name a rule this pass knows?
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One violation found in one file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired (one of the `RULES` names).
    pub rule: &'static str,
    /// Workspace-relative path (or crate name for ratchet violations).
    pub path: String,
    /// 1-indexed line (0 for file- or crate-scoped violations).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Machine-applicable single-line replacement, when the fix is
    /// mechanical (R1 collection swaps; R5 header insertion).
    pub suggestion: Option<Suggestion>,
}

/// A mechanical fix suggestion rendered by `veda-lint --fix` as a diff.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// 1-indexed line to replace (or insert before, when `before` is
    /// `None`).
    pub line: u32,
    /// The current line text (`None` = pure insertion).
    pub before: Option<String>,
    /// The replacement (or inserted) line text.
    pub after: String,
}

/// Panic-surface counts for one file or one crate (the ratchet unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` calls.
    pub unwrap: u64,
    /// `.expect(...)` calls.
    pub expect: u64,
    /// Panicking index expressions `x[i]`.
    pub index: u64,
}

impl PanicCounts {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.index += other.index;
    }

    /// Total panic sites.
    pub fn total(&self) -> u64 {
        self.unwrap + self.expect + self.index
    }
}

/// The result of linting one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Violations, already filtered through `lint:allow` directives.
    pub violations: Vec<Violation>,
    /// Panic-surface counts (only populated for non-test library code —
    /// the ratchet's scope).
    pub counts: PanicCounts,
}

/// Keywords that can precede `[` without forming an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "move", "mut", "ref", "as", "box", "break", "continue",
    "where", "unsafe", "dyn", "impl", "for", "while", "loop", "use", "pub", "fn", "struct", "enum", "const",
    "static", "type", "yield", "await", "async",
];

/// Identifiers whose appearance inside a `thread::scope` region means
/// trace machinery crossed into a worker.
const TRACE_TOKENS: &[&str] = &["Tracer", "TraceSink", "TraceEvent", "SinkHandle", "RecordingSink", "tracer"];

/// Method names that emit trace events (flagged inside worker regions
/// when called, i.e. preceded by `.`).
const TRACE_METHODS: &[&str] = &["emit", "record", "set_now"];

/// Lint one source file. `source` is the file text, `ctx` its
/// classification. Applies every rule in scope, then filters through the
/// file's `lint:allow` directives and appends `allow-hygiene` violations
/// for unknown/unexplained/unused allows.
pub fn lint_source(source: &str, ctx: &FileContext) -> FileLint {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let test_regions = test_regions(tokens);
    let in_test = |idx: usize| test_regions.iter().any(|&(a, b)| idx >= a && idx <= b);

    let mut raw: Vec<Violation> = Vec::new();
    let mut counts = PanicCounts::default();

    let library = ctx.role == FileRole::Library;

    // R1 no-hash-collections: non-test library code only.
    if library {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || in_test(i) {
                continue;
            }
            let replacement = match t.text.as_str() {
                "HashMap" => Some("BTreeMap"),
                "HashSet" => Some("BTreeSet"),
                "hash_map" => Some("btree_map"),
                "hash_set" => Some("btree_set"),
                _ => None,
            };
            if let Some(to) = replacement {
                raw.push(Violation {
                    rule: NO_HASH_COLLECTIONS,
                    path: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in library code: iteration order is nondeterministic \
                         (invariants #1/#2); use `{}`",
                        t.text, to
                    ),
                    suggestion: suggest_line_swap(source, t.line),
                });
            }
        }
    }

    // R2 no-wall-clock: everywhere except the measurement scope (the
    // bench crate, bench targets, examples) and the shims (the criterion
    // shim *is* the timer).
    let wall_clock_exempt =
        ctx.is_bench_crate || ctx.is_shim || matches!(ctx.role, FileRole::Example | FileRole::BenchTarget);
    if !wall_clock_exempt {
        for t in tokens.iter() {
            if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
                raw.push(Violation {
                    rule: NO_WALL_CLOCK,
                    path: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` outside crates/bench / benches/ / examples/: host time must \
                         never reach the virtual-clock planes (invariant #1)",
                        t.text
                    ),
                    suggestion: None,
                });
            }
        }
    }

    // R3 float-reduction: non-test library code outside the blessed
    // kernel crate and the measurement scope (the bench crate aggregates
    // wall-clock measurements, not decode-path math). A reduction is
    // `.sum(...)` / `.fold(...)` whose enclosing statement mentions
    // f32/f64.
    if library && ctx.crate_name != "veda-tensor" && !ctx.is_bench_crate {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || (t.text != "sum" && t.text != "fold") || in_test(i) {
                continue;
            }
            let is_method = i > 0 && tokens[i - 1].is_punct('.');
            if !is_method || !is_float_reduction(tokens, i) {
                continue;
            }
            raw.push(Violation {
                rule: FLOAT_REDUCTION,
                path: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "float `.{}(...)` outside veda-tensor: summation order is part of \
                     the bit-identity contract (invariant #2); call a veda-tensor \
                     kernel (e.g. `stats::sum`) or justify with lint:allow",
                    t.text
                ),
                suggestion: None,
            });
        }
    }

    // R4 coordinator-only-tracing: non-test library code; forbidden
    // tokens inside `thread::scope(...)` regions.
    if library {
        for (start, end) in scope_regions(tokens) {
            for (i, t) in tokens.iter().enumerate().take(end + 1).skip(start) {
                if t.kind != TokenKind::Ident || in_test(i) {
                    continue;
                }
                let is_trace_type = TRACE_TOKENS.contains(&t.text.as_str());
                let is_trace_call =
                    TRACE_METHODS.contains(&t.text.as_str()) && i > 0 && tokens[i - 1].is_punct('.');
                if is_trace_type || is_trace_call {
                    raw.push(Violation {
                        rule: COORDINATOR_ONLY_TRACING,
                        path: ctx.path.clone(),
                        line: t.line,
                        message: format!(
                            "trace token `{}` inside a thread::scope worker region: \
                             emission must stay on the coordinator so trace bytes are \
                             thread-invariant (invariant #8)",
                            t.text
                        ),
                        suggestion: None,
                    });
                }
            }
        }
    }

    // R5 crate-hygiene: library crate roots outside shims/.
    if ctx.is_crate_root && !ctx.is_shim {
        for (attr, frag) in [
            ("#![forbid(unsafe_code)]", "forbid(unsafe_code)"),
            ("#![deny(missing_docs)]", "deny(missing_docs)"),
        ] {
            if !has_inner_attr(tokens, frag) {
                raw.push(Violation {
                    rule: CRATE_HYGIENE,
                    path: ctx.path.clone(),
                    line: 0,
                    message: format!("library crate root is missing `{attr}`"),
                    suggestion: Some(Suggestion {
                        line: first_code_line(tokens),
                        before: None,
                        after: attr.to_string(),
                    }),
                });
            }
        }
    }

    // R6 panic-surface counting: non-test library code (the ratchet
    // comparison itself happens at workspace level).
    if library {
        for (i, t) in tokens.iter().enumerate() {
            if in_test(i) {
                continue;
            }
            match t.kind {
                TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                    let called = i > 0
                        && tokens[i - 1].is_punct('.')
                        && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                    if called {
                        if t.text == "unwrap" {
                            counts.unwrap += 1;
                        } else {
                            counts.expect += 1;
                        }
                    }
                }
                TokenKind::Punct('[') if i > 0 && is_index_base(&tokens[i - 1]) => {
                    counts.index += 1;
                }
                _ => {}
            }
        }
    }

    // Filter through the allow directives, then audit the allows
    // themselves.
    let violations = apply_allows(raw, &lexed, ctx);
    FileLint { violations, counts }
}

/// `[` forms an index expression when it follows a value-producing token.
fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
        _ => false,
    }
}

/// Token-index ranges covered by `#[cfg(test)]` items (usually
/// `mod tests { … }`).
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, '[', ']') else { break };
        let attr = &tokens[i + 2..close];
        let is_cfg_test = attr.first().is_some_and(|t| t.is_ident("cfg"))
            && attr.iter().any(|t| t.is_ident("test"))
            // `#[cfg(not(test))]` is shipping code, not a test region.
            && !attr.iter().any(|t| t.is_ident("not"));
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item runs to its first `;` (e.g. `#[cfg(test)] use x;`) or
        // the matching brace of its first `{`.
        let mut k = j;
        let end = loop {
            match tokens.get(k) {
                None => break tokens.len().saturating_sub(1),
                Some(t) if t.is_punct(';') => break k,
                Some(t) if t.is_punct('{') => {
                    break matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1)
                }
                Some(_) => k += 1,
            }
        };
        regions.push((i, end));
        i = end + 1;
    }
    regions
}

/// Token-index ranges of `thread::scope(...)` call arguments (the worker
/// region: closures the scope runs live in there).
fn scope_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        let is_scope_call = tokens[i].is_ident("thread")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("scope")
            && tokens[i + 4].is_punct('(');
        if is_scope_call {
            let end = matching(tokens, i + 4, '(', ')').unwrap_or(tokens.len() - 1);
            regions.push((i + 4, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Index of the token matching the opener at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Is the `.sum`/`.fold` at `idx` a *float reduction call*? Field
/// accesses (`self.sum as f64`) are not calls; an explicit turbofish
/// names the element type outright (`.sum::<usize>()` is proof of
/// integer math, `.sum::<f64>()` of float math); otherwise fall back to
/// the statement-window heuristic.
fn is_float_reduction(tokens: &[Token], idx: usize) -> bool {
    match tokens.get(idx + 1) {
        Some(t) if t.is_punct('(') => statement_mentions_float(tokens, idx),
        Some(t) if t.is_punct(':') => {
            let turbofish_type = tokens.get(idx + 2).filter(|t| t.is_punct(':')).and_then(|_| {
                tokens.get(idx + 3).filter(|t| t.is_punct('<'))?;
                tokens.get(idx + 4)
            });
            match turbofish_type {
                Some(t) => t.is_ident("f32") || t.is_ident("f64"),
                None => false,
            }
        }
        _ => false,
    }
}

/// Does the statement containing token `idx` mention `f32`/`f64`? The
/// statement window runs from the previous `;`/`{`/`}` to the next
/// `;`/`{`/`}` — it never leaks into a neighboring item, so an integer
/// `.sum()` next to float code stays clean.
fn statement_mentions_float(tokens: &[Token], idx: usize) -> bool {
    let start = (0..idx)
        .rev()
        .find(|&i| matches!(tokens[i].kind, TokenKind::Punct(';' | '{' | '}')))
        .map_or(0, |i| i + 1);
    let end = (idx..tokens.len())
        .find(|&i| matches!(tokens[i].kind, TokenKind::Punct(';' | '{' | '}')))
        .unwrap_or(tokens.len() - 1);
    tokens[start..=end].iter().any(|t| t.kind == TokenKind::Ident && (t.text == "f32" || t.text == "f64"))
}

/// Does the stream contain the inner attribute `#![ … frag … ]` (frag
/// like `forbid(unsafe_code)`)?
fn has_inner_attr(tokens: &[Token], frag: &str) -> bool {
    // frag is `verb(what)`.
    let (verb, what) = frag.split_once('(').unwrap();
    let what = what.trim_end_matches(')');
    let mut i = 0usize;
    while i + 5 < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('!')
            && tokens[i + 2].is_punct('[')
            && tokens[i + 3].is_ident(verb)
            && tokens[i + 4].is_punct('(')
            && tokens[i + 5].is_ident(what)
        {
            return true;
        }
        i += 1;
    }
    false
}

/// First line holding a non-doc token — where R5's insertion suggestion
/// points.
fn first_code_line(tokens: &[Token]) -> u32 {
    tokens.first().map_or(1, |t| t.line)
}

/// Build an R1 fix suggestion by swapping the collection names on the
/// violating line.
fn suggest_line_swap(source: &str, line: u32) -> Option<Suggestion> {
    let before = source.lines().nth(line as usize - 1)?;
    let after = before
        .replace("HashMap", "BTreeMap")
        .replace("HashSet", "BTreeSet")
        .replace("hash_map", "btree_map")
        .replace("hash_set", "btree_set");
    if after == before {
        return None;
    }
    Some(Suggestion { line, before: Some(before.to_string()), after })
}

/// Filter `raw` through the file's allow directives and audit the
/// directives themselves (`allow-hygiene`).
fn apply_allows(raw: Vec<Violation>, lexed: &Lexed, ctx: &FileContext) -> Vec<Violation> {
    let mut used = vec![false; lexed.allows.len()];
    let mut out: Vec<Violation> = Vec::new();

    for v in raw {
        let mut suppressed = false;
        for (ai, allow) in lexed.allows.iter().enumerate() {
            if !allow.rules.iter().any(|r| r == v.rule) {
                continue;
            }
            // File-scoped rules accept a directive anywhere; line-scoped
            // rules accept same-line (trailing) or previous-line
            // (standalone comment above).
            let in_range = v.line == 0 || v.line == allow.line || v.line == allow.line + 1;
            if in_range {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(v);
        }
    }

    for (ai, allow) in lexed.allows.iter().enumerate() {
        audit_allow(allow, used[ai], ctx, &mut out);
    }
    out
}

fn audit_allow(allow: &AllowDirective, used: bool, ctx: &FileContext, out: &mut Vec<Violation>) {
    if allow.rules.is_empty() {
        out.push(Violation {
            rule: ALLOW_HYGIENE,
            path: ctx.path.clone(),
            line: allow.line,
            message: "malformed lint:allow directive: expected \
                      `lint:allow(rule-name): reason`"
                .into(),
            suggestion: None,
        });
        return;
    }
    for rule in &allow.rules {
        if !is_known_rule(rule) {
            out.push(Violation {
                rule: ALLOW_HYGIENE,
                path: ctx.path.clone(),
                line: allow.line,
                message: format!("lint:allow names unknown rule `{rule}`"),
                suggestion: None,
            });
        }
    }
    if allow.reason.is_empty() {
        out.push(Violation {
            rule: ALLOW_HYGIENE,
            path: ctx.path.clone(),
            line: allow.line,
            message: "lint:allow without a reason: every escape hatch must \
                      say why (`lint:allow(rule): reason`)"
                .into(),
            suggestion: None,
        });
    }
    if !used && allow.rules.iter().all(|r| is_known_rule(r)) {
        out.push(Violation {
            rule: ALLOW_HYGIENE,
            path: ctx.path.clone(),
            line: allow.line,
            message: format!(
                "stale lint:allow({}): it suppresses nothing on this or the \
                 next line — remove it",
                allow.rules.join(", ")
            ),
            suggestion: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx() -> FileContext {
        FileContext::synthetic_library("veda-test")
    }

    fn rules_fired(src: &str, ctx: &FileContext) -> Vec<&'static str> {
        lint_source(src, ctx).violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hashmap_in_library_fires_r1_with_suggestion() {
        let lint = lint_source("use std::collections::HashMap;\n", &lib_ctx());
        assert_eq!(lint.violations.len(), 1);
        let v = &lint.violations[0];
        assert_eq!(v.rule, NO_HASH_COLLECTIONS);
        let s = v.suggestion.as_ref().unwrap();
        assert_eq!(s.after, "use std::collections::BTreeMap;");
    }

    #[test]
    fn hashmap_in_cfg_test_mod_is_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_fired(src, &lib_ctx()).is_empty());
    }

    #[test]
    fn wall_clock_fires_outside_bench_only() {
        let src = "use std::time::Instant;\n";
        assert_eq!(rules_fired(src, &lib_ctx()), vec![NO_WALL_CLOCK]);
        let mut bench = lib_ctx();
        bench.is_bench_crate = true;
        assert!(rules_fired(src, &bench).is_empty());
    }

    #[test]
    fn float_sum_fires_outside_tensor_but_int_sum_does_not() {
        let float = "fn f(x: &[f32]) -> f32 { let s: f32 = x.iter().sum(); s }\n";
        assert_eq!(rules_fired(float, &lib_ctx()), vec![FLOAT_REDUCTION]);
        let int = "fn f(x: &[u64]) -> u64 { x.iter().sum() }\n";
        assert!(rules_fired(int, &lib_ctx()).is_empty());
        let mut tensor = lib_ctx();
        tensor.crate_name = "veda-tensor".into();
        assert!(rules_fired(float, &tensor).is_empty());
    }

    #[test]
    fn trace_token_in_scope_region_fires_r4() {
        let src =
            "fn f(tr: &Tracer) {\n  std::thread::scope(|s| {\n    s.spawn(|| tr.emit(0, 0, k));\n  });\n}\n";
        let fired = rules_fired(src, &lib_ctx());
        assert!(fired.contains(&COORDINATOR_ONLY_TRACING), "{fired:?}");
        // The same tokens outside a scope region are fine (`Tracer` in
        // the signature does not fire).
        let outside = "fn f(tr: &Tracer) { tr.emit(0, 0, k); }\n";
        assert!(rules_fired(outside, &lib_ctx()).is_empty());
    }

    #[test]
    fn crate_root_without_headers_fires_r5_twice() {
        let mut ctx = lib_ctx();
        ctx.is_crate_root = true;
        let fired = rules_fired("//! docs\npub fn f() {}\n", &ctx);
        assert_eq!(fired, vec![CRATE_HYGIENE, CRATE_HYGIENE]);
        let clean = "//! docs\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(rules_fired(clean, &ctx).is_empty());
    }

    #[test]
    fn panic_surface_counts_unwrap_expect_index() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n  let a = v.first().unwrap();\n  let b: u32 = \"1\".parse().expect(\"x\");\n  v[i] + a + b\n}\n";
        let lint = lint_source(src, &lib_ctx());
        assert_eq!(lint.counts, PanicCounts { unwrap: 1, expect: 1, index: 1 });
    }

    #[test]
    fn array_literals_and_attributes_are_not_indexing() {
        let src = "#[derive(Clone)]\npub struct S;\npub fn f() -> [u32; 2] { [1, 2] }\n";
        let lint = lint_source(src, &lib_ctx());
        assert_eq!(lint.counts.index, 0);
    }

    #[test]
    fn test_code_is_outside_the_ratchet() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
        let lint = lint_source(src, &lib_ctx());
        assert_eq!(lint.counts.total(), 0);
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let trailing = "use std::collections::HashMap; // lint:allow(no-hash-collections): fixture\n";
        assert!(rules_fired(trailing, &lib_ctx()).is_empty());
        let above = "// lint:allow(no-hash-collections): fixture\nuse std::collections::HashMap;\n";
        assert!(rules_fired(above, &lib_ctx()).is_empty());
        let far = "// lint:allow(no-hash-collections): fixture\n\nuse std::collections::HashMap;\n";
        let fired = rules_fired(far, &lib_ctx());
        // Too far: the violation stands and the allow is stale.
        assert!(fired.contains(&NO_HASH_COLLECTIONS));
        assert!(fired.contains(&ALLOW_HYGIENE));
    }

    #[test]
    fn allow_without_reason_or_with_unknown_rule_is_flagged() {
        let no_reason = "use std::collections::HashMap; // lint:allow(no-hash-collections)\n";
        assert_eq!(rules_fired(no_reason, &lib_ctx()), vec![ALLOW_HYGIENE]);
        let unknown = "// lint:allow(no-such-rule): whatever\nlet x = 1;\n";
        let fired = rules_fired(unknown, &lib_ctx());
        assert!(fired.contains(&ALLOW_HYGIENE));
    }
}

//! The `lint-ratchet.toml` baseline: per-crate panic-surface counts that
//! may shrink but never grow.
//!
//! The file is a hand-rolled TOML subset (sections + integer keys +
//! comments) so the linter stays zero-dependency. Serialization is
//! canonical — sorted crates, fixed key order — so regenerating an
//! unchanged baseline is byte-identical (the round-trip test pins this).

use std::collections::BTreeMap;

use crate::rules::{PanicCounts, Violation, UNWRAP_RATCHET};

/// File name of the committed baseline, at the workspace root.
pub const RATCHET_FILE: &str = "lint-ratchet.toml";

/// Per-crate baseline, keyed by package name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// Crate → allowed panic-surface counts.
    pub crates: BTreeMap<String, PanicCounts>,
}

impl Ratchet {
    /// Build a baseline from freshly-measured counts.
    pub fn from_counts(counts: &BTreeMap<String, PanicCounts>) -> Self {
        Ratchet { crates: counts.clone() }
    }

    /// Parse the committed baseline. Unknown keys and malformed lines are
    /// errors: a baseline that silently drops entries would un-ratchet.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut crates: BTreeMap<String, PanicCounts> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().trim_matches('"').to_string();
                if crates.contains_key(&name) {
                    return Err(format!("line {}: duplicate crate section `{name}`", n + 1));
                }
                crates.insert(name.clone(), PanicCounts::default());
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`, got `{line}`", n + 1));
            };
            let Some(crate_name) = &current else {
                return Err(format!("line {}: key outside a [crate] section", n + 1));
            };
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: `{}` is not an integer", n + 1, value.trim()))?;
            let entry = crates.get_mut(crate_name).unwrap();
            match key.trim() {
                "unwrap" => entry.unwrap = value,
                "expect" => entry.expect = value,
                "index" => entry.index = value,
                other => return Err(format!("line {}: unknown key `{other}`", n + 1)),
            }
        }
        Ok(Ratchet { crates })
    }

    /// Canonical serialization (the exact bytes `--write-ratchet` emits).
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# Panic-surface ratchet: per-library-crate counts of `.unwrap()`,\n\
             # `.expect(` and panicking `x[i]` indexing in non-test code.\n\
             # Counts may shrink but never grow. Regenerate after a genuine\n\
             # reduction with: cargo run -p veda-lint -- --write-ratchet\n",
        );
        for (name, c) in &self.crates {
            out.push_str(&format!(
                "\n[{name}]\nunwrap = {}\nexpect = {}\nindex = {}\n",
                c.unwrap, c.expect, c.index
            ));
        }
        out
    }

    /// Compare measured counts against the baseline. Returns ratchet
    /// violations (growth, or a crate missing from the baseline) and
    /// improvement notes (shrinkage worth re-baselining).
    pub fn compare(&self, measured: &BTreeMap<String, PanicCounts>) -> RatchetOutcome {
        let mut violations = Vec::new();
        let mut improvements = Vec::new();
        for (name, now) in measured {
            let base = self.crates.get(name).copied();
            let Some(base) = base else {
                if now.total() > 0 {
                    violations.push(Violation {
                        rule: UNWRAP_RATCHET,
                        path: name.clone(),
                        line: 0,
                        message: format!(
                            "crate `{name}` has {} panic sites but no baseline in \
                             {RATCHET_FILE}; add it with --write-ratchet and review \
                             the count in the diff",
                            now.total()
                        ),
                        suggestion: None,
                    });
                }
                continue;
            };
            for (kind, now_n, base_n) in [
                ("unwrap", now.unwrap, base.unwrap),
                ("expect", now.expect, base.expect),
                ("index", now.index, base.index),
            ] {
                if now_n > base_n {
                    violations.push(Violation {
                        rule: UNWRAP_RATCHET,
                        path: name.clone(),
                        line: 0,
                        message: format!(
                            "crate `{name}` grew its `{kind}` panic surface: {now_n} \
                             sites vs. baseline {base_n} — handle the error instead, \
                             or justify and re-baseline with --write-ratchet",
                        ),
                        suggestion: None,
                    });
                } else if now_n < base_n {
                    improvements
                        .push(format!("{name}: {kind} shrank {base_n} → {now_n} (re-baseline to lock in)"));
                }
            }
        }
        RatchetOutcome { violations, improvements }
    }
}

/// The result of a baseline comparison.
#[derive(Debug, Default)]
pub struct RatchetOutcome {
    /// Growth (or unbaselined crates) — these fail the pass.
    pub violations: Vec<Violation>,
    /// Shrinkage notes — informational, printed as hints.
    pub improvements: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(u: u64, e: u64, i: u64) -> PanicCounts {
        PanicCounts { unwrap: u, expect: e, index: i }
    }

    #[test]
    fn round_trip_is_identical() {
        let mut m = BTreeMap::new();
        m.insert("veda".to_string(), counts(3, 1, 40));
        m.insert("veda-model".to_string(), counts(0, 2, 7));
        let r = Ratchet::from_counts(&m);
        let text = r.serialize();
        let back = Ratchet::parse(&text).unwrap();
        assert_eq!(r, back);
        // Canonical: serialize(parse(serialize(x))) == serialize(x).
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn growth_fails_shrink_notes() {
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), counts(2, 2, 2));
        let ratchet = Ratchet::from_counts(&base);

        let mut grown = BTreeMap::new();
        grown.insert("a".to_string(), counts(3, 2, 1));
        let out = ratchet.compare(&grown);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert!(out.violations[0].message.contains("unwrap"));
        assert_eq!(out.improvements.len(), 1);
    }

    #[test]
    fn unbaselined_crate_with_sites_fails() {
        let ratchet = Ratchet::default();
        let mut m = BTreeMap::new();
        m.insert("new-crate".to_string(), counts(1, 0, 0));
        let out = ratchet.compare(&m);
        assert_eq!(out.violations.len(), 1);
        m.insert("clean-crate".to_string(), counts(0, 0, 0));
        let out = ratchet.compare(&m);
        assert_eq!(out.violations.len(), 1, "zero-site crates need no baseline");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Ratchet::parse("unwrap = 1\n").is_err(), "key outside section");
        assert!(Ratchet::parse("[a]\nunwrap = x\n").is_err(), "non-integer");
        assert!(Ratchet::parse("[a]\nwat = 1\n").is_err(), "unknown key");
        assert!(Ratchet::parse("[a]\n[a]\n").is_err(), "duplicate section");
    }
}

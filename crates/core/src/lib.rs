//! # veda
//!
//! End-to-end simulator for the VEDA reproduction (Wang et al., DAC 2025):
//! **V**oting-based KV cache **E**viction and a **D**ataflow-flexible
//! **A**ccelerator.
//!
//! This crate is the public face of the workspace. It couples:
//!
//! * the functional transformer substrate ([`veda_model`]),
//! * the eviction policies ([`veda_eviction`]), driven layer-wise exactly
//!   as the hardware voting engine drives them,
//! * the cycle-accurate accelerator model ([`veda_accel`]),
//! * the memory substrates ([`veda_mem`]) and cost models ([`veda_cost`]).
//!
//! The central type is [`Simulation`]: configure a model, an architecture,
//! a dataflow variant and an eviction policy, then [`Simulation::run`] a
//! prompt + generation and receive a [`SimulationReport`] with the
//! generated tokens, per-token attention cycles, throughput and energy.
//!
//! ## Quickstart
//!
//! ```
//! use veda::{Simulation, SimulationBuilder};
//! use veda_eviction::PolicyKind;
//!
//! let mut sim = SimulationBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .policy(PolicyKind::Voting)
//!     .compression_ratio(0.5)
//!     .build()?;
//! let report = sim.run(&[1, 5, 9, 2, 7, 3, 8, 4], 8);
//! assert_eq!(report.generated.len(), 8);
//! assert!(report.tokens_per_second > 0.0);
//! # Ok::<(), veda::BuildError>(())
//! ```

pub mod simulator;

pub use simulator::{BuildError, Simulation, SimulationBuilder, SimulationReport};

// Re-export the workspace crates under one roof for downstream users.
pub use veda_accel as accel;
pub use veda_cost as cost;
pub use veda_eviction as eviction;
pub use veda_mem as mem;
pub use veda_model as model;
pub use veda_tensor as tensor;

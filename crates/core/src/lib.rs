//! # veda
//!
//! End-to-end simulator for the VEDA reproduction (Wang et al., DAC 2025):
//! **V**oting-based KV cache **E**viction and a **D**ataflow-flexible
//! **A**ccelerator.
//!
//! This crate is the public face of the workspace. It couples:
//!
//! * the functional transformer substrate ([`veda_model`]) — one set of
//!   weights shared by every concurrent sequence,
//! * the eviction policies ([`veda_eviction`]), driven layer-wise exactly
//!   as the hardware voting engine drives them, one policy stack per
//!   session,
//! * the cycle-accurate accelerator model ([`veda_accel`]), including the
//!   batched-tick decode costing,
//! * the memory substrates ([`veda_mem`]) and cost models ([`veda_cost`]).
//!
//! The central type is the serving [`Engine`]: a long-lived object that
//! owns the substrate once and serves many concurrent requests through a
//! **two-phase session lifecycle** —
//! `submit → prefill ticks → decode ticks → report`:
//!
//! 1. [`Engine::submit`] validates a [`Request`] (prompt, token limit,
//!    stop tokens, [`veda_eviction::PolicyKind`], [`Budget`]), reserves
//!    its peak KV footprint ([`Request::reserve_resident_tokens`]) and
//!    enqueues the [`Session`] in the [`SessionPhase::Prefilling`] phase.
//! 2. Each [`Engine::step`] is one *mixed batched tick*: every decoding
//!    session advances by one token **and** every prefilling session
//!    consumes up to [`EngineBuilder::prefill_chunk`] prompt tokens
//!    (Sarathi/vLLM-style chunked prefill), under a shared
//!    [`EngineBuilder::tick_token_budget`]. Linear-layer weights stream
//!    from HBM once for the whole tick across both phases, and one
//!    [`TokenEvent`] per session ([`TokenEvent::Generated`] /
//!    [`TokenEvent::PrefillProgress`]) lets callers stream output and
//!    prefill progress as they happen.
//! 3. A session whose prompt is consumed moves to
//!    [`SessionPhase::Decoding`]; its first generated token arrives the
//!    following tick.
//! 4. Finished sessions free their KV state and yield a per-request
//!    [`SimulationReport`]; [`Engine::run_to_completion`] (or
//!    [`Engine::drain_report`]) additionally aggregates batched
//!    throughput/energy and on-clock prefill tokens into an
//!    [`EngineReport`].
//!
//! With the default `prefill_chunk = usize::MAX` the prompt is instead
//! consumed instantly (and cost-free) inside `submit` — byte-identical to
//! the pre-chunking engine, pinned by the integration and property tests.
//! Either way the chunk size never changes *which* tokens a request
//! generates, only when the work lands on the clock.
//!
//! On top of the engine, the `veda-serving` crate runs the full serving
//! stack — Workload (seeded arrival processes) → Admission (KV bytes
//! accounted against HBM capacity) → Scheduler (FCFS / round-robin /
//! shortest-remaining-budget / priority tiers, with preemption and
//! host-link KV swap serialized into the clock) → Engine — under a
//! virtual clock; the engine's contribution is the session lifecycle:
//! capacity introspection ([`Engine::kv_bytes_active`],
//! [`Engine::kv_bytes_per_token`], [`Engine::session_phase`]),
//! [`Engine::pause`] / [`Engine::resume`] (preemption that never changes
//! a session's token stream), and [`Engine::tighten_budget`] (budget
//! shrink under memory pressure).
//!
//! ## Quickstart: the serving engine
//!
//! ```
//! use veda::{Budget, EngineBuilder, Request};
//! use veda_eviction::PolicyKind;
//!
//! let mut engine = EngineBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .build()?;
//!
//! // Two concurrent requests with different policies and budgets.
//! let a = engine.submit(
//!     Request::new(vec![1, 5, 9, 2, 7, 3, 8, 4], 8)
//!         .policy(PolicyKind::Voting)
//!         .budget(Budget::Ratio(0.5)),
//! )?;
//! let b = engine.submit(
//!     Request::new(vec![2, 4, 6, 8, 10, 12], 6)
//!         .policy(PolicyKind::H2o)
//!         .budget(Budget::Fixed(4)),
//! )?;
//!
//! // Stream: each step advances every active session by one token.
//! let tick = engine.step();
//! assert_eq!(tick.batch_size, 2);
//! for event in &tick.events {
//!     // event.session, event.token, event.attention_cycles, ...
//! }
//!
//! let report = engine.run_to_completion();
//! assert_eq!(report.requests.len(), 2);
//! assert!(report.batched_tokens_per_second > 0.0);
//! assert!(engine.take_report(a).is_none(), "drained into the report");
//! # let _ = b;
//! # Ok::<(), veda::BuildError>(())
//! ```
//!
//! ## Chunked prefill
//!
//! A finite [`EngineBuilder::prefill_chunk`] makes prefill first-class
//! scheduled work — `submit` returns a `Prefilling` session and `step`
//! consumes the prompt in on-clock chunks mixed into the decode batch:
//!
//! ```
//! use veda::{EngineBuilder, Request, SessionPhase, TokenEvent};
//!
//! let mut engine = EngineBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .prefill_chunk(4)
//!     .build()?;
//! let s = engine.submit(Request::new((1..=10).collect::<Vec<_>>(), 4))?;
//! assert_eq!(engine.session_phase(s), Some(SessionPhase::Prefilling));
//!
//! // A 10-token prompt at chunk 4: ticks consume 4 + 4 + 2 tokens…
//! let tick = engine.step();
//! assert!(matches!(tick.events[0], TokenEvent::PrefillProgress { tokens: 4, .. }));
//! engine.step();
//! engine.step();
//! // …then the session decodes; tokens are identical to instant prefill.
//! assert_eq!(engine.session_phase(s), Some(SessionPhase::Decoding));
//! let report = engine.run_to_completion();
//! assert_eq!(report.prefill_tokens, 10);
//! assert_eq!(report.requests[0].report.generated.len(), 4);
//! # Ok::<(), veda::BuildError>(())
//! ```
//!
//! ## Shared-prefix KV reuse
//!
//! Serving traffic is dominated by common system prompts and few-shot
//! templates. With [`EngineBuilder::prefix_cache`] enabled, `submit`
//! matches each prompt against cached prefix entries (token-exact longest
//! match): a hit seeds the session's KV state from the cached rows —
//! resident in HBM **once**, referenced copy-on-evict by every hit
//! session — replays the cached attention observations into the fresh
//! policy stack, and prefills only the unshared suffix. Sharing never
//! changes which tokens a request generates (pinned by the
//! `prefix_equivalence` property tests); it only removes redundant
//! prefill work and duplicate resident bytes:
//!
//! ```
//! use veda::{EngineBuilder, PrefixCacheConfig, Request};
//!
//! let mut engine = EngineBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .prefix_cache(PrefixCacheConfig { min_match_tokens: 4, max_entries: 8, ..PrefixCacheConfig::default() })
//!     .build()?;
//!
//! let system_prompt: Vec<usize> = (1..=12).collect();
//! let ask = |suffix: &[usize]| {
//!     let mut prompt = system_prompt.clone();
//!     prompt.extend_from_slice(suffix);
//!     Request::new(prompt, 4)
//! };
//! engine.submit(ask(&[40, 41]))?; // cold: prefills everything, inserts the prompt
//! engine.submit(ask(&[50, 51]))?; // hit: shares the 12-token system prompt
//! let report = engine.run_to_completion();
//! assert_eq!(report.prefix.hits, 1);
//! assert_eq!(report.prefix.shared_tokens, 12);
//! # Ok::<(), veda::BuildError>(())
//! ```
//!
//! ## Legacy one-shot API
//!
//! The pre-engine entry point survives as a thin shim over a
//! single-session engine: configure a [`Simulation`], then
//! [`Simulation::run`] a prompt + generation and receive the same
//! [`SimulationReport`] the engine produces per request.
//!
//! ```
//! use veda::{Simulation, SimulationBuilder};
//! use veda_eviction::PolicyKind;
//!
//! let mut sim = SimulationBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .policy(PolicyKind::Voting)
//!     .compression_ratio(0.5)
//!     .build()?;
//! let report = sim.run(&[1, 5, 9, 2, 7, 3, 8, 4], 8);
//! assert_eq!(report.generated.len(), 8);
//! assert!(report.tokens_per_second > 0.0);
//! # Ok::<(), veda::BuildError>(())
//! ```

// Crate hygiene, enforced by veda-lint (rule crate-hygiene): no unsafe
// code under the determinism pins, no undocumented public surface.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod error;
pub mod prefix;
pub mod simulator;

pub use engine::{
    Budget, Engine, EngineBuilder, EngineReport, EngineTick, MigratedSession, Request, RequestOutcome,
    Session, SessionPhase, TokenEvent,
};
pub use error::BuildError;
pub use prefix::{
    PrefixCache, PrefixCacheConfig, PrefixCacheStats, PrefixExpiry, PrefixPin, PrefixTransfer,
    PrefixTransferKind,
};
pub use simulator::{Simulation, SimulationBuilder, SimulationReport};

// Re-export the workspace crates under one roof for downstream users.
pub use veda_accel as accel;
pub use veda_cost as cost;
pub use veda_eviction as eviction;
pub use veda_mem as mem;
pub use veda_model as model;
pub use veda_telemetry as telemetry;
pub use veda_tensor as tensor;

//! # veda
//!
//! End-to-end simulator for the VEDA reproduction (Wang et al., DAC 2025):
//! **V**oting-based KV cache **E**viction and a **D**ataflow-flexible
//! **A**ccelerator.
//!
//! This crate is the public face of the workspace. It couples:
//!
//! * the functional transformer substrate ([`veda_model`]) — one set of
//!   weights shared by every concurrent sequence,
//! * the eviction policies ([`veda_eviction`]), driven layer-wise exactly
//!   as the hardware voting engine drives them, one policy stack per
//!   session,
//! * the cycle-accurate accelerator model ([`veda_accel`]), including the
//!   batched-tick decode costing,
//! * the memory substrates ([`veda_mem`]) and cost models ([`veda_cost`]).
//!
//! The central type is the serving [`Engine`]: a long-lived object that
//! owns the substrate once and serves many concurrent requests. On top of
//! it, the `veda-serving` crate runs the full serving stack — Workload
//! (seeded arrival processes) → Admission (KV bytes accounted against HBM
//! capacity) → Scheduler (FCFS / round-robin / shortest-remaining-budget /
//! priority tiers, with preemption and host-link KV swap) → Engine — under
//! a virtual clock; the engine's contribution is the session lifecycle:
//! capacity introspection ([`Engine::kv_bytes_active`],
//! [`Engine::kv_bytes_per_token`]), [`Engine::pause`] / [`Engine::resume`]
//! (preemption that never changes a session's token stream), and
//! [`Engine::tighten_budget`] (budget shrink under memory pressure).
//!
//! Submit
//! [`Request`]s — each with its own prompt, token limit, stop tokens,
//! [`veda_eviction::PolicyKind`] and [`Budget`] — and drive decode
//! incrementally with [`Engine::step`]: every step is one *batched decode
//! tick* in which all active [`Session`]s advance by one token, linear
//! layer weights stream from HBM once for the whole batch, and a
//! [`TokenEvent`] per session lets callers stream output as it is
//! produced. Finished sessions free their KV state and yield a
//! per-request [`SimulationReport`]; [`Engine::run_to_completion`] (or
//! [`Engine::drain_report`]) additionally aggregates batched
//! throughput/energy into an [`EngineReport`].
//!
//! ## Quickstart: the serving engine
//!
//! ```
//! use veda::{Budget, EngineBuilder, Request};
//! use veda_eviction::PolicyKind;
//!
//! let mut engine = EngineBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .build()?;
//!
//! // Two concurrent requests with different policies and budgets.
//! let a = engine.submit(
//!     Request::new(vec![1, 5, 9, 2, 7, 3, 8, 4], 8)
//!         .policy(PolicyKind::Voting)
//!         .budget(Budget::Ratio(0.5)),
//! )?;
//! let b = engine.submit(
//!     Request::new(vec![2, 4, 6, 8, 10, 12], 6)
//!         .policy(PolicyKind::H2o)
//!         .budget(Budget::Fixed(4)),
//! )?;
//!
//! // Stream: each step advances every active session by one token.
//! let tick = engine.step();
//! assert_eq!(tick.batch_size, 2);
//! for event in &tick.events {
//!     // event.session, event.token, event.attention_cycles, ...
//! }
//!
//! let report = engine.run_to_completion();
//! assert_eq!(report.requests.len(), 2);
//! assert!(report.batched_tokens_per_second > 0.0);
//! assert!(engine.take_report(a).is_none(), "drained into the report");
//! # let _ = b;
//! # Ok::<(), veda::BuildError>(())
//! ```
//!
//! ## Legacy one-shot API
//!
//! The pre-engine entry point survives as a thin shim over a
//! single-session engine: configure a [`Simulation`], then
//! [`Simulation::run`] a prompt + generation and receive the same
//! [`SimulationReport`] the engine produces per request.
//!
//! ```
//! use veda::{Simulation, SimulationBuilder};
//! use veda_eviction::PolicyKind;
//!
//! let mut sim = SimulationBuilder::new()
//!     .model(veda_model::ModelConfig::tiny())
//!     .policy(PolicyKind::Voting)
//!     .compression_ratio(0.5)
//!     .build()?;
//! let report = sim.run(&[1, 5, 9, 2, 7, 3, 8, 4], 8);
//! assert_eq!(report.generated.len(), 8);
//! assert!(report.tokens_per_second > 0.0);
//! # Ok::<(), veda::BuildError>(())
//! ```

pub mod engine;
pub mod error;
pub mod simulator;

pub use engine::{
    Budget, Engine, EngineBuilder, EngineReport, EngineTick, Request, RequestOutcome, Session, TokenEvent,
};
pub use error::BuildError;
pub use simulator::{Simulation, SimulationBuilder, SimulationReport};

// Re-export the workspace crates under one roof for downstream users.
pub use veda_accel as accel;
pub use veda_cost as cost;
pub use veda_eviction as eviction;
pub use veda_mem as mem;
pub use veda_model as model;
pub use veda_tensor as tensor;

//! The end-to-end simulation: functional transformer + layer-wise eviction
//! + accelerator timing + energy.

use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_accel::attention::decode_attention_cycles;
use veda_accel::schedule::{DecodeScheduler, LlamaShape};
use veda_cost::EnergyModel;
use veda_eviction::{EvictionPolicy, PolicyKind};
use veda_mem::HbmConfig;
use veda_model::{ModelConfig, TransformerModel};

/// Error building a [`Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid simulation configuration: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Simulation`].
///
/// Defaults: tiny model, VEDA architecture scaled to the model's head
/// geometry, `FlexibleElementSerial` dataflow, voting policy, compression
/// ratio 0.5, paper-default HBM.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    model: ModelConfig,
    variant: DataflowVariant,
    policy: PolicyKind,
    compression_ratio: Option<f64>,
    fixed_budget: Option<usize>,
    hbm: HbmConfig,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Creates a builder with defaults.
    pub fn new() -> Self {
        Self {
            model: ModelConfig::tiny(),
            variant: DataflowVariant::FlexibleElementSerial,
            policy: PolicyKind::Voting,
            compression_ratio: Some(0.5),
            fixed_budget: None,
            hbm: HbmConfig::default(),
        }
    }

    /// Sets the functional model configuration.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the dataflow variant.
    pub fn variant(mut self, variant: DataflowVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the eviction policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the compression ratio `r` (budget = `round(r × prompt_len)`,
    /// the paper's Fig. 3 configuration). Clears any fixed budget.
    pub fn compression_ratio(mut self, r: f64) -> Self {
        self.compression_ratio = Some(r);
        self.fixed_budget = None;
        self
    }

    /// Sets a fixed cache budget (the language-modeling configuration).
    /// Clears any compression ratio.
    pub fn fixed_budget(mut self, budget: usize) -> Self {
        self.fixed_budget = Some(budget);
        self.compression_ratio = None;
        self
    }

    /// Sets the HBM configuration.
    pub fn hbm(mut self, hbm: HbmConfig) -> Self {
        self.hbm = hbm;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the model is invalid or the budget
    /// configuration is unusable.
    pub fn build(self) -> Result<Simulation, BuildError> {
        self.model.validate().map_err(BuildError)?;
        if let Some(r) = self.compression_ratio {
            if !(0.0..=1.0).contains(&r) || r == 0.0 {
                return Err(BuildError(format!("compression ratio {r} outside (0, 1]")));
            }
        }
        if self.fixed_budget == Some(0) {
            return Err(BuildError("fixed budget must be positive".into()));
        }

        // Architecture shaped to the model's attention geometry; everything
        // else stays at VEDA defaults.
        let mut arch = ArchConfig::veda();
        arch.head_dim = self.model.head_dim();
        arch.n_heads = self.model.n_heads;
        arch.validate().map_err(BuildError)?;

        let shape = LlamaShape {
            d_model: self.model.d_model,
            n_heads: self.model.n_heads,
            ffn_hidden: self.model.ffn_hidden,
            n_layers: self.model.n_layers,
            vocab_size: self.model.vocab_size,
        };
        let scheduler = DecodeScheduler::new(arch.clone(), shape, self.hbm, self.variant);
        let energy = EnergyModel::for_arch(&arch);
        let policies = (0..self.model.n_layers).map(|_| self.policy.build()).collect();

        Ok(Simulation {
            model: TransformerModel::new(self.model),
            arch,
            variant: self.variant,
            policy_kind: self.policy,
            policies,
            compression_ratio: self.compression_ratio,
            fixed_budget: self.fixed_budget,
            scheduler,
            energy,
        })
    }
}

/// Result of one simulated prompt + generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Greedily generated token ids.
    pub generated: Vec<usize>,
    /// Attention cycles of each generated token (cycle model).
    pub attention_cycles_per_token: Vec<u64>,
    /// Total decode cycles across generation (all components).
    pub total_cycles: u64,
    /// Decode throughput at the architecture clock.
    pub tokens_per_second: f64,
    /// Energy per generated token in millijoules (core + HBM).
    pub energy_mj_per_token: f64,
    /// Evictions performed across all layers.
    pub evictions: usize,
    /// Final KV cache length (layer 0).
    pub final_cache_len: usize,
    /// The budget that was enforced.
    pub cache_budget: usize,
}

/// An end-to-end VEDA simulation (see [`crate`] docs).
pub struct Simulation {
    model: TransformerModel,
    arch: ArchConfig,
    variant: DataflowVariant,
    policy_kind: PolicyKind,
    policies: Vec<Box<dyn EvictionPolicy>>,
    compression_ratio: Option<f64>,
    fixed_budget: Option<usize>,
    scheduler: DecodeScheduler,
    energy: EnergyModel,
}

impl Simulation {
    /// The configured architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The configured policy kind.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy_kind
    }

    /// The dataflow variant.
    pub fn variant(&self) -> DataflowVariant {
        self.variant
    }

    fn resolve_budget(&self, prompt_len: usize) -> usize {
        match (self.fixed_budget, self.compression_ratio) {
            (Some(b), _) => b,
            (None, Some(r)) => ((prompt_len as f64 * r).round() as usize).max(1),
            (None, None) => usize::MAX / 2,
        }
    }

    /// Feeds one token through the model and the per-layer policies,
    /// evicting down to `budget` when allowed.
    fn step(&mut self, token: usize, position: usize, budget: usize, evict: bool) -> (Vec<f32>, usize) {
        let out = self.model.forward_token(token, position);
        let mut evictions = 0;
        for (layer, policy) in self.policies.iter_mut().enumerate() {
            policy.on_append();
            policy.observe(&out.layer_scores[layer]);
            if evict {
                while self.model.caches()[layer].len() > budget {
                    let len = self.model.caches()[layer].len();
                    let Some(slot) = policy.select_victim(len) else {
                        break;
                    };
                    self.model.evict(layer, slot);
                    policy.on_evict(slot);
                    evictions += 1;
                }
            }
        }
        (out.logits, evictions)
    }

    /// Runs prefill on `prompt` then generates `gen_len` tokens greedily,
    /// returning the full report. Resets all state first, so a simulation
    /// can be reused across runs.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary tokens.
    pub fn run(&mut self, prompt: &[usize], gen_len: usize) -> SimulationReport {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        self.model.reset();
        for p in &mut self.policies {
            p.reset();
        }
        let budget = self.resolve_budget(prompt.len());
        let mut evictions = 0;

        // Prefill: voting observes, but no eviction (Fig. 3's reserved +
        // voting stages).
        let mut logits = Vec::new();
        for (pos, &tok) in prompt.iter().enumerate() {
            let (l, _) = self.step(tok, pos, budget, false);
            logits = l;
        }

        // Generation: evict whenever the cache exceeds the budget; the
        // first steps burst-evict down from the prompt length, after which
        // the cache holds constant at the budget (Section VI).
        let mut generated = Vec::with_capacity(gen_len);
        let mut attention_cycles = Vec::with_capacity(gen_len);
        let mut total_cycles = 0u64;
        let mut total_energy_mj = 0.0;
        let mut position = prompt.len();
        for _ in 0..gen_len {
            let next = veda_tensor::stats::argmax(&logits).expect("non-empty logits");
            generated.push(next);

            let l_before = self.model.cache_len().min(budget.max(1)).max(1);
            let report = self.scheduler.decode_token(l_before);
            attention_cycles.push(decode_attention_cycles(&self.arch, self.variant, l_before));
            total_cycles += report.total_cycles;
            let shape = self.scheduler.shape();
            let bytes = shape.weight_bytes_per_token() + shape.kv_bytes_per_token(l_before);
            total_energy_mj += self.energy.token_energy_mj(report.total_cycles, bytes);

            let (l, e) = self.step(next, position, budget, true);
            logits = l;
            evictions += e;
            position += 1;
        }

        let seconds = total_cycles as f64 / (self.arch.clock_ghz * 1e9);
        SimulationReport {
            tokens_per_second: if seconds > 0.0 { generated.len() as f64 / seconds } else { 0.0 },
            energy_mj_per_token: if generated.is_empty() { 0.0 } else { total_energy_mj / generated.len() as f64 },
            generated,
            attention_cycles_per_token: attention_cycles,
            total_cycles,
            evictions,
            final_cache_len: self.model.cache_len(),
            cache_budget: budget,
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("variant", &self.variant)
            .field("policy", &self.policy_kind)
            .field("arch_macs", &self.arch.macs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt() -> Vec<usize> {
        (1..=16).collect()
    }

    fn build(policy: PolicyKind, ratio: f64) -> Simulation {
        SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(policy)
            .compression_ratio(ratio)
            .build()
            .expect("valid config")
    }

    #[test]
    fn run_produces_tokens_and_cycles() {
        let mut sim = build(PolicyKind::Voting, 0.5);
        let r = sim.run(&prompt(), 8);
        assert_eq!(r.generated.len(), 8);
        assert_eq!(r.attention_cycles_per_token.len(), 8);
        assert!(r.total_cycles > 0);
        assert!(r.tokens_per_second > 0.0);
        assert!(r.energy_mj_per_token > 0.0);
    }

    #[test]
    fn cache_converges_to_budget() {
        let mut sim = build(PolicyKind::SlidingWindow, 0.5);
        let r = sim.run(&prompt(), 12);
        assert_eq!(r.cache_budget, 8);
        assert_eq!(r.final_cache_len, 8, "cache must be held at the budget");
        assert!(r.evictions > 0);
    }

    #[test]
    fn full_policy_never_evicts() {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Full)
            .fixed_budget(4)
            .build()
            .unwrap();
        let r = sim.run(&prompt(), 4);
        assert_eq!(r.evictions, 0);
        assert_eq!(r.final_cache_len, 20);
    }

    #[test]
    fn eviction_speeds_up_attention() {
        let long_prompt: Vec<usize> = (0..64).map(|i| (i * 7) % 60 + 1).collect();
        let mut full = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Full)
            .fixed_budget(10_000)
            .build()
            .unwrap();
        let mut evicting = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Voting)
            .compression_ratio(0.25)
            .build()
            .unwrap();
        let rf = full.run(&long_prompt, 16);
        let re = evicting.run(&long_prompt, 16);
        let full_attn: u64 = rf.attention_cycles_per_token.iter().sum();
        let evict_attn: u64 = re.attention_cycles_per_token.iter().sum();
        assert!(evict_attn < full_attn, "evicting {evict_attn} vs full {full_attn}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = build(PolicyKind::Voting, 0.5);
        let mut b = build(PolicyKind::Voting, 0.5);
        assert_eq!(a.run(&prompt(), 6), b.run(&prompt(), 6));
        // And rerunning the same simulation gives the same result.
        let r1 = a.run(&prompt(), 6);
        let r2 = a.run(&prompt(), 6);
        assert_eq!(r1, r2);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(SimulationBuilder::new().compression_ratio(0.0).build().is_err());
        assert!(SimulationBuilder::new().compression_ratio(1.5).build().is_err());
        assert!(SimulationBuilder::new().fixed_budget(0).build().is_err());
        let mut bad = ModelConfig::tiny();
        bad.n_heads = 5;
        assert!(SimulationBuilder::new().model(bad).build().is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_prompt_panics() {
        build(PolicyKind::Voting, 0.5).run(&[], 4);
    }
}

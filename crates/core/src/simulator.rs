//! Legacy one-shot simulation API, now a thin compatibility shim over a
//! single-session [`crate::Engine`].
//!
//! [`Simulation::run`] submits the prompt as one [`crate::Request`] to a
//! persistent engine, steps it to completion and returns the per-request
//! report — token-for-token and cycle-for-cycle identical to what the
//! pre-engine implementation produced (the integration tests pin this
//! down). New code should use [`crate::Engine`] directly; it serves many
//! concurrent requests against one set of weights.

use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_eviction::PolicyKind;
use veda_mem::HbmConfig;
use veda_model::ModelConfig;

use crate::engine::{Budget, Engine, EngineBuilder, Request};
use crate::error::BuildError;

/// Builder for [`Simulation`].
///
/// Defaults: tiny model, VEDA architecture scaled to the model's head
/// geometry, `FlexibleElementSerial` dataflow, voting policy, compression
/// ratio 0.5, paper-default HBM.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    model: ModelConfig,
    variant: DataflowVariant,
    policy: PolicyKind,
    budget: Budget,
    hbm: HbmConfig,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Creates a builder with defaults.
    pub fn new() -> Self {
        Self {
            model: ModelConfig::tiny(),
            variant: DataflowVariant::FlexibleElementSerial,
            policy: PolicyKind::Voting,
            budget: Budget::Ratio(0.5),
            hbm: HbmConfig::default(),
        }
    }

    /// Sets the functional model configuration.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the dataflow variant.
    pub fn variant(mut self, variant: DataflowVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the eviction policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the cache budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the compression ratio `r` (budget = `round(r × prompt_len)`,
    /// the paper's Fig. 3 configuration). Equivalent to
    /// `budget(Budget::Ratio(r))`.
    pub fn compression_ratio(self, r: f64) -> Self {
        self.budget(Budget::Ratio(r))
    }

    /// Sets a fixed cache budget (the language-modeling configuration).
    /// Equivalent to `budget(Budget::Fixed(budget))`.
    pub fn fixed_budget(self, budget: usize) -> Self {
        self.budget(Budget::Fixed(budget))
    }

    /// Sets the HBM configuration.
    pub fn hbm(mut self, hbm: HbmConfig) -> Self {
        self.hbm = hbm;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the model is invalid or the budget
    /// configuration is unusable.
    pub fn build(self) -> Result<Simulation, BuildError> {
        self.budget.validate()?;
        let engine = EngineBuilder::new().model(self.model).variant(self.variant).hbm(self.hbm).build()?;
        Ok(Simulation { engine, policy: self.policy, budget: self.budget })
    }
}

/// Result of one simulated prompt + generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Greedily generated token ids.
    pub generated: Vec<usize>,
    /// Attention cycles of each generated token (cycle model).
    pub attention_cycles_per_token: Vec<u64>,
    /// Total decode cycles across generation (all components).
    pub total_cycles: u64,
    /// Decode throughput at the architecture clock.
    pub tokens_per_second: f64,
    /// Energy per generated token in millijoules (core + HBM).
    pub energy_mj_per_token: f64,
    /// Evictions performed across all layers.
    pub evictions: usize,
    /// Final KV cache length (layer 0).
    pub final_cache_len: usize,
    /// The budget that was enforced.
    pub cache_budget: usize,
}

/// An end-to-end VEDA simulation (see [`crate`] docs): one-shot runs over
/// a single-session [`Engine`].
pub struct Simulation {
    engine: Engine,
    policy: PolicyKind,
    budget: Budget,
}

impl Simulation {
    /// The configured architecture.
    pub fn arch(&self) -> &ArchConfig {
        self.engine.arch()
    }

    /// The configured policy kind.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy
    }

    /// The dataflow variant.
    pub fn variant(&self) -> DataflowVariant {
        self.engine.variant()
    }

    /// The configured cache budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Runs prefill on `prompt` then generates `gen_len` tokens greedily,
    /// returning the full report. Each run is an independent session, so a
    /// simulation can be reused across runs; the model weights are built
    /// once and shared.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary tokens.
    pub fn run(&mut self, prompt: &[usize], gen_len: usize) -> SimulationReport {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let request = Request::new(prompt.to_vec(), gen_len).policy(self.policy).budget(self.budget);
        let session = self.engine.submit(request).expect("valid request");
        while self.engine.is_active(session) {
            self.engine.step();
        }
        // Keep the engine's cross-run aggregates from growing unboundedly:
        // a one-shot run has no use for them.
        let report = self.engine.take_report(session).expect("finished session has a report");
        self.engine.drain_report();
        report
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("variant", &self.engine.variant())
            .field("policy", &self.policy)
            .field("arch_macs", &self.engine.arch().macs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt() -> Vec<usize> {
        (1..=16).collect()
    }

    fn build(policy: PolicyKind, ratio: f64) -> Simulation {
        SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(policy)
            .compression_ratio(ratio)
            .build()
            .expect("valid config")
    }

    #[test]
    fn run_produces_tokens_and_cycles() {
        let mut sim = build(PolicyKind::Voting, 0.5);
        let r = sim.run(&prompt(), 8);
        assert_eq!(r.generated.len(), 8);
        assert_eq!(r.attention_cycles_per_token.len(), 8);
        assert!(r.total_cycles > 0);
        assert!(r.tokens_per_second > 0.0);
        assert!(r.energy_mj_per_token > 0.0);
    }

    #[test]
    fn cache_converges_to_budget() {
        let mut sim = build(PolicyKind::SlidingWindow, 0.5);
        let r = sim.run(&prompt(), 12);
        assert_eq!(r.cache_budget, 8);
        assert_eq!(r.final_cache_len, 8, "cache must be held at the budget");
        assert!(r.evictions > 0);
    }

    #[test]
    fn full_policy_never_evicts() {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Full)
            .fixed_budget(4)
            .build()
            .unwrap();
        let r = sim.run(&prompt(), 4);
        assert_eq!(r.evictions, 0);
        assert_eq!(r.final_cache_len, 20);
    }

    #[test]
    fn unbounded_budget_never_evicts_either() {
        let mut sim = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Voting)
            .budget(Budget::Unbounded)
            .build()
            .unwrap();
        let r = sim.run(&prompt(), 4);
        assert_eq!(r.evictions, 0);
        assert_eq!(r.final_cache_len, 20);
    }

    #[test]
    fn eviction_speeds_up_attention() {
        let long_prompt: Vec<usize> = (0..64).map(|i| (i * 7) % 60 + 1).collect();
        let mut full = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Full)
            .fixed_budget(10_000)
            .build()
            .unwrap();
        let mut evicting = SimulationBuilder::new()
            .model(ModelConfig::tiny())
            .policy(PolicyKind::Voting)
            .compression_ratio(0.25)
            .build()
            .unwrap();
        let rf = full.run(&long_prompt, 16);
        let re = evicting.run(&long_prompt, 16);
        let full_attn: u64 = rf.attention_cycles_per_token.iter().sum();
        let evict_attn: u64 = re.attention_cycles_per_token.iter().sum();
        assert!(evict_attn < full_attn, "evicting {evict_attn} vs full {full_attn}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = build(PolicyKind::Voting, 0.5);
        let mut b = build(PolicyKind::Voting, 0.5);
        assert_eq!(a.run(&prompt(), 6), b.run(&prompt(), 6));
        // And rerunning the same simulation gives the same result.
        let r1 = a.run(&prompt(), 6);
        let r2 = a.run(&prompt(), 6);
        assert_eq!(r1, r2);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(SimulationBuilder::new().compression_ratio(0.0).build().is_err());
        assert!(SimulationBuilder::new().compression_ratio(1.5).build().is_err());
        assert!(SimulationBuilder::new().fixed_budget(0).build().is_err());
        let mut bad = ModelConfig::tiny();
        bad.n_heads = 5;
        assert!(SimulationBuilder::new().model(bad).build().is_err());
    }

    #[test]
    fn builder_errors_are_structured() {
        assert!(matches!(
            SimulationBuilder::new().compression_ratio(0.0).build(),
            Err(BuildError::InvalidBudget(_))
        ));
        let mut bad = ModelConfig::tiny();
        bad.n_heads = 5;
        assert!(matches!(SimulationBuilder::new().model(bad).build(), Err(BuildError::InvalidModel(_))));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_prompt_panics() {
        build(PolicyKind::Voting, 0.5).run(&[], 4);
    }
}
